#![forbid(unsafe_code)]

//! # mad — facade crate
//!
//! Re-exports the whole MAD-model workspace under one roof, so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`model`] — values, type descriptions, schema (Def. 1–3),
//! * [`storage`] — atom networks: the storage engine with referential
//!   integrity and symmetric link adjacency,
//! * [`algebra`] — the atom-type algebra and the molecule algebra
//!   (Def. 4–10, Theorems 1–3), molecule derivation, recursion,
//! * [`mql`] — the molecule query language of §4,
//! * [`obs`] — the metrics registry, per-statement tracing and the
//!   slow-query log,
//! * [`net`] — the TCP server front-end and blocking client (MQL over
//!   checksummed frames; one shared session per connection),
//! * [`repl`] — streaming WAL replication: primary, warm standbys with
//!   continuous integrity-checked replay, sync-quorum commit
//!   acknowledgment, standby promotion, network fault injection,
//! * [`relational`] — the relational substrate/baseline,
//! * [`nf2`] — the NF² substrate/baseline,
//! * [`workload`] — fixtures and generators (the Brazil database of
//!   Fig. 1/2/4, synthetic geography, bill-of-material, VLSI, the
//!   concurrent mixed read/write and crash-recovery scenarios),
//! * [`txn`] — snapshot-isolated transactions and concurrent multi-session
//!   serving over a shared database handle,
//! * [`wal`] — write-ahead-log durability: checksummed commit records,
//!   group-commit fsync batching, torn-tail crash recovery, checkpoints.
//!
//! See `README.md` for the quickstart and `ARCHITECTURE.md` for the layer
//! map.

pub use mad_core as algebra;
pub use mad_model as model;
pub use mad_mql as mql;
pub use mad_net as net;
pub use mad_nf2 as nf2;
pub use mad_obs as obs;
pub use mad_relational as relational;
pub use mad_repl as repl;
pub use mad_storage as storage;
pub use mad_txn as txn;
pub use mad_wal as wal;
pub use mad_workload as workload;

pub use mad_core::prelude::*;
