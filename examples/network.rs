//! The network front-end end to end: a TCP server over a shared handle,
//! concurrent clients speaking MQL over checksummed frames, and the
//! networked crash-recovery scenario.
//!
//! 1. Serve an in-memory database, drive it from two client connections:
//!    transactions spanning round-trips, snapshot isolation between
//!    connections, a forced first-committer-wins conflict whose
//!    `is_conflict()` survives the wire.
//! 2. Run the networked crash scenario: N TCP writer + reader clients
//!    against a **durable** server, kill the server mid-traffic, cut the
//!    log the way a crash would, restart, and verify every
//!    client-acknowledged commit survived as an exact prefix.
//!
//! ```text
//! cargo run --release --example network
//! ```

use mad::net::{Client, Server};
use mad::txn::DbHandle;
use mad::workload::{mixed_database, run_net_crash, NetCrashParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    println!("== 1. serving MQL over TCP\n");
    let server = Server::serve(DbHandle::new(mixed_database()?), "127.0.0.1:0")?;
    let addr = server.local_addr();
    println!("server listening on {addr} (ephemeral port)");

    let mut alice = Client::connect(addr)?;
    let mut bob = Client::connect(addr)?;
    println!(
        "two clients connected (protocol {}, commit seq {})",
        alice.server_info().protocol,
        alice.server_info().commit_seq
    );

    // a transaction spanning several round-trips, isolated from bob
    alice.execute("BEGIN")?;
    alice.execute("INSERT ATOM state (sname = 'SP', hectare = 1000.0)")?;
    alice.execute("INSERT ATOM area (aid = 1)")?;
    alice.execute("CONNECT state[sname='SP'] TO area[aid=1] VIA state-area")?;
    let invisible = bob.execute("SELECT ALL FROM state WHERE state.sname = 'SP'")?;
    println!("bob, before alice commits: {}", invisible.lines().next().unwrap_or(""));
    let ack = alice.execute("COMMIT")?;
    print!("alice: {ack}");
    let visible = bob.execute("SELECT ALL FROM state-area WHERE state.sname = 'SP'")?;
    println!("bob, after the commit:  {}", visible.lines().next().unwrap_or(""));

    // a forced write-write conflict: the loser's error crosses the wire
    // with its conflict flag intact
    alice.execute("BEGIN")?;
    bob.execute("BEGIN")?;
    alice.execute("UPDATE state[sname='contended'] SET hectare = 1.0")?;
    bob.execute("UPDATE state[sname='contended'] SET hectare = 2.0")?;
    alice.execute("COMMIT")?;
    let err = bob.execute("COMMIT").expect_err("second committer must lose");
    println!(
        "bob's COMMIT failed remotely: is_conflict() = {} ({err})",
        err.is_conflict()
    );
    drop(alice);
    drop(bob);
    server.shutdown();

    // ------------------------------------------------------------------
    println!("\n== 2. networked crash scenario (kill → cut → restart → verify)\n");
    let dir = std::env::temp_dir().join(format!("mad-network-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let wal = dir.join("net.wal");
    let _ = std::fs::remove_file(&wal);
    let params = NetCrashParams::default();
    println!(
        "{} writers × {} groups + {} readers over TCP, kill after {} acks…",
        params.writers, params.txns_per_writer, params.readers, params.kill_after_acks
    );
    let stats = run_net_crash(&wal, &params)?;
    println!(
        "acked {} commit(s) ({} conflict retries, {} reads); crash cut the log; \
         {} commit(s) survived, {} torn byte(s) truncated",
        stats.acked, stats.conflicts, stats.reads, stats.survived, stats.truncated_bytes
    );
    println!(
        "post-restart service: {} fresh commit(s); violations: {}",
        stats.post_restart_commits, stats.violations
    );
    std::fs::remove_dir_all(&dir).ok();
    if stats.violations != 0 {
        return Err(format!("networked crash scenario violated invariants: {stats:?}").into());
    }
    println!("\nevery client-acknowledged commit survived as an exact prefix ✓");
    Ok(())
}
