//! Concurrent multi-session serving over one shared database.
//!
//! Demonstrates the `mad_txn` subsystem end to end: a shared [`DbHandle`],
//! MQL sessions on writer threads committing atomic groups through
//! `BEGIN … COMMIT`, a deliberately conflicting pair of transactions
//! showing first-committer-wins, and snapshot readers that keep deriving
//! molecules while the writes land.
//!
//! Run with `cargo run --example concurrent_sessions`.

use mad::model::{AtomId, Value};
use mad::mql::{format::render_result, Session};
use mad::txn::{DbHandle, Transaction};
use mad::workload::{mixed_database, run_mixed, MixedParams};

fn main() {
    let handle = DbHandle::new(mixed_database().unwrap());

    // ------------------------------------------------------------------
    // 1. MQL sessions on two threads, each committing atomic groups
    // ------------------------------------------------------------------
    std::thread::scope(|scope| {
        for w in 0..2 {
            let handle = handle.clone();
            scope.spawn(move || {
                let mut session = Session::shared(handle);
                for i in 0..3 {
                    let aid = w * 100 + i;
                    session
                        .execute_script(&format!(
                            "BEGIN;
                             INSERT ATOM state (sname = 'w{w}-{i}', hectare = 10.0);
                             INSERT ATOM area (aid = {aid});
                             CONNECT state[sname='w{w}-{i}'] TO area[aid={aid}] VIA state-area;
                             COMMIT;"
                        ))
                        .unwrap();
                }
            });
        }
    });
    let mut session = Session::shared(handle.clone());
    let result = session.execute("SELECT ALL FROM state-area").unwrap();
    println!("--- committed state after 2 writer sessions ---");
    println!("{}", render_result(session.db(), &result));

    // ------------------------------------------------------------------
    // 2. first-committer-wins on a forced write-write conflict
    // ------------------------------------------------------------------
    let state = handle.committed().schema().atom_type_id("state").unwrap();
    let contended = AtomId::new(state, 0);
    let mut t1 = Transaction::begin(&handle);
    let mut t2 = Transaction::begin(&handle);
    t1.update_attr(contended, 1, Value::from(111.0)).unwrap();
    t2.update_attr(contended, 1, Value::from(222.0)).unwrap();
    println!("t1 commit: {:?}", t1.commit().map(|i| i.seq));
    match t2.commit() {
        Ok(_) => println!("t2 commit: unexpectedly succeeded"),
        Err(e) => println!("t2 commit: {e}"),
    }
    println!(
        "contended counter after the race: {:?}\n",
        handle.committed().atom_value(contended, 1).unwrap()
    );

    // ------------------------------------------------------------------
    // 3. the full mixed read/write stress scenario
    // ------------------------------------------------------------------
    let handle = DbHandle::new(mixed_database().unwrap());
    let stats = run_mixed(
        &handle,
        &MixedParams {
            readers: 2,
            writers: 3,
            txns_per_writer: 30,
            areas_per_state: 4,
            seed: 2026,
        },
    )
    .unwrap();
    println!("--- mixed scenario (2 readers, 3 writers) ---");
    println!(
        "commits: {}, conflicts retried: {}, snapshot reads: {}, inconsistencies: {}",
        stats.commits, stats.conflicts, stats.reads, stats.inconsistencies
    );
    assert_eq!(stats.inconsistencies, 0);
}
