//! The paper's running example, end to end: the Brazil database of
//! Fig. 1/4, the two molecule types of Fig. 2, both §4 MQL queries, and the
//! molecule-algebra operators Σ, Π, Ω, Δ, Ψ on real molecule sets.
//!
//! ```text
//! cargo run --example geographic
//! ```

use mad::algebra::ops::Engine;
use mad::algebra::qual::{CmpOp, QualExpr};
use mad::algebra::structure::path;
use mad::mql::{format::render_result, Session};
use mad::workload::brazil_database;

fn main() -> mad::model::Result<()> {
    let (db, handles) = brazil_database()?;
    println!(
        "GEO_DB: {} atoms, {} links, {} atom types, {} link types\n",
        db.total_atoms(),
        db.total_links(),
        db.schema().atom_type_count(),
        db.schema().link_type_count()
    );

    // ---- the two §4 MQL queries --------------------------------------
    let mut session = Session::new(db);
    println!("MQL> SELECT ALL FROM mt_state(state-area-edge-point) WHERE state.sname = 'SP';");
    let r = session.execute(
        "SELECT ALL FROM mt_state(state-area-edge-point) WHERE state.sname = 'SP';",
    )?;
    println!("{}", render_result(session.db(), &r));

    println!("MQL> SELECT ALL FROM point-edge-(area-state,net-river) WHERE point.pname = 'p0';");
    let r = session.execute(
        "SELECT ALL FROM point-edge-(area-state,net-river) WHERE point.pname = 'p0';",
    )?;
    println!("{}", render_result(session.db(), &r));

    // ---- the same semantics, written directly in the molecule algebra --
    let (db, _) = brazil_database()?;
    let mut engine = Engine::new(db);
    engine.enable_tracing();
    let md = path(engine.db().schema(), &["state", "area", "edge", "point"])?;
    let mt_state = engine.define("mt_state", md)?;
    println!(
        "α[mt_state]: {} molecules, {} shared atoms across molecules",
        mt_state.len(),
        mt_state.shared_atoms().len()
    );

    // Σ: states larger than 700 hectares
    let big = engine.restrict(
        &mt_state,
        &QualExpr::cmp_const(0, 2, CmpOp::Gt, 700.0),
    )?;
    println!("Σ[hectare > 700]: {} molecules", big.len());

    // Π: prune the point level, keep only the state name
    let skeleton = engine.project(&big, &["state", "area", "edge"], &[("state", vec!["sname"])])?;
    println!(
        "Π[state.sname, area, edge]: structure {} with {} molecules",
        skeleton
            .structure
            .render_compact(engine.db().schema()),
        skeleton.len()
    );

    // Ω / Δ / Ψ on molecule sets
    let small = engine.restrict(
        &mt_state,
        &QualExpr::cmp_const(0, 2, CmpOp::Le, 700.0),
    )?;
    let all = engine.union(&big, &small, "all_states")?;
    let none = engine.intersection(&big, &small, "none")?;
    println!(
        "Ω(big, small) = {} molecules; Ψ(big, small) = {} molecules",
        all.len(),
        none.len()
    );
    engine.verify_closure(&all)?;
    println!("\nclosure of every result over DB' verified (Theorems 2–3)");
    println!(
        "operator pipeline trace (Fig. 5):\n{}",
        engine.trace_log().render()
    );
    let _ = handles;
    Ok(())
}
