//! The pipelining stress scenario end to end: N TCP connections each
//! keeping whole `BEGIN … COMMIT` groups in flight against a durable
//! server, a deterministic forced conflict answered in pipeline order,
//! an abrupt mid-burst server kill, recovery, and acked-prefix
//! verification.
//!
//! ```text
//! cargo run --release --example pipelining
//! ```

use mad::workload::{run_net_pipeline, NetPipelineParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("mad-pipelining-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let wal = dir.join("mad.wal");

    let params = NetPipelineParams::default();
    println!(
        "pipelining stress: {} connections × {} groups in flight \
         ({} statements deep), kill after {} acks\n",
        params.connections,
        params.groups_per_burst,
        params.groups_per_burst * (4 + 2 * params.areas_per_state),
        params.kill_after_acks,
    );
    let stats = run_net_pipeline(&wal, &params)?;
    println!("acked commits before the kill : {}", stats.acked);
    println!("in-order conflict responses   : {}", stats.conflicts);
    println!("pipelined SELECT responses    : {}", stats.reads);
    println!("commits surviving recovery    : {}", stats.survived);
    println!("invariant violations          : {}", stats.violations);
    std::fs::remove_dir_all(&dir).ok();

    if stats.violations != 0 {
        return Err(format!("{} invariant violations", stats.violations).into());
    }
    if stats.conflicts == 0 {
        return Err("the forced conflict never fired".into());
    }
    println!("\nevery acknowledged commit survived the mid-burst kill, in order");
    Ok(())
}
