//! Durability end to end: a database that survives restart.
//!
//! 1. Create a durable handle (write-ahead log + group commit), commit
//!    transactions through MQL, `CHECKPOINT`, "kill the process", reopen,
//!    and show the recovered state answering molecule queries.
//! 2. Run the crash-recovery workload scenario: the concurrent mixed
//!    read/write workload over a durable handle, a simulated kill at a
//!    random WAL record boundary (plus a torn partial record), recovery,
//!    and prefix-consistency verification.
//!
//! ```text
//! cargo run --release --example durability
//! ```

use mad::mql::{Session, StatementResult};
use mad::txn::{DbHandle, FsyncPolicy};
use mad::workload::{mixed_database, run_crash_recovery, CrashParams, MixedParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("mad-durability-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let wal = dir.join("demo.wal");

    // ------------------------------------------------------------------
    println!("== 1. durable sessions: BEGIN/COMMIT, CHECKPOINT, restart\n");
    {
        let handle = DbHandle::create_durable(mixed_database()?, &wal, FsyncPolicy::Group)?;
        let mut session = Session::shared(handle.clone());
        session.execute("INSERT ATOM state (sname = 'SP', hectare = 1000.0)")?;
        session.execute_script(
            "BEGIN;\n\
             INSERT ATOM area (aid = 1);\n\
             CONNECT state[sname='SP'] TO area[aid=1] VIA state-area;\n\
             COMMIT;",
        )?;
        println!(
            "committed 2 transactions; log = {} bytes, {} fsyncs",
            handle.wal_len_bytes().unwrap(),
            handle.wal_fsync_count().unwrap()
        );
        let StatementResult::Checkpointed(stats) = session.execute("CHECKPOINT")? else {
            unreachable!()
        };
        println!(
            "CHECKPOINT folded the log: {} -> {} bytes (image at commit {})",
            stats.bytes_before, stats.bytes_after, stats.base_seq
        );
        session.execute("UPDATE state[sname='SP'] SET hectare = 1234.0")?;
        // the handle drops here with no shutdown step: the "crash"
    }
    let handle = DbHandle::open_durable(&wal, FsyncPolicy::Group)?;
    let info = handle.recovery_info().unwrap();
    println!(
        "reopened: {} commit(s) replayed on top of the checkpoint image, \
         {} torn byte(s) truncated",
        info.commits_replayed, info.truncated_bytes
    );
    let mut session = Session::shared(handle);
    let StatementResult::Molecules(mt) =
        session.execute("SELECT ALL FROM state-area WHERE state.hectare > 1200.0")?
    else {
        unreachable!()
    };
    println!(
        "recovered molecule query: {} molecule(s) — the post-checkpoint UPDATE survived\n",
        mt.len()
    );
    assert_eq!(mt.len(), 1);

    // ------------------------------------------------------------------
    println!("== 2. crash-recovery scenario: mixed workload, kill, recover, verify\n");
    for seed in [11u64, 23, 42] {
        let path = dir.join(format!("crash-{seed}.wal"));
        let stats = run_crash_recovery(
            &path,
            &CrashParams {
                mixed: MixedParams {
                    readers: 2,
                    writers: 2,
                    txns_per_writer: 10,
                    areas_per_state: 3,
                    seed,
                },
                fsync: FsyncPolicy::Group,
                tear_tail: true,
                seed,
            },
        )?;
        println!(
            "seed {seed}: {} commits pre-crash ({} conflict retries), \
             cut to {} survivor(s), {} torn byte(s) truncated, {} violations",
            stats.commits, stats.conflicts, stats.survived, stats.truncated_bytes, stats.violations
        );
        assert_eq!(stats.violations, 0, "recovered state must be a consistent prefix");
    }
    println!("\nall recovered states were exact, consistent commit prefixes");
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
