//! An interactive MQL shell over the Brazil database of Fig. 1/4.
//!
//! ```text
//! cargo run --example mql_repl
//! mql> SELECT ALL FROM state-area-edge WHERE state.sname = 'SP';
//! mql> DEFINE MOLECULE pn AS point-edge-(area-state,net-river);
//! mql> SELECT ALL FROM pn WHERE point.pname = 'p0';
//! mql> .schema        -- meta commands: .schema .stats .catalog .help .quit
//! ```
//!
//! Also works non-interactively: `echo "SELECT ALL FROM state;" | cargo run
//! --example mql_repl`.

use mad::mql::{format::render_result, Session};
use mad::storage::DatabaseStats;
use mad::workload::brazil_database;
use std::io::{BufRead, Write};

fn main() -> mad::model::Result<()> {
    let (db, _) = brazil_database()?;
    println!(
        "MAD/MQL shell — GEO_DB loaded ({} atoms, {} links). Type .help for help.",
        db.total_atoms(),
        db.total_links()
    );
    let mut session = Session::new(db);
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("mql> ");
        } else {
            print!("...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                ".quit" | ".exit" => break,
                ".help" => {
                    println!(
                        "statements: SELECT … FROM structure [WHERE …];  EXPLAIN SELECT …;\n\
                         \x20           DEFINE MOLECULE n AS …;\n\
                         \x20           INSERT ATOM t (a = v, …);  CONNECT t[a=v] TO t[a=v] VIA link;\n\
                         \x20           DISCONNECT …;  DELETE ATOM t[a=v];  UPDATE t[a=v] SET a = v;\n\
                         \x20           SELECT ALL FROM RECURSIVE t VIA link [DOWN|UP|BOTH] [DEPTH n];\n\
                         meta:       .schema  .stats  .catalog  .help  .quit"
                    );
                    continue;
                }
                ".schema" => {
                    print!("{}", session.db().schema().render());
                    continue;
                }
                ".stats" => {
                    print!("{}", DatabaseStats::collect(session.db()).render());
                    continue;
                }
                ".catalog" => {
                    let names = session.catalog_names();
                    if names.is_empty() {
                        println!("(no molecule types defined yet)");
                    } else {
                        for n in names {
                            let md = session.catalog_get(n).unwrap();
                            println!("{n} = {}", md.render_compact(session.db().schema()));
                        }
                    }
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        buffer.push_str(&line);
        // execute once a statement terminator arrives
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let stmt = std::mem::take(&mut buffer);
        match session.execute(stmt.trim()) {
            Ok(result) => print!("{}", render_result(session.db(), &result)),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    println!("bye");
    Ok(())
}
