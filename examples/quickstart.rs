//! Quickstart: define a schema, load atoms and links, derive molecules,
//! run MQL.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mad::model::{AttrType, SchemaBuilder, Value};
use mad::mql::Session;
use mad::storage::Database;

fn main() -> mad::model::Result<()> {
    // 1. schema: two atom types and one (n:m-capable) link type — no
    //    foreign keys, no auxiliary relations
    let schema = SchemaBuilder::new()
        .atom_type(
            "author",
            &[("name", AttrType::Text), ("born", AttrType::Int)],
        )
        .atom_type(
            "paper",
            &[("title", AttrType::Text), ("year", AttrType::Int)],
        )
        .link_type("wrote", "author", "paper")
        .build()?;
    let mut db = Database::new(schema);

    // 2. atoms (uniquely identified tuples) and symmetric links
    let author = db.schema().atom_type_id("author")?;
    let paper = db.schema().atom_type_id("paper")?;
    let wrote = db.schema().link_type_id("wrote")?;
    let mitschang = db.insert_atom(
        author,
        vec![Value::from("Mitschang"), Value::from(1955)],
    )?;
    let haerder = db.insert_atom(author, vec![Value::from("Härder"), Value::from(1945)])?;
    let mad_paper = db.insert_atom(
        paper,
        vec![
            Value::from("Extending the Relational Algebra to Capture Complex Objects"),
            Value::from(1989),
        ],
    )?;
    let prima = db.insert_atom(
        paper,
        vec![Value::from("PRIMA - A DBMS Prototype"), Value::from(1987)],
    )?;
    db.connect(wrote, mitschang, mad_paper)?;
    db.connect(wrote, mitschang, prima)?;
    db.connect(wrote, haerder, prima)?; // PRIMA is a *shared* subobject

    // 3. MQL: the FROM clause *is* the molecule-type definition. `wrote`
    //    is the only link type between author and paper, so plain `-`
    //    suffices (explicit form: `author-[wrote]-paper`).
    let mut session = Session::new(db);
    let result = session.execute("SELECT ALL FROM author-paper WHERE paper.year >= 1989")?;
    println!("{}", mad::mql::format::render_result(session.db(), &result));

    // 4. symmetric navigation: who wrote PRIMA? Same links, other direction.
    let r = session.execute("SELECT ALL FROM paper-author WHERE paper.year = 1987")?;
    println!("{}", mad::mql::format::render_result(session.db(), &r));
    Ok(())
}
