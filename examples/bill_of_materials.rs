//! The bill-of-material application of §3.1 and §5: one reflexive
//! `composition` link type, super- and sub-component views through the same
//! links, and recursive molecule types for the parts explosion.
//!
//! ```text
//! cargo run --example bill_of_materials
//! ```

use mad::algebra::recursive::{derive_recursive_one, RecursiveSpec};
use mad::algebra::Direction;
use mad::model::{AttrType, SchemaBuilder, Value};
use mad::mql::{format::render_result, Session, StatementResult};
use mad::storage::Database;

fn main() -> mad::model::Result<()> {
    // §3.1: "when modeling the bill-of-material application with its
    // super-component and sub-component view, we just have to define one
    // reflexive link type called 'composition' on the atom type 'parts'."
    let schema = SchemaBuilder::new()
        .atom_type(
            "parts",
            &[("pname", AttrType::Text), ("cost", AttrType::Float)],
        )
        .link_type("composition", "parts", "parts")
        .build()?;
    let mut db = Database::new(schema);
    let parts = db.schema().atom_type_id("parts")?;
    let comp = db.schema().link_type_id("composition")?;
    let part = |db: &mut Database, name: &str, cost: f64| {
        db.insert_atom(parts, vec![Value::from(name), Value::from(cost)])
    };
    let engine = part(&mut db, "engine", 5000.0)?;
    let piston = part(&mut db, "piston", 220.0)?;
    let crank = part(&mut db, "crankshaft", 900.0)?;
    let ring = part(&mut db, "piston ring", 12.0)?;
    let bolt = part(&mut db, "bolt", 0.5)?;
    // engine ⊃ {piston, crankshaft}; piston ⊃ {ring, bolt}; crank ⊃ {bolt}
    db.connect(comp, engine, piston)?;
    db.connect(comp, engine, crank)?;
    db.connect(comp, piston, ring)?;
    db.connect(comp, piston, bolt)?;
    db.connect(comp, crank, bolt)?; // bolt is a SHARED sub-part (DAG!)

    // one-level views through MQL, exploiting the link type's symmetry
    let mut session = Session::new(db);
    println!("sub-component view (one level):");
    let r = session.execute(
        "SELECT ALL FROM super:parts-[composition>]-sub:parts WHERE super.pname = 'engine'",
    )?;
    println!("{}", render_result(session.db(), &r));

    println!("super-component view (one level, same links backwards):");
    let r = session.execute(
        "SELECT ALL FROM part:parts-[composition<]-used_in:parts WHERE part.pname = 'bolt'",
    )?;
    println!("{}", render_result(session.db(), &r));

    // recursive molecule types (§5 outlook / [Schö89])
    println!("parts explosion (recursive molecule, MQL):");
    let r = session.execute(
        "SELECT ALL FROM RECURSIVE parts VIA composition DOWN WHERE parts.pname = 'engine'",
    )?;
    println!("{}", render_result(session.db(), &r));
    if let StatementResult::Recursive(ms) = &r {
        println!(
            "explosion size {} parts, depth {}, shared sub-parts present: {}\n",
            ms[0].size(),
            ms[0].depth(),
            ms[0].reconverging
        );
    }

    println!("where-used (recursive, upwards):");
    let r = session.execute(
        "SELECT ALL FROM RECURSIVE parts VIA composition UP WHERE parts.pname = 'bolt'",
    )?;
    println!("{}", render_result(session.db(), &r));

    // the same explosion through the library API
    let spec = RecursiveSpec {
        atom_type: parts,
        link: comp,
        dir: Direction::Fwd,
        max_depth: None,
    };
    let m = derive_recursive_one(session.db(), &spec, engine)?;
    let total_cost: f64 = m
        .atom_set()
        .iter()
        .map(|&a| session.db().atom(a).unwrap()[1].as_float().unwrap())
        .sum();
    println!(
        "library API: engine explodes into {} distinct parts, Σcost = {total_cost:.1}",
        m.size()
    );
    Ok(())
}
