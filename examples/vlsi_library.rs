//! VLSI design library — the engineering workload that motivated "molecular
//! objects" ([BB84], §1): cells instantiate library cells; a library cell's
//! definition is ONE object shared by all its instances.
//!
//! ```text
//! cargo run --example vlsi_library
//! ```

use mad::algebra::ops::Engine;
use mad::algebra::qual::{CmpOp, QualExpr};
use mad::algebra::structure::StructureBuilder;
use mad::nf2::materialize;
use mad::workload::{generate_vlsi, VlsiParams};

fn main() -> mad::model::Result<()> {
    let (db, h) = generate_vlsi(&VlsiParams::default())?;
    println!(
        "design library: {} cells, {} instances, {} nets, {} pins\n",
        db.atom_count(h.cell),
        db.atom_count(h.inst),
        db.atom_count(h.net),
        db.atom_count(h.pin)
    );
    let mut engine = Engine::new(db);

    // design-hierarchy molecule: top cell → instances → definition cells
    let md = StructureBuilder::new(engine.db().schema())
        .node_as("top", "cell")
        .node("inst")
        .node_as("def", "cell")
        .edge_named("cell-inst", "top", "inst")
        .edge_named("inst-of", "inst", "def")
        .build()?;
    let hierarchy = engine.define("hierarchy", md)?;
    // only top-level cells have instances; leaf cells give root-only molecules
    let populated = engine.restrict(
        &hierarchy,
        &QualExpr::CountCmp {
            node: 1,
            op: CmpOp::Gt,
            count: 0,
        },
    )?;
    println!(
        "hierarchy molecules with instances: {} (of {} cells)",
        populated.len(),
        hierarchy.len()
    );
    let shared = populated.shared_atoms();
    println!(
        "shared subobjects: {} atoms (library cells used by several parents)",
        shared.len()
    );

    // netlist molecule: cell → nets → pins → bound instances
    let md = StructureBuilder::new(engine.db().schema())
        .node("cell")
        .node("net")
        .node("pin")
        .node("inst")
        .edge_named("cell-net", "cell", "net")
        .edge_named("net-pin", "net", "pin")
        .edge_named("inst-pin", "pin", "inst")
        .build()?;
    let netlist = engine.define("netlist", md)?;
    let connected = engine.restrict(
        &netlist,
        &QualExpr::CountCmp {
            node: 2,
            op: CmpOp::Ge,
            count: 1,
        },
    )?;
    println!("netlist molecules with pins: {}", connected.len());
    if let Some(m) = connected.molecules.first() {
        println!("\none netlist molecule:");
        print!("{}", m.render_tree(engine.db(), &connected.structure));
    }

    // what a hierarchical model would pay: NF² materialization duplicates
    // every shared library cell per instance tree
    let mat = materialize(engine.db(), &populated)?;
    println!(
        "\nNF² materialization of the hierarchy: {} atom instances for {} distinct atoms \
         (duplication ×{:.2})",
        mat.atom_instances,
        mat.distinct_atoms,
        mat.duplication_factor()
    );
    engine.verify_closure(&populated)?;
    println!("closure over DB' verified");
    Ok(())
}
