//! Streaming replication and failover end to end: a primary streaming
//! resolved WAL commit records to sync-quorum standbys, fault injection
//! on the replication stream, a mid-traffic kill of the primary, standby
//! promotion, and acked-prefix verification on the promoted node.
//!
//! 1. A small topology by hand: primary + standby over loopback, watch
//!    the standby bootstrap, follow live commits, and serve read-only
//!    snapshot queries of its own.
//! 2. The failover scenario: TCP writers/readers against a replicated
//!    primary whose stream to the promotion candidate runs through a
//!    fault-injecting proxy (a torn frame mid-stream), plus one extra
//!    standby whose *own log* is rigged to fail fsync — it must halt
//!    cleanly. Kill the primary mid-traffic, promote the candidate, and
//!    verify every client-acknowledged commit survived whole and in
//!    order; then keep committing on the promoted node.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use mad::net::{Client, Server};
use mad::repl::{NetFault, NetFaultPlan, ReplPrimary, Standby, StandbyConfig};
use mad::txn::{DbHandle, FaultPlan, FsyncPolicy, ReplAck};
use mad::workload::{mixed_database, run_failover, FailoverParams};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("mad-failover-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;

    // ------------------------------------------------------------------
    println!("== 1. a replicated pair by hand\n");
    let primary = DbHandle::create_durable(
        mixed_database()?,
        dir.join("pair-primary.wal"),
        FsyncPolicy::Group,
    )?;
    let mut repl = ReplPrimary::start(primary.clone(), "127.0.0.1:0")?;
    println!("primary streaming commits on {}", repl.local_addr());

    let standby = Standby::start(StandbyConfig::new(
        repl.local_addr().to_string(),
        dir.join("pair-standby.wal"),
        FsyncPolicy::Group,
    ))?;
    println!("standby bootstrapped at sequence {}", standby.replicated_seq());

    // sync-quorum: COMMIT acks only once the standby holds it durably
    primary.set_repl_ack(ReplAck::SyncQuorum(1));
    let server = Server::serve(primary.clone(), "127.0.0.1:0")?;
    let mut client = Client::connect(server.local_addr())?;
    client.execute("BEGIN")?;
    client.execute("INSERT ATOM state (sname = 'replicated', hectare = 1.0)")?;
    let ack = client.execute("COMMIT")?;
    print!("client: {ack}");
    println!(
        "standby after the ack: sequence {} ({} record(s) applied) — \
         quorum means the ack already implies this",
        standby.replicated_seq(),
        standby.records_applied(),
    );

    // the standby's handle serves ordinary read-only sessions
    let ro = Server::serve(standby.handle(), "127.0.0.1:0")?;
    let mut reader = Client::connect(ro.local_addr())?;
    let text = reader.execute("SELECT ALL FROM state WHERE state.sname = 'replicated'")?;
    println!("read from the standby: {}", text.lines().next().unwrap_or(""));
    let refused = reader.execute("INSERT ATOM area (aid = 99)");
    println!(
        "write to the standby is refused: {}",
        refused.expect_err("standbys are read-only")
    );
    drop(client);
    drop(reader);
    ro.shutdown();
    server.shutdown();
    repl.shutdown();

    // promotion turns the standby into a writable primary
    let (promoted, report) = standby.promote()?;
    println!(
        "promoted at sequence {} ({} commit(s) replayed, {} torn byte(s) truncated); \
         read-only: {}\n",
        report.last_seq,
        report.commits_replayed,
        report.truncated_bytes,
        promoted.is_read_only(),
    );
    drop(promoted);

    // ------------------------------------------------------------------
    println!("== 2. failover under fault injection (kill → promote → verify)\n");
    let params = FailoverParams {
        net_fault: Some(NetFaultPlan {
            kind: NetFault::TornFrame,
            at_frame: 4,
            max_fires: 2,
        }),
        wal_fault: Some(FaultPlan {
            fail_fsync_at: Some(4),
            ..Default::default()
        }),
        ..Default::default()
    };
    println!(
        "{} writers × {} groups + {} readers; quorum of {} standbys; \
         torn frame injected into the candidate's stream; one extra \
         standby with a rigged fsync; kill after {} acks…",
        params.writers, params.txns_per_writer, params.readers, params.standbys,
        params.kill_after_acks,
    );
    let t0 = Instant::now();
    let stats = run_failover(&dir, &params)?;
    println!(
        "acked {} commit(s) through sequence {} ({} conflict retries, {} standby reads) \
         in {:?}",
        stats.acked,
        stats.max_acked_seq,
        stats.conflicts,
        stats.standby_reads,
        t0.elapsed(),
    );
    println!(
        "net fault fired {} time(s); candidate reconnected {} time(s); \
         storage-faulted standby halted cleanly: {}",
        stats.net_fault_fires, stats.standby_reconnects, stats.faulted_standby_halted,
    );
    println!(
        "promoted at sequence {} ({} torn byte(s) truncated); {} post-failover \
         commit(s); violations: {}",
        stats.promoted_seq, stats.truncated_bytes, stats.post_failover_commits,
        stats.violations,
    );
    std::fs::remove_dir_all(&dir).ok();
    if stats.violations != 0 {
        return Err(format!("failover scenario violated invariants: {stats:?}").into());
    }
    println!("\nevery acknowledged commit survived promotion as an exact gap-free prefix ✓");
    Ok(())
}
