#!/usr/bin/env bash
# Perf-trajectory snapshot: run the two derivation benches in the bench
# profile with --quick and merge their median ns/op into BENCH_derive.json.
# Cargo runs bench binaries with the package dir as cwd, so the report
# lands in crates/bench/. Future PRs diff this file to catch regressions.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo bench -p mad-bench --bench derivation_strategies -- --quick
cargo bench -p mad-bench --bench restriction_pushdown -- --quick
echo "merged results into $(pwd)/crates/bench/BENCH_derive.json"
