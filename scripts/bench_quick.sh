#!/usr/bin/env bash
# Perf-trajectory snapshot: run the derivation, concurrency (B8), WAL
# durability (B9), network (B10) and replication (B11) benches with
# --quick and merge their results into BENCH_derive.json.
# Cargo runs bench binaries with the package dir as cwd, so the report
# lands in crates/bench/.
#
# After the run, the fresh numbers are diffed against the baseline
# committed at HEAD and the per-bench % delta is printed, so every PR sees
# its own perf regressions. The exit code is nonzero ONLY when a bench
# present in the baseline is missing from the fresh run (a silently
# dropped bench is a coverage bug; timing noise is not).
#
# The B10 read-throughput rows double as the observability overhead
# check: the network path is fully instrumented (per-statement trace,
# two histograms, the slow-query offer), so a sustained drop in
# B10_net/read_stmts_per_sec beyond the 3% noise band means the
# instrumentation got too expensive. The verdict is printed every run;
# BENCH_STRICT=1 promotes an overhead breach to a failing exit.
set -euo pipefail
cd "$(dirname "$0")/.."

REPORT=crates/bench/BENCH_derive.json
BASELINE="$(mktemp)"
trap 'rm -f "$BASELINE"' EXIT
if git show HEAD:"$REPORT" > "$BASELINE" 2>/dev/null; then
  have_baseline=1
else
  have_baseline=0
  echo "no committed baseline at HEAD:$REPORT — skipping diff"
fi

cargo bench -p mad-bench --bench derivation_strategies -- --quick
cargo bench -p mad-bench --bench restriction_pushdown -- --quick
cargo bench -p mad-bench --bench concurrent_sessions -- --quick
cargo bench -p mad-bench --bench wal_commit -- --quick
cargo bench -p mad-bench --bench net_throughput -- --quick
cargo bench -p mad-bench --bench repl_lag -- --quick
echo "merged results into $(pwd)/$REPORT"

if [ "$have_baseline" = 1 ]; then
  python3 - "$BASELINE" "$REPORT" "${BENCH_STRICT:-0}" <<'EOF'
import json, sys

base = json.load(open(sys.argv[1]))
fresh = json.load(open(sys.argv[2]))
strict = sys.argv[3] == "1"

missing = sorted(k for k in base if k not in fresh)
width = max((len(k) for k in base), default=0)
print(f"\n{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  {'delta':>8}")
for k in sorted(base):
    if k in missing:
        continue
    b, f = base[k], fresh[k]
    delta = (f - b) / b * 100 if b else float("inf")
    print(f"{k:<{width}}  {b:>12.1f}  {f:>12.1f}  {delta:>+7.1f}%")
for k in sorted(k for k in fresh if k not in base):
    print(f"{k:<{width}}  {'-':>12}  {fresh[k]:>12.1f}      new")

# observability overhead gate: instrumented read throughput on the
# network path must stay within 3% of the committed baseline
obs_keys = [k for k in base if k.startswith("B10_net/read_stmts_per_sec/") and k in fresh]
breaches = []
for k in obs_keys:
    drop = (base[k] - fresh[k]) / base[k] * 100 if base[k] else 0.0
    if drop > 3.0:
        breaches.append((k, drop))
if obs_keys:
    if breaches:
        print("\ninstrumentation overhead check: FAIL (>3% read-throughput drop)")
        for k, drop in breaches:
            print(f"  {k}: -{drop:.1f}%")
        if strict:
            sys.exit(1)
        print("  (advisory: rerun to rule out noise, or set BENCH_STRICT=1 to enforce)")
    else:
        print("\ninstrumentation overhead check: OK (B10 read throughput within 3% of baseline)")

if missing:
    print("\nMISSING from fresh run (baseline benches that no longer report):")
    for k in missing:
        print(f"  {k}")
    sys.exit(1)
EOF
fi
