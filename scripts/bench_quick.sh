#!/usr/bin/env bash
# Perf-trajectory snapshot: run the derivation, concurrency (B8), WAL
# durability (B9), network (B10) and replication (B11) benches with
# --quick and merge their results into BENCH_derive.json.
# Cargo runs bench binaries with the package dir as cwd, so the report
# lands in crates/bench/.
#
# After the run, the fresh numbers are diffed against the baseline
# committed at HEAD and the per-bench % delta is printed, so every PR sees
# its own perf regressions. The exit code is nonzero ONLY when a bench
# present in the baseline is missing from the fresh run (a silently
# dropped bench is a coverage bug; timing noise is not).
set -euo pipefail
cd "$(dirname "$0")/.."

REPORT=crates/bench/BENCH_derive.json
BASELINE="$(mktemp)"
trap 'rm -f "$BASELINE"' EXIT
if git show HEAD:"$REPORT" > "$BASELINE" 2>/dev/null; then
  have_baseline=1
else
  have_baseline=0
  echo "no committed baseline at HEAD:$REPORT — skipping diff"
fi

cargo bench -p mad-bench --bench derivation_strategies -- --quick
cargo bench -p mad-bench --bench restriction_pushdown -- --quick
cargo bench -p mad-bench --bench concurrent_sessions -- --quick
cargo bench -p mad-bench --bench wal_commit -- --quick
cargo bench -p mad-bench --bench net_throughput -- --quick
cargo bench -p mad-bench --bench repl_lag -- --quick
echo "merged results into $(pwd)/$REPORT"

if [ "$have_baseline" = 1 ]; then
  python3 - "$BASELINE" "$REPORT" <<'EOF'
import json, sys

base = json.load(open(sys.argv[1]))
fresh = json.load(open(sys.argv[2]))

missing = sorted(k for k in base if k not in fresh)
width = max((len(k) for k in base), default=0)
print(f"\n{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  {'delta':>8}")
for k in sorted(base):
    if k in missing:
        continue
    b, f = base[k], fresh[k]
    delta = (f - b) / b * 100 if b else float("inf")
    print(f"{k:<{width}}  {b:>12.1f}  {f:>12.1f}  {delta:>+7.1f}%")
for k in sorted(k for k in fresh if k not in base):
    print(f"{k:<{width}}  {'-':>12}  {fresh[k]:>12.1f}      new")
if missing:
    print("\nMISSING from fresh run (baseline benches that no longer report):")
    for k in missing:
        print(f"  {k}")
    sys.exit(1)
EOF
fi
