#!/usr/bin/env bash
# The tier-1 gate, runnable locally and in CI:
#
#   1. release build (the profile the benches and examples use),
#   2. full test suite,
#   3. clippy over the whole workspace with warnings promoted to errors
#      (vendored shim crates included — they are workspace members),
#   4. mad-check, the workspace's own static analyzer: lock-hierarchy
#      order against the normative ARCHITECTURE.md table, crate layering,
#      the panic/cast ratchets, `#![forbid(unsafe_code)]` coverage and
#      wire-tag exhaustiveness (see crates/check),
#   5. rustdoc, warning-free (every crate carries `//!` module docs),
#   6. the crash-recovery scenario end to end: mixed workload over a
#      durable handle, kill at a random WAL record boundary, recovery,
#      prefix-consistency verification (examples/durability.rs),
#   7. the networked crash scenario on loopback: TCP clients against a
#      durable server, kill mid-traffic, restart, acked-prefix
#      verification (examples/network.rs),
#   8. the replication failover scenario on loopback: sync-quorum
#      standbys under fault injection, kill the primary mid-traffic,
#      promote a standby, acked-prefix verification on the promoted
#      node (examples/failover.rs).
#
# Any step failing fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== mad-check (lock order, layering, panic/cast ratchets, wire tags)"
cargo run --release --quiet -p mad-check

echo "== cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== crash-recovery scenario (examples/durability.rs)"
cargo run --release --quiet --example durability

echo "== networked crash scenario on loopback (examples/network.rs)"
cargo run --release --quiet --example network

echo "== replication failover scenario under fault injection (examples/failover.rs)"
cargo run --release --quiet --example failover

echo "ci.sh: all green"
