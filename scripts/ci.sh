#!/usr/bin/env bash
# The tier-1 gate, runnable locally and in CI:
#
#   1. release build (the profile the benches and examples use),
#   2. full test suite,
#   3. clippy over the whole workspace with warnings promoted to errors
#      (vendored shim crates included — they are workspace members),
#   4. mad-check, the workspace's own static analyzer: lock-hierarchy
#      order against the normative ARCHITECTURE.md table, crate layering,
#      the panic/cast ratchets, `#![forbid(unsafe_code)]` coverage and
#      wire-tag exhaustiveness (see crates/check),
#   5. rustdoc, warning-free (every crate carries `//!` module docs),
#   6. the crash-recovery scenario end to end: mixed workload over a
#      durable handle, kill at a random WAL record boundary, recovery,
#      prefix-consistency verification (examples/durability.rs),
#   7. the networked crash scenario on loopback: TCP clients against a
#      durable server, kill mid-traffic, restart, acked-prefix
#      verification (examples/network.rs),
#   8. the pipelining stress scenario on loopback: N connections with
#      whole transaction groups in flight, a deterministic forced
#      conflict answered in pipeline order, an abrupt mid-burst server
#      kill, acked-prefix verification (examples/pipelining.rs),
#   9. the replication failover scenario on loopback: sync-quorum
#      standbys under fault injection, kill the primary mid-traffic,
#      promote a standby, acked-prefix verification on the promoted
#      node (examples/failover.rs),
#  10. the observability smoke: a real `madd --slow-query-ms 0` daemon
#      driven over TCP by `madc`, asserting EXPLAIN ANALYZE renders a
#      staged trace, SHOW STATS serves table + JSON forms, and the
#      slow-query ring buffer recorded the traffic.
#
# Any step failing fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace matters: the root manifest is both the workspace and the
# `mad` facade package, so a bare `cargo build` here builds only the
# facade — not the `madd`/`madc` binaries the scenario steps run.
echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== mad-check (lock order, layering, panic/cast ratchets, wire tags)"
cargo run --release --quiet -p mad-check

echo "== cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== crash-recovery scenario (examples/durability.rs)"
cargo run --release --quiet --example durability

echo "== networked crash scenario on loopback (examples/network.rs)"
cargo run --release --quiet --example network

echo "== pipelining stress with mid-burst kill (examples/pipelining.rs)"
cargo run --release --quiet --example pipelining

echo "== replication failover scenario under fault injection (examples/failover.rs)"
cargo run --release --quiet --example failover

echo "== observability smoke over TCP (madd --slow-query-ms 0 + madc)"
OBS_PORT=7879
./target/release/madd --addr "127.0.0.1:$OBS_PORT" --slow-query-ms 0 &
MADD_PID=$!
trap 'kill "$MADD_PID" 2>/dev/null; wait "$MADD_PID" 2>/dev/null; true' EXIT
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$OBS_PORT") 2>/dev/null; then break; fi
  sleep 0.1
done
SMOKE="$(./target/release/madc "127.0.0.1:$OBS_PORT" -e "
  SELECT ALL FROM state-area;
  EXPLAIN ANALYZE SELECT ALL FROM state-area;
  SHOW STATS net;
  SHOW STATS mql AS JSON;")"
kill "$MADD_PID" 2>/dev/null
wait "$MADD_PID" 2>/dev/null || true
trap - EXIT
fail() { echo "observability smoke: $1"; printf '%s\n' "$SMOKE"; exit 1; }
grep -q '^  derive' <<<"$SMOKE" || fail "EXPLAIN ANALYZE trace has no derive stage"
grep -q '^  total' <<<"$SMOKE" || fail "EXPLAIN ANALYZE trace has no total line"
grep -q 'net\.stmt_ns' <<<"$SMOKE" || fail "SHOW STATS net lost the statement histogram"
grep -q '"mql.statements"' <<<"$SMOKE" || fail "SHOW STATS mql AS JSON lost the statement counter"
# --slow-query-ms 0 records every statement: the ring buffer must be non-empty
grep -Eq 'net\.slow\.recorded +[1-9]' <<<"$SMOKE" || fail "slow-query log recorded nothing at threshold 0"

echo "ci.sh: all green"
