#!/usr/bin/env bash
# The tier-1 gate, runnable locally and in CI:
#
#   1. release build (the profile the benches and examples use),
#   2. full test suite,
#   3. clippy over the whole workspace with warnings promoted to errors
#      (vendored shim crates included — they are workspace members).
#
# Any step failing fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all green"
