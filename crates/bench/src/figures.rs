//! Regeneration of every figure of the paper plus the in-text examples.
//!
//! Output sections map 1:1 to the experiment index in `DESIGN.md`
//! (E1 = Fig. 1, …, E8) plus the B2 duplication table. `EXPERIMENTS.md`
//! records this output against the paper's artifacts. Run via
//! `cargo run -p mad-bench --bin figures` or as part of `cargo bench`
//! (the `figures` bench target).

use crate::{presets, table};
use mad_core::atom_ops::{self, AtomPred};
use mad_core::derive::{derive_molecules, DeriveOptions};
use mad_core::ops::Engine;
use mad_core::qual::{CmpOp, QualExpr};
use mad_core::recursive::{derive_recursive_one, RecursiveSpec};
use mad_core::structure::{path, StructureBuilder};
use mad_model::Value;
use mad_nf2::materialize;
use mad_relational::algebra as rel_alg;
use mad_relational::RelationalImage;
use mad_storage::database::Direction;
use mad_storage::DatabaseStats;
use mad_workload::{brazil_database, generate_bom};

fn heading(s: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{s}");
    println!("{}", "=".repeat(72));
}

/// Run every figure/example regeneration in order.
pub fn run_all() {
    fig1();
    fig2();
    fig3();
    fig4();
    fig5();
    e6_border();
    e7_mql();
    e8_intersection();
    b2_duplication();
    claim_auxiliary_relations();
}

/// Fig. 1 — the sample geographic application: ER/MAD schema + networks.
pub fn fig1() {
    heading("Figure 1 — sample geographic application (schema + atom networks)");
    let (db, _) = brazil_database().unwrap();
    println!("MAD diagram (database schema):");
    print!("{}", db.schema().render());
    println!("\natom networks (database occurrence):");
    print!("{}", DatabaseStats::collect(&db).render());
}

/// Fig. 2 — molecule types `point neighborhood` and `mt state`, with the
/// shared subobjects made visible.
pub fn fig2() {
    heading("Figure 2 — some complex objects (dynamic definition + sharing)");
    let (db, h) = brazil_database().unwrap();
    let mut engine = Engine::new(db);
    // mt state = state-area-edge-point
    let md = path(engine.db().schema(), &["state", "area", "edge", "point"]).unwrap();
    println!(
        "molecule structure: {}",
        md.render_compact(engine.db().schema())
    );
    let mt_state = engine.define("mt_state", md).unwrap();
    println!(
        "molecule set: {} molecules (one per state atom)",
        mt_state.len()
    );
    let shared = mt_state.shared_atoms();
    println!(
        "shared subobjects: {} atoms appear in >= 2 state molecules",
        shared.len()
    );
    // point neighborhood — the same networks, symmetric direction
    let md = StructureBuilder::new(engine.db().schema())
        .node("point")
        .node("edge")
        .node("area")
        .node("state")
        .node("net")
        .node("river")
        .edge("point", "edge")
        .edge("edge", "area")
        .edge("area", "state")
        .edge("edge", "net")
        .edge("net", "river")
        .build()
        .unwrap();
    println!(
        "\nmolecule structure: {}",
        md.render_compact(engine.db().schema())
    );
    let ep = engine.db().schema().link_type_id("edge-point").unwrap();
    let pn_root = engine.db().link_store(ep).partners_fwd(h.shared_edges[0])[0];
    let m = engine.derive_single(&md, pn_root).unwrap();
    println!("one `point neighborhood` molecule (note river AND state reached):");
    print!("{}", m.render_tree(engine.db(), &md));
}

/// Fig. 3 — comparison of relational vs. MAD concepts, each row *executed*.
pub fn fig3() {
    heading("Figure 3 — comparison of corresponding concepts (executed)");
    let (db, h) = brazil_database().unwrap();
    let image = RelationalImage::from_database(&db).unwrap();
    let state_rel = image.atom_relation(h.state);
    let rows = vec![
        vec![
            "attribute".into(),
            "attribute".into(),
            format!("state.sname / sname"),
        ],
        vec![
            "relation schema".into(),
            "atom-type description".into(),
            format!(
                "{} cols / {} attrs",
                state_rel.arity(),
                db.schema().atom_type(h.state).arity()
            ),
        ],
        vec![
            "tuple set".into(),
            "atom-type occurrence".into(),
            format!("{} tuples / {} atoms", state_rel.len(), db.atom_count(h.state)),
        ],
        vec![
            "tuple".into(),
            "atom".into(),
            "1 row ↔ 1 identified atom".into(),
        ],
        vec![
            "relation".into(),
            "atom type".into(),
            "state ↔ state".into(),
        ],
        vec![
            "— (FK + aux relation)".into(),
            "link / link type".into(),
            format!(
                "{} aux relations vs {} link types",
                image.auxiliary_count(),
                db.schema().link_type_count()
            ),
        ],
        vec![
            "referential integrity (?)".into(),
            "referential integrity (!)".into(),
            format!(
                "audit: {} violations (enforced by construction)",
                db.audit_referential_integrity().len()
            ),
        ],
        vec![
            "'relation domain'".into(),
            "database domain DB*".into(),
            "closure verified by tests".into(),
        ],
    ];
    print!(
        "{}",
        table(&["relational concept", "MAD concept", "witness"], &rows)
    );
}

/// Fig. 4 — the formal specification of GEO_DB (schema + occurrence dump).
pub fn fig4() {
    heading("Figure 4 — formal specification of the geographic database");
    let (db, _) = brazil_database().unwrap();
    print!("{}", db.schema().render());
    println!();
    // occurrence excerpts in the paper's <atom …> style
    for (ty, def) in db.schema().atom_types() {
        let atoms: Vec<String> = db
            .atoms_of(ty)
            .take(3)
            .map(|(id, t)| {
                let vals: Vec<String> = t.iter().map(Value::to_string).collect();
                format!("{id}=<{}>", vals.join(","))
            })
            .collect();
        println!(
            "{} = <{}, {{…}}, {{{}{}}}> ∈ AT*",
            def.name,
            def.name,
            atoms.join(", "),
            if db.atom_count(ty) > 3 { ", …" } else { "" }
        );
    }
    for (lt, def) in db.schema().link_types() {
        let links: Vec<String> = db
            .links_of(lt)
            .take(3)
            .map(|(a, b)| format!("<{a},{b}>"))
            .collect();
        println!(
            "{} = <{}, {{{}, {}}}, {{{}{}}}> ∈ LT*",
            def.name,
            def.name,
            db.schema().atom_type(def.ends[0]).name,
            db.schema().atom_type(def.ends[1]).name,
            links.join(", "),
            if db.link_count(lt) > 3 { ", …" } else { "" }
        );
    }
}

/// Fig. 5 — the staged definition of molecule-type operators, traced live.
pub fn fig5() {
    heading("Figure 5 — molecule-type operation pipeline (op-specific → prop → α)");
    let (db, _) = brazil_database().unwrap();
    let mut engine = Engine::new(db);
    engine.enable_tracing();
    let md = path(engine.db().schema(), &["state", "area", "edge", "point"]).unwrap();
    let mt = engine.define("mt_state", md).unwrap();
    let big = engine
        .restrict(&mt, &QualExpr::cmp_const(0, 2, CmpOp::Gt, 700.0))
        .unwrap();
    engine.verify_closure(&big).unwrap();
    print!("{}", engine.trace_log().render());
    println!(
        "result: {} of {} molecules qualify; closure over DB' verified",
        big.len(),
        mt.len()
    );
}

/// §3.1 in-text example — ×(area, edge) = border; σ\[hectare>1000\](border);
/// and the relational equivalents.
pub fn e6_border() {
    heading("E6 — §3.1 example: ×(area,edge)=border, σ[hectare>1000], relational equivalent");
    let (db, h) = brazil_database().unwrap();
    let image = RelationalImage::from_database(&db).unwrap();
    let mut db = db;
    // MAD side: note `area` and `state.hectare` — we product state×area-like
    // types with disjoint descriptions: use state (has hectare) and edge.
    let border = atom_ops::product(&mut db, h.state, h.edge, Some("border")).unwrap();
    let big = atom_ops::restrict(
        &mut db,
        border,
        &AtomPred::cmp(2, CmpOp::Gt, 1000.0),
        Some("big_border"),
    )
    .unwrap();
    println!(
        "MAD:        ×(state, edge) = border with {} atoms; σ[hectare>1000](border) = {} atoms",
        db.atom_count(border),
        db.atom_count(big)
    );
    println!(
        "            border inherits {} link types from its operands",
        db.schema().link_types_of(border).len()
    );
    // relational side
    let s = image.atom_relation(h.state);
    let e = image.atom_relation(h.edge);
    let s2 = rel_alg::rename(s, &[("_id", "_sid")]).unwrap();
    let e2 = rel_alg::rename(e, &[("_id", "_eid")]).unwrap();
    let prod = rel_alg::product(&s2, &e2).unwrap();
    let sel = rel_alg::select(
        &prod,
        &rel_alg::Pred::cmp("hectare", rel_alg::Cmp::Gt, 1000.0),
    )
    .unwrap();
    println!(
        "relational: state × edge = {} tuples; σ[hectare>1000] = {} tuples",
        prod.len(),
        sel.len()
    );
    assert_eq!(prod.len(), db.atom_count(border));
    assert_eq!(sel.len(), db.atom_count(big));
    println!("            counts agree — the atom-type algebra degenerates to the relational algebra");
}

/// §4 in-text examples — the two MQL queries of the paper, end to end.
pub fn e7_mql() {
    heading("E7 — §4 MQL examples");
    let (db, _) = brazil_database().unwrap();
    let mut session = mad_mql::Session::new(db);
    for q in [
        "SELECT ALL FROM mt_state(state-area-edge-point);",
        "SELECT ALL FROM point-edge-(area-state,net-river) WHERE point.pname = 'p0';",
    ] {
        println!("\nMQL> {q}");
        let r = session.execute(q).unwrap();
        match &r {
            mad_mql::StatementResult::Molecules(mt) => {
                println!(
                    "  → molecule type `{}` with {} molecule(s), structure {}",
                    mt.name,
                    mt.len(),
                    mt.structure.render_compact(session.db().schema())
                );
                if let Some(m) = mt.molecules.first() {
                    print!("{}", m.render_tree(session.db(), &mt.structure));
                }
            }
            other => println!("  → {other:?}"),
        }
    }
}

/// §3.2 — Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2)), executed.
pub fn e8_intersection() {
    heading("E8 — §3.2: intersection via double difference");
    let (db, _) = brazil_database().unwrap();
    let mut engine = Engine::new(db);
    let md = path(engine.db().schema(), &["state", "area", "edge"]).unwrap();
    let mt = engine.define("mt_state", md).unwrap();
    // mt1: hectare > 500; mt2: hectare <= 900  → intersection: (500, 900]
    let mt1 = engine
        .restrict(&mt, &QualExpr::cmp_const(0, 2, CmpOp::Gt, 500.0))
        .unwrap();
    let mt2 = engine
        .restrict(&mt, &QualExpr::cmp_const(0, 2, CmpOp::Le, 900.0))
        .unwrap();
    let psi = engine.intersection(&mt1, &mt2, "psi").unwrap();
    println!(
        "Ψ(σ[hectare>500], σ[hectare<=900]) over {} states = {} molecules",
        mt.len(),
        psi.len()
    );
    let direct = mt
        .molecules
        .iter()
        .filter(|m| {
            let h = engine.db().atom(m.root).unwrap()[2].as_float().unwrap();
            h > 500.0 && h <= 900.0
        })
        .count();
    assert_eq!(psi.len(), direct);
    println!("matches the direct count ({direct}); Ψ = Δ(mt1, Δ(mt1, mt2)) confirmed");
}

/// B2 — the NF² duplication table (the §5 sharing claim, measured).
pub fn b2_duplication() {
    heading("B2 — NF² duplication of shared subobjects (parts explosion, depth 4)");
    let mut rows = Vec::new();
    for (share, params) in presets::bom_share_sweep() {
        let (db, h) = generate_bom(&params).unwrap();
        let engine = Engine::new(db);
        // two-level structure repeated: super -> sub (level-at-a-time view)
        let md = StructureBuilder::new(engine.db().schema())
            .node_as("l0", "parts")
            .node_as("l1", "parts")
            .node_as("l2", "parts")
            .edge_directed("composition", "l0", "l1", Direction::Fwd)
            .edge_directed("composition", "l1", "l2", Direction::Fwd)
            .build()
            .unwrap();
        let opts = DeriveOptions {
            roots: Some(h.roots.clone()),
            ..Default::default()
        };
        let molecules = derive_molecules(engine.db(), &md, &opts).unwrap();
        let mt = mad_core::molecule::MoleculeType {
            name: "explosion".into(),
            structure: md,
            molecules,
        };
        let mat = materialize(engine.db(), &mt).unwrap();
        rows.push(vec![
            format!("{share:.1}"),
            format!("{}", mat.distinct_atoms),
            format!("{}", mat.atom_instances),
            format!("{:.2}", mat.duplication_factor()),
        ]);
    }
    print!(
        "{}",
        table(
            &["share", "MAD atoms (shared)", "NF² instances (copied)", "duplication ×"],
            &rows
        )
    );
    println!("MAD stores each shared part once; the NF² image copies it per parent.");
}

/// §2 claim — the relational transformation needs auxiliary relations.
pub fn claim_auxiliary_relations() {
    heading("§2 claim — auxiliary relations required by the relational mapping");
    let (db, _) = brazil_database().unwrap();
    let image = RelationalImage::from_database(&db).unwrap();
    println!(
        "MAD schema: {} atom types + {} link types (no auxiliary structures)",
        db.schema().atom_type_count(),
        db.schema().link_type_count()
    );
    println!(
        "relational image: {} relations = {} atom relations + {} auxiliary n:m relations",
        image.relation_count(),
        db.schema().atom_type_count(),
        image.auxiliary_count()
    );
    // parts-explosion contrast for the recursion outlook
    let (bom, h) = generate_bom(&mad_workload::BomParams {
        depth: 3,
        width: 20,
        fanout: 2,
        share: 0.5,
        seed: 5,
    })
    .unwrap();
    let spec = RecursiveSpec {
        atom_type: h.parts,
        link: h.composition,
        dir: Direction::Fwd,
        max_depth: None,
    };
    let m = derive_recursive_one(&bom, &spec, h.roots[0]).unwrap();
    println!(
        "\n§5 outlook — recursive molecule (parts explosion of one root): {} parts, depth {}",
        m.size(),
        m.depth()
    );
}
