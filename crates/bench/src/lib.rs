#![forbid(unsafe_code)]

//! # mad-bench — benchmark & figure-regeneration harness
//!
//! Everything the experiment index of `DESIGN.md` needs:
//!
//! * [`table`] — aligned text tables (the output format of the regenerated
//!   figures and of the claim benchmarks),
//! * [`presets`] — the workload configurations used by the criterion
//!   benches and the `figures` binary, so numbers in `EXPERIMENTS.md` are
//!   reproducible from one place,
//! * [`measure`] — a deterministic wall-clock helper for the table-style
//!   experiments (criterion handles the statistical ones).
//!
//! Regeneration entry points:
//!
//! * `cargo run -p mad-bench --bin figures` (= the `figures` bench target)
//!   — Fig. 1–5, E6, E7, E8 and the B2 duplication table ([`figures`]),
//! * `cargo run --release -p mad-bench --bin tables` (= the `claim_tables`
//!   bench target) — the B1/B3/B4/B5/B6/B7 summary tables ([`tables`]),
//! * `cargo bench -p mad-bench` — all of the above plus the statistical
//!   criterion versions of B1, B3–B7 and E8.

pub mod figures;
pub mod tables;

use std::time::Instant;

/// Render an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in headers.iter().enumerate() {
        line.push_str(&format!("{:<w$}  ", h, w = widths[i]));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            line.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Mean wall-clock microseconds per call of `f`, measured as the **minimum
/// over five batches** of `iters` calls each — the minimum is the standard
/// robust estimator against noisy-neighbor interference.
pub fn measure<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    // one warm-up call
    let _ = f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let mean = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
        best = best.min(mean);
    }
    best
}

/// Workload presets shared by the criterion benches and the figure binary.
pub mod presets {
    use mad_workload::{BomParams, GeoParams};

    /// B1/B3/B4/B7 sweep: geography sizes.
    pub fn geo_sweep() -> Vec<(&'static str, GeoParams)> {
        vec![
            (
                "small",
                GeoParams {
                    states: 50,
                    edges_per_state: 6,
                    rivers: 10,
                    edges_per_river: 10,
                    share: 0.5,
                    cities: 20,
                    seed: 1,
                },
            ),
            (
                "medium",
                GeoParams {
                    states: 200,
                    edges_per_state: 8,
                    rivers: 40,
                    edges_per_river: 12,
                    share: 0.5,
                    cities: 50,
                    seed: 2,
                },
            ),
            (
                "large",
                GeoParams {
                    states: 800,
                    edges_per_state: 8,
                    rivers: 160,
                    edges_per_river: 12,
                    share: 0.5,
                    cities: 100,
                    seed: 3,
                },
            ),
        ]
    }

    /// B1 sharing sweep at fixed size.
    pub fn share_sweep() -> Vec<(f64, GeoParams)> {
        [0.0, 0.5, 0.9]
            .into_iter()
            .map(|share| {
                (
                    share,
                    GeoParams {
                        states: 200,
                        edges_per_state: 8,
                        rivers: 80,
                        edges_per_river: 12,
                        share,
                        cities: 0,
                        seed: 7,
                    },
                )
            })
            .collect()
    }

    /// B2/B5 BOM sweep over sharing degree.
    pub fn bom_share_sweep() -> Vec<(f64, BomParams)> {
        [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
            .into_iter()
            .map(|share| {
                (
                    share,
                    BomParams {
                        depth: 4,
                        width: 60,
                        fanout: 3,
                        share,
                        seed: 11,
                    },
                )
            })
            .collect()
    }

    /// B5 depth sweep.
    pub fn bom_depth_sweep() -> Vec<(usize, BomParams)> {
        [2usize, 4, 6, 8]
            .into_iter()
            .map(|depth| {
                (
                    depth,
                    BomParams {
                        depth,
                        width: 40,
                        fanout: 3,
                        share: 0.3,
                        seed: 13,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
        // all data lines align the second column
        let col = lines[3].find('2').unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn measure_returns_positive() {
        let us = measure(3, || (0..1000).sum::<u64>());
        assert!(us >= 0.0);
    }

    #[test]
    fn presets_are_consistent() {
        assert_eq!(presets::geo_sweep().len(), 3);
        assert_eq!(presets::share_sweep().len(), 3);
        assert_eq!(presets::bom_share_sweep().len(), 6);
        assert_eq!(presets::bom_depth_sweep().len(), 4);
    }
}
