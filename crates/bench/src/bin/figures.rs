#![forbid(unsafe_code)]

//! Regenerate Fig. 1–5 and the in-text examples (see `mad_bench::figures`).
fn main() {
    mad_bench::figures::run_all();
}
