#![forbid(unsafe_code)]

//! Print the quantitative claim tables B1–B7 (see `mad_bench::tables`).
fn main() {
    mad_bench::tables::run_all();
}
