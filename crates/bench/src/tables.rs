//! Quantitative claim tables (B1, B3, B4, B5, B6, B7) as plain wall-clock
//! measurements — the numbers recorded in `EXPERIMENTS.md`. Criterion gives
//! the statistically rigorous versions. Run via
//! `cargo run --release -p mad-bench --bin tables` or as part of
//! `cargo bench` (the `claim_tables` bench target).

use crate::{measure, presets, table};
use mad_core::atom_ops::{self, AtomPred};
use mad_core::derive::{derive_molecules, DeriveOptions, Strategy};
use mad_core::molecule::MoleculeType;
use mad_core::ops::Engine;
use mad_core::qual::{CmpOp, QualExpr};
use mad_core::recursive::{derive_recursive_one, RecursiveSpec};
use mad_core::structure::{path, StructureBuilder};
use mad_model::{AttrType, SchemaBuilder, Value};
use mad_nf2::materialize;
use mad_relational::closure::{reachable_from, transitive_closure};
use mad_relational::derive_join::{derive_via_algebra, derive_via_hash_joins};
use mad_relational::RelationalImage;
use mad_storage::{Database, IndexKind};
use mad_workload::{generate_bom, generate_geo};

fn heading(s: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{s}");
    println!("{}", "=".repeat(72));
}

/// Run every claim table in order.
pub fn run_all() {
    b1();
    b3();
    b4();
    b5();
    b6();
    b7();
}

/// B1 — molecule derivation: MAD links vs relational joins.
pub fn b1() {
    heading("B1 — derivation: MAD links vs relational join cascade (µs/derivation)");
    let mut rows = Vec::new();
    for (label, params) in presets::geo_sweep() {
        let (db, _) = generate_geo(&params).unwrap();
        let md = path(db.schema(), &["state", "area", "edge", "point"]).unwrap();
        let image = RelationalImage::from_database(&db).unwrap();
        let mad = measure(10, || {
            derive_molecules(&db, &md, &DeriveOptions::default()).unwrap()
        });
        let hash = measure(10, || derive_via_hash_joins(&image, &md).unwrap());
        let alg = if label == "small" {
            format!("{:.0}", measure(3, || derive_via_algebra(&image, &md).unwrap()))
        } else {
            "—".to_owned()
        };
        rows.push(vec![
            label.to_owned(),
            format!("{:.0}", mad),
            format!("{:.0}", hash),
            alg,
            format!("{:.2}×", hash / mad),
        ]);
    }
    for (share, params) in presets::share_sweep() {
        let (db, _) = generate_geo(&params).unwrap();
        let md = path(db.schema(), &["river", "net", "edge", "point"]).unwrap();
        let image = RelationalImage::from_database(&db).unwrap();
        let mad = measure(10, || {
            derive_molecules(&db, &md, &DeriveOptions::default()).unwrap()
        });
        let hash = measure(10, || derive_via_hash_joins(&image, &md).unwrap());
        rows.push(vec![
            format!("rivers share={share}"),
            format!("{:.0}", mad),
            format!("{:.0}", hash),
            "—".to_owned(),
            format!("{:.2}×", hash / mad),
        ]);
    }
    print!(
        "{}",
        table(
            &["workload", "MAD", "rel hash-join", "rel algebra", "join/MAD"],
            &rows
        )
    );
}

/// B3 — derivation strategies.
pub fn b3() {
    heading("B3 — derivation strategies (µs/derivation)");
    let mut rows = Vec::new();
    for (label, params) in presets::geo_sweep() {
        let (db, _) = generate_geo(&params).unwrap();
        let md = path(db.schema(), &["state", "area", "edge", "point"]).unwrap();
        let t = |s: Strategy| {
            measure(10, || {
                derive_molecules(&db, &md, &DeriveOptions::with_strategy(s)).unwrap()
            })
        };
        let per_root = t(Strategy::PerRoot);
        let level = t(Strategy::LevelAtATime);
        let par2 = t(Strategy::Parallel(2));
        let par4 = t(Strategy::Parallel(4));
        rows.push(vec![
            label.to_owned(),
            format!("{per_root:.0}"),
            format!("{level:.0}"),
            format!("{par2:.0}"),
            format!("{par4:.0}"),
            format!("{:.2}×", per_root / par4),
        ]);
    }
    for (share, params) in presets::share_sweep() {
        let (db, _) = generate_geo(&params).unwrap();
        let md = path(db.schema(), &["river", "net", "edge", "point"]).unwrap();
        let t = |s: Strategy| {
            measure(10, || {
                derive_molecules(&db, &md, &DeriveOptions::with_strategy(s)).unwrap()
            })
        };
        rows.push(vec![
            format!("rivers share={share}"),
            format!("{:.0}", t(Strategy::PerRoot)),
            format!("{:.0}", t(Strategy::LevelAtATime)),
            "—".to_owned(),
            "—".to_owned(),
            "—".to_owned(),
        ]);
    }
    // heavy per-root work: the 6-node point neighborhood over ~8k roots —
    // here the §5 parallelism outlook pays off
    {
        let (db, _) = generate_geo(&presets::geo_sweep()[2].1).unwrap();
        let md = StructureBuilder::new(db.schema())
            .node("point")
            .node("edge")
            .node("area")
            .node("state")
            .node("net")
            .node("river")
            .edge("point", "edge")
            .edge("edge", "area")
            .edge("area", "state")
            .edge("edge", "net")
            .edge("net", "river")
            .build()
            .unwrap();
        let t = |s: Strategy| {
            measure(3, || {
                derive_molecules(&db, &md, &DeriveOptions::with_strategy(s)).unwrap()
            })
        };
        let per_root = t(Strategy::PerRoot);
        let level = t(Strategy::LevelAtATime);
        let par2 = t(Strategy::Parallel(2));
        let par4 = t(Strategy::Parallel(4));
        rows.push(vec![
            "pt-neighborhood/8k roots".to_owned(),
            format!("{per_root:.0}"),
            format!("{level:.0}"),
            format!("{par2:.0}"),
            format!("{par4:.0}"),
            format!("{:.2}×", per_root / par4),
        ]);
    }
    print!(
        "{}",
        table(
            &["workload", "per-root", "level-at-a-time", "par(2)", "par(4)", "speedup p4"],
            &rows
        )
    );
}

/// B4 — restriction pushdown vs derive-then-filter.
pub fn b4() {
    heading("B4 — restriction pushdown (µs/query)");
    let (db, _) = generate_geo(&mad_workload::GeoParams {
        states: 400,
        edges_per_state: 8,
        rivers: 40,
        edges_per_river: 10,
        share: 0.5,
        cities: 0,
        seed: 21,
    })
    .unwrap();
    let mut engine = Engine::new(db);
    engine
        .create_index("state", "hectare", IndexKind::Ordered)
        .unwrap();
    let md = path(engine.db().schema(), &["state", "area", "edge", "point"]).unwrap();
    let mut rows = Vec::new();
    for (label, threshold) in [
        ("~0.1%", 1998.0),
        ("~1%", 1981.0),
        ("~10%", 1810.0),
        ("~50%", 1050.0),
    ] {
        let qual = QualExpr::cmp_const(0, 1, CmpOp::Gt, threshold);
        let pushed = measure(10, || {
            engine
                .evaluate_restricted(&md, &qual, Strategy::PerRoot)
                .unwrap()
        });
        let naive = measure(10, || {
            engine
                .evaluate_filtered(&md, &qual, Strategy::PerRoot)
                .unwrap()
        });
        rows.push(vec![
            label.to_owned(),
            format!("{pushed:.0}"),
            format!("{naive:.0}"),
            format!("{:.1}×", naive / pushed),
        ]);
    }
    print!(
        "{}",
        table(
            &["selectivity", "pushdown", "derive-then-filter", "speedup"],
            &rows
        )
    );
}

/// B5 — recursive molecules vs relational transitive closure.
pub fn b5() {
    heading("B5 — parts explosion: recursive molecule vs semi-naive closure (µs)");
    let mut rows = Vec::new();
    for (depth, params) in presets::bom_depth_sweep() {
        let (db, h) = generate_bom(&params).unwrap();
        let image = RelationalImage::from_database(&db).unwrap();
        let aux = image.link_mapping(h.composition).1.as_ref().unwrap().clone();
        let spec = RecursiveSpec {
            atom_type: h.parts,
            link: h.composition,
            dir: mad_storage::database::Direction::Fwd,
            max_depth: None,
        };
        let root = h.roots[0];
        let explosion = measure(10, || derive_recursive_one(&db, &spec, root).unwrap());
        let reach = measure(10, || {
            reachable_from(&aux, &Value::Int(root.pack() as i64)).unwrap()
        });
        let full = measure(3, || transitive_closure(&aux, None).unwrap());
        rows.push(vec![
            format!("depth={depth}"),
            format!("{explosion:.0}"),
            format!("{reach:.0}"),
            format!("{full:.0}"),
        ]);
    }
    print!(
        "{}",
        table(
            &["BOM", "MAD explosion (1 root)", "rel reachability (1 root)", "rel full closure"],
            &rows
        )
    );
}

/// B6 — atom-type algebra vs relational algebra (degeneration overhead).
pub fn b6() {
    heading("B6 — atom-type ops vs relational ops (µs/op, n=10000)");
    let schema = SchemaBuilder::new()
        .atom_type("item", &[("k", AttrType::Int), ("v", AttrType::Int)])
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let item = db.schema().atom_type_id("item").unwrap();
    for i in 0..10_000i64 {
        db.insert_atom(item, vec![Value::Int(i), Value::Int(i % 100)])
            .unwrap();
    }
    let image = RelationalImage::from_database(&db).unwrap();
    let rel = image.atom_relation(item).clone();
    let pred = AtomPred::cmp(1, CmpOp::Lt, 50);
    let rel_pred = mad_relational::algebra::Pred::cmp("v", mad_relational::algebra::Cmp::Lt, 50);
    let rows = vec![
        vec![
            "σ (select half)".to_owned(),
            format!("{:.0}", measure(5, || {
                let mut d = db.clone();
                atom_ops::restrict(&mut d, item, &pred, None).unwrap()
            })),
            format!("{:.0}", measure(5, || mad_relational::algebra::select(&rel, &rel_pred).unwrap())),
        ],
        vec![
            "π (1 of 2 attrs)".to_owned(),
            format!("{:.0}", measure(5, || {
                let mut d = db.clone();
                atom_ops::project(&mut d, item, &["v"], None).unwrap()
            })),
            format!("{:.0}", measure(5, || mad_relational::algebra::project(&rel, &["v"]).unwrap())),
        ],
        vec![
            "ω (self union)".to_owned(),
            format!("{:.0}", measure(5, || {
                let mut d = db.clone();
                atom_ops::union(&mut d, item, item, None).unwrap()
            })),
            format!("{:.0}", measure(5, || mad_relational::algebra::union(&rel, &rel).unwrap())),
        ],
        vec![
            "δ (self difference)".to_owned(),
            format!("{:.0}", measure(5, || {
                let mut d = db.clone();
                atom_ops::difference(&mut d, item, item, None).unwrap()
            })),
            format!("{:.0}", measure(5, || mad_relational::algebra::difference(&rel, &rel).unwrap())),
        ],
    ];
    print!(
        "{}",
        table(&["operation", "MAD (incl. clone+identity)", "relational"], &rows)
    );
    println!("(MAD column includes the per-run database clone; see criterion bench for batched numbers)");
}

/// B7 — dynamic definition vs static NF² materialization.
pub fn b7() {
    heading("B7 — dynamic object definition: two views on demand (µs)");
    let mut rows = Vec::new();
    for (label, params) in presets::geo_sweep() {
        if label == "large" {
            continue;
        }
        let (db, _) = generate_geo(&params).unwrap();
        let md1 = path(db.schema(), &["state", "area", "edge", "point"]).unwrap();
        let md2 = StructureBuilder::new(db.schema())
            .node("point")
            .node("edge")
            .node("area")
            .node("state")
            .node("net")
            .node("river")
            .edge("point", "edge")
            .edge("edge", "area")
            .edge("area", "state")
            .edge("edge", "net")
            .edge("net", "river")
            .build()
            .unwrap();
        let mad = measure(5, || {
            let a = derive_molecules(&db, &md1, &DeriveOptions::default()).unwrap();
            let b = derive_molecules(&db, &md2, &DeriveOptions::default()).unwrap();
            (a, b)
        });
        let nf2 = measure(5, || {
            let a = derive_molecules(&db, &md1, &DeriveOptions::default()).unwrap();
            let na = materialize(
                &db,
                &MoleculeType {
                    name: "a".into(),
                    structure: md1.clone(),
                    molecules: a,
                },
            )
            .unwrap();
            let b = derive_molecules(&db, &md2, &DeriveOptions::default()).unwrap();
            let nb = materialize(
                &db,
                &MoleculeType {
                    name: "b".into(),
                    structure: md2.clone(),
                    molecules: b,
                },
            )
            .unwrap();
            (na, nb)
        });
        rows.push(vec![
            label.to_owned(),
            format!("{mad:.0}"),
            format!("{nf2:.0}"),
            format!("{:.2}×", nf2 / mad),
        ]);
    }
    print!(
        "{}",
        table(
            &["workload", "MAD two views", "NF² two materializations", "overhead"],
            &rows
        )
    );
}
