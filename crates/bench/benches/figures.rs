//! `cargo bench` entry point that regenerates every figure of the paper
//! (deliverable: one bench target per table AND figure). Not a timing
//! benchmark — the output itself is the artifact.
fn main() {
    mad_bench::figures::run_all();
}
