//! B8 — concurrent multi-session serving over one shared `DbHandle`.
//!
//! Three measurements of the transaction subsystem:
//!
//! * `txn_commit` — latency of one uncontended transaction (begin → one
//!   atomic insert group → commit) against a pre-populated database: the
//!   cost of the CoW fork, the op log, and the fast-path publish.
//! * `snapshot_read` — latency of one committed-snapshot derivation while
//!   the handle keeps absorbing commits between iterations: readers must
//!   never pay more than the plain single-owner derivation plus one `Arc`
//!   clone.
//! * `mixed_rw_rNwM` — wall clock of a whole mixed scenario (N readers +
//!   M writers to completion, isolation invariants verified online).
//! * `commit_pipeline_w{W}_{disjoint,contended}_{pipelined,single_lock}`
//!   — the staged-pipeline A/B (ARCHITECTURE.md, "The commit
//!   pipeline"): W writer threads × 64 commits each, write-sets either
//!   disjoint (one slot per writer — sharded validation never
//!   serializes) or fully contended (every writer the same slot —
//!   first-committer-wins retries), under the pipelined path vs the
//!   legacy single-lock gate (`CommitMode::SingleLock`). Caveat: on a
//!   single-CPU host the writer threads time-slice instead of running
//!   in parallel, publications almost never interleave with an open
//!   begin→publish window, and the A/B ratio collapses to scheduler
//!   noise — the pipelined gains (overlapped validation/fsync, no
//!   gate convoy, bounded straggler replays) need real parallelism to
//!   show up in wall clock.
//!
//! Run with `-- --quick` to merge median ns/op into `BENCH_derive.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use mad_core::derive::{derive_molecules, DeriveOptions, Strategy};
use mad_core::structure::path;
use mad_model::Value;
use mad_txn::{CommitMode, DbHandle, Transaction};
use mad_workload::{mixed_database, run_mixed, MixedParams};
use std::time::Duration;

fn populated_handle(groups: i64) -> DbHandle {
    let mut db = mixed_database().unwrap();
    let state = db.schema().atom_type_id("state").unwrap();
    let area = db.schema().atom_type_id("area").unwrap();
    let sa = db.schema().link_type_id("state-area").unwrap();
    for i in 0..groups {
        let s = db
            .insert_atom(state, vec![Value::from(format!("seed{i}")), Value::from(1.0)])
            .unwrap();
        let ids = db
            .insert_atoms(area, (0..4).map(|j| vec![Value::from(i * 10 + j)]))
            .unwrap();
        for a in ids {
            db.connect(sa, s, a).unwrap();
        }
    }
    let _ = db.csr_snapshot();
    DbHandle::new(db)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B8_concurrent_sessions");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));

    // ------------------------------------------------------------------
    let handle = populated_handle(500);
    let state = handle.committed().schema().atom_type_id("state").unwrap();
    let area = handle.committed().schema().atom_type_id("area").unwrap();
    let sa = handle.committed().schema().link_type_id("state-area").unwrap();
    let mut n = 0i64;
    group.bench_function("txn_commit", |b| {
        b.iter(|| {
            let mut t = Transaction::begin(&handle);
            let s = t
                .insert_atom(state, vec![Value::from(format!("b{n}")), Value::from(2.0)])
                .unwrap();
            let ids = t
                .insert_atoms(area, (0..4).map(|j| vec![Value::from(n * 10 + j)]).collect())
                .unwrap();
            for a in ids {
                t.connect(sa, s, a).unwrap();
            }
            n += 1;
            t.commit().unwrap()
        })
    });

    // ------------------------------------------------------------------
    let handle = populated_handle(500);
    let md = path(handle.committed().schema(), &["state", "area"]).unwrap();
    let opts = DeriveOptions::with_strategy(Strategy::Bitset);
    let mut n = 0i64;
    group.bench_function("snapshot_read", |b| {
        b.iter(|| {
            // one commit lands between reads, as under live write traffic
            let mut t = Transaction::begin(&handle);
            t.update_attr(
                mad_model::AtomId::new(state, 0),
                1,
                Value::from(n as f64),
            )
            .unwrap();
            n += 1;
            t.commit().unwrap();
            let snap = handle.committed();
            derive_molecules(&snap, &md, &opts).unwrap()
        })
    });

    // ------------------------------------------------------------------
    // commit validation under a pinned log: an old open transaction keeps
    // 64 commit records × 32 write keys each alive; a small disjoint
    // commit must validate against them. With the per-key hash index this
    // is O(|write-set|) probes — the old nested scan paid O(Σ logged
    // keys) *inside the publication mutex* on every attempt.
    {
        let handle = populated_handle(2100);
        let pinned = Transaction::begin(&handle);
        for c in 0..64 {
            let mut t = Transaction::begin(&handle);
            for s in 0..32u32 {
                t.update_attr(
                    mad_model::AtomId::new(state, 1 + c * 32 + s),
                    1,
                    Value::from(f64::from(c)),
                )
                .unwrap();
            }
            t.commit().unwrap();
        }
        assert_eq!(handle.commit_log_len(), 64, "the log must stay pinned");
        assert_eq!(handle.conflict_index_len(), 64 * 32);
        let mut n = 0u64;
        group.bench_function("commit_validation_pinned", |b| {
            b.iter(|| {
                n += 1;
                let mut t = Transaction::begin(&handle);
                t.update_attr(mad_model::AtomId::new(state, 2080), 1, Value::from(n as f64))
                    .unwrap();
                t.commit().unwrap()
            })
        });
        drop(pinned);
    }

    // ------------------------------------------------------------------
    // the staged-pipeline A/B: W writer threads race 64 small commits
    // each over one handle; one iteration is the whole race (64 per
    // thread keeps the spawn cost — identical in both arms — from
    // compressing the measured ratio)
    const PIPE_COMMITS: usize = 64;
    for mode in [CommitMode::Pipelined, CommitMode::SingleLock] {
        for contended in [false, true] {
            for writers in [1usize, 4, 8, 16] {
                let handle = populated_handle(40);
                handle.set_commit_mode(mode);
                let name = format!(
                    "commit_pipeline_w{writers}_{}_{}",
                    if contended { "contended" } else { "disjoint" },
                    match mode {
                        CommitMode::Pipelined => "pipelined",
                        CommitMode::SingleLock => "single_lock",
                    }
                );
                group.bench_function(name, |b| {
                    b.iter(|| {
                        std::thread::scope(|scope| {
                            for w in 0..writers {
                                let handle = &handle;
                                scope.spawn(move || {
                                    let slot = if contended {
                                        0
                                    } else {
                                        1 + u32::try_from(w).unwrap()
                                    };
                                    let mut done = 0usize;
                                    let mut v = 0.0f64;
                                    while done < PIPE_COMMITS {
                                        let mut t = Transaction::begin(handle);
                                        t.update_attr(
                                            mad_model::AtomId::new(state, slot),
                                            1,
                                            Value::from(v),
                                        )
                                        .unwrap();
                                        v += 1.0;
                                        match t.commit() {
                                            Ok(_) => done += 1,
                                            Err(e) if e.is_conflict() => {}
                                            Err(e) => panic!("pipeline bench commit: {e}"),
                                        }
                                    }
                                });
                            }
                        })
                    })
                });
            }
        }
    }

    // ------------------------------------------------------------------
    for (label, readers, writers) in [("r2w2", 2usize, 2usize), ("r1w4", 1, 4)] {
        group.bench_function(format!("mixed_rw_{label}"), |b| {
            b.iter(|| {
                let handle = DbHandle::new(mixed_database().unwrap());
                let stats = run_mixed(
                    &handle,
                    &MixedParams {
                        readers,
                        writers,
                        txns_per_writer: 5,
                        areas_per_state: 3,
                        seed: 99,
                    },
                )
                .unwrap();
                assert_eq!(stats.inconsistencies, 0);
                stats
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
