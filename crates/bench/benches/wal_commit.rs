//! B9 — write-ahead-log durability: commit latency vs fsync policy, group
//! commit under concurrent writers, recovery time vs log length.
//!
//! Three measurements of the `mad_wal` subsystem through `mad_txn`:
//!
//! * `commit_latency/<policy>` — one uncontended durable commit (begin →
//!   insert group → commit) under each [`FsyncPolicy`]: `never` prices
//!   the pure append, `per_commit` adds a blocking fsync, `group` sits
//!   between (a lone writer cannot batch, but skips redundant syncs).
//! * `burst_<policy>/wN` — wall clock of N writer threads each pushing a
//!   fixed commit quota through one durable handle. The headline claim:
//!   group commit amortizes one fsync over the commits that arrive while
//!   the previous fsync is in flight, so `burst_group/w4` should beat
//!   `burst_per_commit/w4` by ≥ 2x on fsync-bound storage.
//! * `recovery/commits_N` — time for `DbHandle::open_durable` to scan,
//!   verify and replay a log of N commits.
//!
//! Run with `-- --quick` to merge median ns/op into `BENCH_derive.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use mad_model::Value;
use mad_txn::{DbHandle, FsyncPolicy, Transaction};
use mad_workload::mixed_database;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn fresh_wal_path() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mad-bench-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("b9-{}.wal", UNIQUE.fetch_add(1, Ordering::Relaxed)))
}

fn policy_name(p: FsyncPolicy) -> &'static str {
    match p {
        FsyncPolicy::PerCommit => "per_commit",
        FsyncPolicy::Group => "group",
        FsyncPolicy::Never => "never",
    }
}

/// One writer transaction: a small atomic group, like the mixed workload's.
fn commit_group(handle: &DbHandle, tag: u64) {
    let db = handle.committed();
    let state = db.schema().atom_type_id("state").unwrap();
    let area = db.schema().atom_type_id("area").unwrap();
    let sa = db.schema().link_type_id("state-area").unwrap();
    loop {
        let mut t = Transaction::begin(handle);
        let s = t
            .insert_atom(state, vec![Value::from(format!("b{tag}")), Value::from(1.0)])
            .unwrap();
        let a = t.insert_atom(area, vec![Value::from(tag as i64)]).unwrap();
        t.connect(sa, s, a).unwrap();
        match t.commit() {
            Ok(_) => return,
            Err(e) if e.is_conflict() => continue,
            Err(e) => panic!("durable commit failed: {e}"),
        }
    }
}

/// One minimal writer transaction: a single conflict-free attribute update
/// on the writer's own pre-seeded atom. Keeps the commit CPU cost tiny so
/// the burst benches isolate the durability cost (the fsync schedule),
/// not op application.
fn commit_update(handle: &DbHandle, slot: u32, n: u64) {
    let db = handle.committed();
    let state = db.schema().atom_type_id("state").unwrap();
    let mut t = Transaction::begin(handle);
    t.update_attr(mad_model::AtomId::new(state, slot), 1, Value::from(n as f64))
        .unwrap();
    t.commit().unwrap();
}

/// The mixed database plus one pre-seeded state per writer, so update
/// bursts are conflict-free.
fn burst_database(writers: u64) -> mad_storage::Database {
    let mut db = mixed_database().unwrap();
    let state = db.schema().atom_type_id("state").unwrap();
    for w in 0..writers {
        db.insert_atom(state, vec![Value::from(format!("w{w}")), Value::from(0.0)])
            .unwrap();
    }
    db
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B9_wal");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));

    // ------------------------------------------------------------------
    // single-writer commit latency per fsync policy (update-only, so the
    // database does not grow across iterations and the number isolates
    // the durability cost, not CoW store copies)
    for policy in [FsyncPolicy::Never, FsyncPolicy::Group, FsyncPolicy::PerCommit] {
        let path = fresh_wal_path();
        let handle = DbHandle::create_durable(mixed_database().unwrap(), &path, policy).unwrap();
        let state = handle.committed().schema().atom_type_id("state").unwrap();
        let contended = mad_model::AtomId::new(state, 0);
        let mut n = 0u64;
        group.bench_function(format!("commit_latency/{}", policy_name(policy)), |b| {
            b.iter(|| {
                n += 1;
                let mut t = Transaction::begin(&handle);
                t.update_attr(contended, 1, Value::from(n as f64)).unwrap();
                t.commit().unwrap()
            })
        });
        drop(handle);
        std::fs::remove_file(&path).ok();
    }

    // ------------------------------------------------------------------
    // concurrent-writer bursts: group commit vs fsync-per-commit
    const COMMITS_PER_BURST: u64 = 96; // total, split across the writers
    for policy in [FsyncPolicy::PerCommit, FsyncPolicy::Group] {
        for writers in [1u64, 4, 16] {
            group.bench_function(
                format!("burst_{}/w{writers}", policy_name(policy)),
                |b| {
                    b.iter_batched(
                        || {
                            // handle + log creation is setup, not burst
                            let path = fresh_wal_path();
                            let handle =
                                DbHandle::create_durable(burst_database(writers), &path, policy)
                                    .unwrap();
                            (path, handle)
                        },
                        |(path, handle)| {
                            let quota = COMMITS_PER_BURST / writers;
                            std::thread::scope(|scope| {
                                for w in 0..writers {
                                    let handle = handle.clone();
                                    scope.spawn(move || {
                                        for i in 0..quota {
                                            commit_update(&handle, 1 + w as u32, i);
                                        }
                                    });
                                }
                            });
                            let fsyncs = handle.wal_fsync_count().unwrap();
                            drop(handle);
                            std::fs::remove_file(&path).ok();
                            fsyncs
                        },
                        criterion::BatchSize::PerIteration,
                    )
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // recovery time vs log length
    for commits in [100u64, 1000] {
        let path = fresh_wal_path();
        let handle =
            DbHandle::create_durable(mixed_database().unwrap(), &path, FsyncPolicy::Never)
                .unwrap();
        for i in 0..commits {
            commit_group(&handle, i);
        }
        drop(handle);
        group.bench_function(format!("recovery/commits_{commits}"), |b| {
            b.iter(|| {
                let h = DbHandle::open_durable(&path, FsyncPolicy::Never).unwrap();
                assert_eq!(h.recovery_info().unwrap().commits_replayed, commits);
                h
            })
        });
        std::fs::remove_file(&path).ok();
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
