//! B5 — the §5 recursion outlook: recursive molecule derivation (parts
//! explosion over the reflexive `composition` link type) vs. the relational
//! answer (semi-naive transitive closure over the auxiliary relation).
//!
//! Expected shape: per-root explosion beats whole-relation closure whenever
//! only some roots are asked for; with a depth bound the gap widens. Both
//! sides agree on the reachable sets (asserted before timing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mad_bench::presets;
use mad_core::recursive::{derive_recursive_one, reachable_set, RecursiveSpec};
use mad_relational::closure::{reachable_from, transitive_closure};
use mad_relational::RelationalImage;
use mad_storage::database::Direction;
use mad_workload::generate_bom;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5_recursive_molecules");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for (depth, params) in presets::bom_depth_sweep() {
        let (db, h) = generate_bom(&params).unwrap();
        let image = RelationalImage::from_database(&db).unwrap();
        let aux = image
            .link_mapping(h.composition)
            .1
            .as_ref()
            .expect("composition is n:m → auxiliary relation")
            .clone();
        let spec = RecursiveSpec {
            atom_type: h.parts,
            link: h.composition,
            dir: Direction::Fwd,
            max_depth: None,
        };
        let root = h.roots[0];
        // agreement check: MAD reachable set == relational reachability
        {
            let mad: Vec<i64> = reachable_set(&db, &spec, root)
                .unwrap()
                .into_iter()
                .map(|a| a.pack() as i64)
                .collect();
            let rel: Vec<i64> = reachable_from(&aux, &mad_model::Value::Int(root.pack() as i64))
                .unwrap()
                .into_iter()
                .map(|v| v.as_int().unwrap())
                .collect();
            let mut mad_sorted = mad;
            mad_sorted.sort_unstable();
            assert_eq!(mad_sorted, rel);
        }
        let label = format!("depth={depth}");
        group.bench_with_input(
            BenchmarkId::new("mad/explosion_one_root", &label),
            &(),
            |b, _| b.iter(|| derive_recursive_one(&db, &spec, root).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("rel/reachability_one_root", &label),
            &(),
            |b, _| {
                b.iter(|| {
                    reachable_from(&aux, &mad_model::Value::Int(root.pack() as i64)).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rel/full_transitive_closure", &label),
            &(),
            |b, _| b.iter(|| transitive_closure(&aux, None).unwrap()),
        );
        // bounded explosion (depth 2)
        let bounded = RecursiveSpec {
            max_depth: Some(2),
            ..spec.clone()
        };
        group.bench_with_input(
            BenchmarkId::new("mad/explosion_depth2", &label),
            &(),
            |b, _| b.iter(|| derive_recursive_one(&db, &bounded, root).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
