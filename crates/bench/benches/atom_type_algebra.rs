//! B6 — the relational degeneration, timed: atom-type operations (Def. 4,
//! with link-type inheritance) vs. the plain relational algebra on the same
//! data. The MAD side pays for identity maintenance and link inheritance;
//! the expected shape is "same asymptotics, constant-factor overhead that
//! shrinks when the operand has no links".

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mad_core::atom_ops::{self, AtomPred};
use mad_core::qual::CmpOp;
use mad_model::{AttrType, SchemaBuilder, Value};
use mad_relational::algebra as rel;
use mad_relational::RelationalImage;
use mad_storage::Database;
use std::time::Duration;

/// Flat database: `item(k, v)` with `n` atoms, no link types.
fn flat_db(n: usize) -> Database {
    let schema = SchemaBuilder::new()
        .atom_type("item", &[("k", AttrType::Int), ("v", AttrType::Int)])
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let item = db.schema().atom_type_id("item").unwrap();
    for i in 0..n {
        db.insert_atom(
            item,
            vec![Value::Int(i as i64), Value::Int((i % 100) as i64)],
        )
        .unwrap();
    }
    db
}

/// Same data but with a link type attached (inheritance cost made visible).
fn linked_db(n: usize) -> Database {
    let schema = SchemaBuilder::new()
        .atom_type("item", &[("k", AttrType::Int), ("v", AttrType::Int)])
        .atom_type("tag", &[("t", AttrType::Int)])
        .link_type("item-tag", "item", "tag")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let item = db.schema().atom_type_id("item").unwrap();
    let tag = db.schema().atom_type_id("tag").unwrap();
    let it = db.schema().link_type_id("item-tag").unwrap();
    let tags: Vec<_> = (0..16)
        .map(|i| db.insert_atom(tag, vec![Value::Int(i)]).unwrap())
        .collect();
    for i in 0..n {
        let a = db
            .insert_atom(
                item,
                vec![Value::Int(i as i64), Value::Int((i % 100) as i64)],
            )
            .unwrap();
        db.connect(it, a, tags[i % 16]).unwrap();
    }
    db
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B6_atom_type_algebra");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for n in [1_000usize, 10_000, 50_000] {
        let flat = flat_db(n);
        let linked = linked_db(n);
        let item = flat.schema().atom_type_id("item").unwrap();
        let image = RelationalImage::from_database(&flat).unwrap();
        let item_rel = image.atom_relation(item).clone();
        let pred = AtomPred::cmp(1, CmpOp::Lt, 50);
        let rel_pred = rel::Pred::cmp("v", rel::Cmp::Lt, 50);
        let label = format!("n={n}");
        // σ
        group.bench_with_input(BenchmarkId::new("mad/sigma_flat", &label), &(), |b, _| {
            b.iter_batched(
                || flat.clone(),
                |mut db| atom_ops::restrict(&mut db, item, &pred, None).unwrap(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(
            BenchmarkId::new("mad/sigma_linked", &label),
            &(),
            |b, _| {
                b.iter_batched(
                    || linked.clone(),
                    |mut db| atom_ops::restrict(&mut db, item, &pred, None).unwrap(),
                    BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(BenchmarkId::new("rel/sigma", &label), &(), |b, _| {
            b.iter(|| rel::select(&item_rel, &rel_pred).unwrap())
        });
        // π
        group.bench_with_input(BenchmarkId::new("mad/pi_flat", &label), &(), |b, _| {
            b.iter_batched(
                || flat.clone(),
                |mut db| atom_ops::project(&mut db, item, &["v"], None).unwrap(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("rel/pi", &label), &(), |b, _| {
            b.iter(|| rel::project(&item_rel, &["v"]).unwrap())
        });
        // ω and δ with itself
        group.bench_with_input(BenchmarkId::new("mad/omega_flat", &label), &(), |b, _| {
            b.iter_batched(
                || flat.clone(),
                |mut db| atom_ops::union(&mut db, item, item, None).unwrap(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("rel/union", &label), &(), |b, _| {
            b.iter(|| rel::union(&item_rel, &item_rel).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("mad/delta_flat", &label), &(), |b, _| {
            b.iter_batched(
                || flat.clone(),
                |mut db| atom_ops::difference(&mut db, item, item, None).unwrap(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("rel/difference", &label), &(), |b, _| {
            b.iter(|| rel::difference(&item_rel, &item_rel).unwrap())
        });
    }
    // × on a small square (quadratic output)
    let flat = flat_db(100);
    let schema2 = SchemaBuilder::new()
        .atom_type("item", &[("k", AttrType::Int), ("v", AttrType::Int)])
        .atom_type("other", &[("k2", AttrType::Int)])
        .build()
        .unwrap();
    let mut db2 = Database::new(schema2);
    let item2 = db2.schema().atom_type_id("item").unwrap();
    let other2 = db2.schema().atom_type_id("other").unwrap();
    for i in 0..100i64 {
        db2.insert_atom(item2, vec![Value::Int(i), Value::Int(i % 10)])
            .unwrap();
        db2.insert_atom(other2, vec![Value::Int(i)]).unwrap();
    }
    let image2 = RelationalImage::from_database(&db2).unwrap();
    let r1 = rel::rename(image2.atom_relation(item2), &[("_id", "_id1")]).unwrap();
    let r2 = rel::rename(image2.atom_relation(other2), &[("_id", "_id2")]).unwrap();
    group.bench_function("mad/product_100x100", |b| {
        b.iter_batched(
            || db2.clone(),
            |mut db| atom_ops::product(&mut db, item2, other2, None).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("rel/product_100x100", |b| {
        b.iter(|| rel::product(&r1, &r2).unwrap())
    });
    let _ = flat;
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
