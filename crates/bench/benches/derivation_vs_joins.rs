//! B1 — the §1/§2 performance claim: molecule derivation over direct links
//! vs. the relational join cascade over auxiliary relations.
//!
//! Series: database size (small/medium/large) and sharing degree
//! (0.0/0.5/0.9). Comparators:
//!
//! * `mad/per_root` — the MAD engine (link adjacency),
//! * `rel/hash_join` — tuned hash-join plan over the relational image,
//! * `rel/algebra` — the literal relational-algebra plan (materializing
//!   operators), run only on the small size (it is orders slower).
//!
//! Expected shape (EXPERIMENTS.md): MAD wins everywhere; the gap grows with
//! size and with sharing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mad_bench::presets;
use mad_core::derive::{derive_molecules, DeriveOptions};
use mad_core::structure::path;
use mad_relational::derive_join::{derive_via_algebra, derive_via_hash_joins};
use mad_relational::RelationalImage;
use mad_workload::generate_geo;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B1_derivation_vs_joins");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for (label, params) in presets::geo_sweep() {
        let (db, _) = generate_geo(&params).unwrap();
        let md = path(db.schema(), &["state", "area", "edge", "point"]).unwrap();
        let image = RelationalImage::from_database(&db).unwrap();
        // sanity: all evaluators agree before we time them
        let mad = derive_molecules(&db, &md, &DeriveOptions::default()).unwrap();
        let rel = derive_via_hash_joins(&image, &md).unwrap();
        assert_eq!(mad, rel);
        group.bench_with_input(BenchmarkId::new("mad/per_root", label), &(), |b, _| {
            b.iter(|| derive_molecules(&db, &md, &DeriveOptions::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rel/hash_join", label), &(), |b, _| {
            b.iter(|| derive_via_hash_joins(&image, &md).unwrap())
        });
        if label == "small" {
            group.bench_with_input(BenchmarkId::new("rel/algebra", label), &(), |b, _| {
                b.iter(|| derive_via_algebra(&image, &md).unwrap())
            });
        }
    }
    for (share, params) in presets::share_sweep() {
        let (db, _) = generate_geo(&params).unwrap();
        // river-rooted structure touches the shared edges directly
        let md = path(db.schema(), &["river", "net", "edge", "point"]).unwrap();
        let image = RelationalImage::from_database(&db).unwrap();
        group.bench_with_input(
            BenchmarkId::new("mad/per_root", format!("share={share}")),
            &(),
            |b, _| b.iter(|| derive_molecules(&db, &md, &DeriveOptions::default()).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("rel/hash_join", format!("share={share}")),
            &(),
            |b, _| b.iter(|| derive_via_hash_joins(&image, &md).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
