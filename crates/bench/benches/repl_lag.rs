//! B11 — streaming replication: lag vs write rate, sync-quorum commit
//! cost, and read throughput scaling across standby replicas.
//!
//! Like B10 this harness measures directly rather than through criterion:
//! replication lag is a *distributed* observable (primary commit sequence
//! minus standby replicated sequence) sampled while traffic runs, not a
//! closed-loop iteration time. Everything runs in-process over loopback:
//!
//! * `B11_repl/lag_commits/r<rate>` — mean standby lag in commits,
//!   sampled once per commit while a writer publishes at `rate`
//!   commits/sec (`r0` = unthrottled) against one async standby;
//! * `B11_repl/drain_ms/r<rate>` — after the burst, milliseconds until
//!   the standby has replayed everything the primary acknowledged;
//! * `B11_repl/commits_per_sec/<mode>` — direct-handle commit
//!   throughput with `async` acks vs a `quorum1` sync standby (the
//!   durability-of-acknowledgment price);
//! * `B11_repl/reads_per_sec/n<replicas>` — aggregate SELECT throughput
//!   of 8 TCP reader connections round-robined across `n` standby-backed
//!   servers (the scale-out story: every replica serves its own
//!   snapshot, so read throughput grows with the replica count).
//!
//! `-- --quick` shrinks the quotas and merges the results into
//! `BENCH_derive.json` (same contract as the criterion shim).

use mad_model::Value;
use mad_net::{Client, Server};
use mad_repl::{ReplPrimary, Standby, StandbyConfig};
use mad_txn::{DbHandle, FsyncPolicy, ReplAck, Transaction};
use mad_workload::mixed_database;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// One commit: insert a state atom and update it (two resolved ops).
fn commit_one(handle: &DbHandle, i: usize) {
    let db = handle.committed();
    let state = db.schema().atom_type_id("state").unwrap();
    let mut txn = Transaction::begin(handle);
    txn.insert_atom(
        state,
        vec![Value::from(format!("b11-{i}")), Value::from(i as f64)],
    )
    .unwrap();
    txn.commit().unwrap();
}

struct Cluster {
    primary: DbHandle,
    repl: ReplPrimary,
    standbys: Vec<Standby>,
    dir: PathBuf,
}

impl Cluster {
    fn start(tag: &str, standbys: usize) -> Cluster {
        let dir = std::env::temp_dir().join(format!("mad-b11-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let primary = DbHandle::create_durable(
            mixed_database().unwrap(),
            dir.join("primary.wal"),
            FsyncPolicy::Group,
        )
        .unwrap();
        let repl = ReplPrimary::start(primary.clone(), "127.0.0.1:0").unwrap();
        let addr = repl.local_addr().to_string();
        let standbys = (0..standbys)
            .map(|i| {
                Standby::start(StandbyConfig::new(
                    addr.clone(),
                    dir.join(format!("standby{i}.wal")),
                    FsyncPolicy::Group,
                ))
                .unwrap()
            })
            .collect();
        Cluster { primary, repl, standbys, dir }
    }

    fn stop(mut self) {
        self.repl.shutdown();
        let dir = self.dir.clone();
        drop(self);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Lag vs write rate: commit `quota` groups at `rate` commits/sec
/// (0 = unthrottled), sampling the standby's lag after every commit;
/// then time the post-burst drain.
fn bench_lag(results: &mut BTreeMap<String, f64>, rate: u64, quota: usize) {
    let cluster = Cluster::start(&format!("lag{rate}"), 1);
    let standby = &cluster.standbys[0];
    let period = (rate > 0).then(|| Duration::from_nanos(1_000_000_000 / rate));
    let mut lag_sum = 0u64;
    for i in 0..quota {
        let t = Instant::now();
        commit_one(&cluster.primary, i);
        lag_sum += cluster.primary.commit_seq() - standby.replicated_seq();
        if let Some(p) = period {
            if let Some(rest) = p.checked_sub(t.elapsed()) {
                std::thread::sleep(rest);
            }
        }
    }
    let target = cluster.primary.commit_seq();
    let t = Instant::now();
    while standby.replicated_seq() < target {
        std::thread::yield_now();
    }
    let drain = t.elapsed().as_secs_f64() * 1e3;
    results.insert(
        format!("B11_repl/lag_commits/r{rate}"),
        lag_sum as f64 / quota as f64,
    );
    results.insert(format!("B11_repl/drain_ms/r{rate}"), drain);
    cluster.stop();
}

/// Commit throughput: async acks vs a one-standby sync quorum.
fn bench_ack_modes(results: &mut BTreeMap<String, f64>, quota: usize) {
    for (mode, ack) in [("async", ReplAck::Async), ("quorum1", ReplAck::SyncQuorum(1))] {
        let cluster = Cluster::start(&format!("ack-{mode}"), 1);
        cluster.primary.set_repl_ack(ack);
        let t = Instant::now();
        for i in 0..quota {
            commit_one(&cluster.primary, i);
        }
        let wall = t.elapsed().as_secs_f64();
        results.insert(
            format!("B11_repl/commits_per_sec/{mode}"),
            quota as f64 / wall,
        );
        cluster.stop();
    }
}

/// Read throughput at 1/2/4 replicas: 8 TCP readers round-robined over
/// `n` standby-backed servers, all querying the replicated population.
fn bench_read_scaling(results: &mut BTreeMap<String, f64>, quota: usize) {
    for replicas in [1usize, 2, 4] {
        let cluster = Cluster::start(&format!("read{replicas}"), replicas);
        // replicate a molecule population for the readers to chew on
        let db = cluster.primary.committed();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let mut txn = Transaction::begin(&cluster.primary);
        for g in 0..32i64 {
            let s = txn
                .insert_atom(state, vec![Value::from(format!("g{g}")), Value::from(1.0)])
                .unwrap();
            for j in 0..4 {
                let a = txn.insert_atom(area, vec![Value::from(g * 10 + j)]).unwrap();
                txn.connect(sa, s, a).unwrap();
            }
        }
        txn.commit().unwrap();
        let target = cluster.primary.commit_seq();
        for s in &cluster.standbys {
            while s.replicated_seq() < target {
                std::thread::yield_now();
            }
        }
        let servers: Vec<Server> = cluster
            .standbys
            .iter()
            .map(|s| Server::serve(s.handle(), "127.0.0.1:0").unwrap())
            .collect();
        const READERS: usize = 8;
        let barrier = Barrier::new(READERS + 1);
        let wall = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..READERS)
                .map(|r| {
                    let (barrier, servers) = (&barrier, &servers);
                    scope.spawn(move || {
                        let addr = servers[r % servers.len()].local_addr();
                        let mut client = Client::connect(addr).expect("connect reader");
                        client
                            .execute("SELECT ALL FROM state-area WHERE state.sname = 'g7'")
                            .expect("warm-up");
                        barrier.wait();
                        for _ in 0..quota {
                            client
                                .execute("SELECT ALL FROM state-area WHERE state.sname = 'g7'")
                                .expect("bench read");
                        }
                    })
                })
                .collect();
            barrier.wait();
            let t = Instant::now();
            for j in joins {
                j.join().expect("reader thread");
            }
            t.elapsed().as_secs_f64()
        });
        results.insert(
            format!("B11_repl/reads_per_sec/n{replicas}"),
            (READERS * quota) as f64 / wall,
        );
        for s in servers {
            s.shutdown();
        }
        cluster.stop();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| quick.then(|| "BENCH_derive.json".to_owned()));
    let (lag_quota, ack_quota, read_quota) = if quick { (80, 60, 40) } else { (400, 300, 200) };

    let mut results: BTreeMap<String, f64> = BTreeMap::new();
    for rate in [100u64, 500, 0] {
        bench_lag(&mut results, rate, lag_quota);
    }
    bench_ack_modes(&mut results, ack_quota);
    bench_read_scaling(&mut results, read_quota);

    for (k, v) in &results {
        println!("{k:<46} {v:>14.1}");
    }
    if let Some(path) = json_path {
        merge_json(&path, &results);
        println!("bench report written to {path}");
    }
}

/// Merge into the flat `{"id": number}` report, same shape the criterion
/// shim writes.
fn merge_json(path: &str, fresh: &BTreeMap<String, f64>) {
    let mut merged: BTreeMap<String, f64> = std::fs::read_to_string(path)
        .ok()
        .map(|text| parse_flat_json(&text))
        .unwrap_or_default();
    merged.extend(fresh.iter().map(|(k, v)| (k.clone(), *v)));
    let mut out = String::from("{\n");
    for (i, (k, v)) in merged.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!("  \"{}\": {:.1}", k.replace('"', "\\\""), v));
    }
    out.push_str("\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

fn parse_flat_json(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut rest = text;
    while let Some(q) = rest.find('"') {
        rest = &rest[q + 1..];
        let Some(endq) = rest.find('"') else { break };
        let key = rest[..endq].to_owned();
        rest = &rest[endq + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            out.insert(key, v);
        }
        rest = &rest[end..];
    }
    out
}
