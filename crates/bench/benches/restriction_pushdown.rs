//! B4 — PRIMA-style restriction pushdown: evaluating root-level conjuncts
//! through a secondary index *before* molecule derivation vs. deriving the
//! whole molecule set and filtering afterwards (the naive Σ∘α).
//!
//! Selectivity sweep over `state.hectare > X`. Expected shape: pushdown
//! wins by roughly 1/selectivity at low selectivity and converges to parity
//! as the predicate approaches "all roots". Both paths use the *pure*
//! evaluation API (no propagation), so only derivation cost is measured.
//!
//! Strategy arms: the classic per-root evaluator, the set-oriented
//! level-at-a-time evaluator, and the bitset engine whose planner pushes
//! conjuncts to *every* structure node (not just the root).
//!
//! Run with `-- --quick` to emit/merge `BENCH_derive.json` (median ns/op
//! per strategy) for cross-commit perf comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mad_core::derive::Strategy;
use mad_core::ops::Engine;
use mad_core::qual::{CmpOp, QualExpr};
use mad_core::structure::path;
use mad_storage::IndexKind;
use mad_workload::{generate_geo, GeoParams};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4_restriction_pushdown");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    let (db, _) = generate_geo(&GeoParams {
        states: 400,
        edges_per_state: 8,
        rivers: 40,
        edges_per_river: 10,
        share: 0.5,
        cities: 0,
        seed: 21,
    })
    .unwrap();
    let mut engine = Engine::new(db);
    engine
        .create_index("state", "hectare", IndexKind::Ordered)
        .unwrap();
    let md = path(engine.db().schema(), &["state", "area", "edge", "point"]).unwrap();
    // hectare is uniform in 100..2000 → thresholds for ~0.1%, 1%, 10%, 50%
    for (label, threshold) in [
        ("sel=0.1%", 1998.0),
        ("sel=1%", 1981.0),
        ("sel=10%", 1810.0),
        ("sel=50%", 1050.0),
    ] {
        let qual = QualExpr::cmp_const(0, 1, CmpOp::Gt, threshold);
        // verify all paths agree before timing
        {
            let naive = engine
                .evaluate_filtered(&md, &qual, Strategy::PerRoot)
                .unwrap();
            for strat in [Strategy::PerRoot, Strategy::LevelAtATime, Strategy::Bitset] {
                let pushed = engine.evaluate_restricted(&md, &qual, strat).unwrap();
                assert_eq!(pushed, naive, "pushdown with {strat:?} diverged");
            }
        }
        let _ = engine.db().csr_snapshot();
        for (name, strat) in [
            ("pushdown", Strategy::PerRoot),
            ("pushdown_level", Strategy::LevelAtATime),
            ("pushdown_bitset", Strategy::Bitset),
        ] {
            group.bench_with_input(BenchmarkId::new(name, label), &(), |b, _| {
                b.iter(|| engine.evaluate_restricted(&md, &qual, strat).unwrap())
            });
        }
        group.bench_with_input(
            BenchmarkId::new("derive_then_filter", label),
            &(),
            |b, _| {
                b.iter(|| {
                    engine
                        .evaluate_filtered(&md, &qual, Strategy::PerRoot)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
