//! E8/B-aux — molecule-set operations: Ω, Δ and the derived
//! Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2)) of §3.2, timed on molecule sets of
//! growing size (pure set computation; propagation excluded).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mad_core::ops::Engine;
use mad_core::qual::{CmpOp, QualExpr};
use mad_core::structure::path;
use mad_workload::{generate_geo, GeoParams};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_molecule_set_ops");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for states in [100usize, 400, 1600] {
        let (db, _) = generate_geo(&GeoParams {
            states,
            edges_per_state: 6,
            rivers: 10,
            edges_per_river: 8,
            share: 0.4,
            cities: 0,
            seed: 33,
        })
        .unwrap();
        let mut engine = Engine::new(db);
        let md = path(engine.db().schema(), &["state", "area", "edge"]).unwrap();
        let mt = engine.define("mt", md).unwrap();
        // two overlapping halves by hectare
        let low = engine
            .restrict(&mt, &QualExpr::cmp_const(0, 1, CmpOp::Le, 1300.0))
            .unwrap();
        let high = engine
            .restrict(&mt, &QualExpr::cmp_const(0, 1, CmpOp::Gt, 700.0))
            .unwrap();
        let label = format!("states={states}");
        group.bench_with_input(BenchmarkId::new("omega_union", &label), &(), |b, _| {
            b.iter(|| engine.union_set(&low, &high).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("delta_difference", &label), &(), |b, _| {
            b.iter(|| engine.difference_set(&low, &high).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("psi_double_difference", &label),
            &(),
            |b, _| b.iter(|| engine.intersection_set(&low, &high).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
