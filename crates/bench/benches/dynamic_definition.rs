//! B7 — dynamic object definition (§2/§5): deriving *different* molecule
//! types from the same atom networks on demand, vs. a statically-nested
//! model that must materialize a separate nested copy per view.
//!
//! The MAD side derives `state-area-edge-point` and then the completely
//! different `point-edge-(area-state,net-river)` from the very same
//! database (the Fig. 2 flexibility claim). The NF² side must materialize a
//! nested relation per view. Expected shape: MAD's second view costs the
//! same as its first; the NF² side pays materialization (and duplication)
//! for every view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mad_bench::presets;
use mad_core::derive::{derive_molecules, DeriveOptions};
use mad_core::molecule::MoleculeType;
use mad_core::structure::{path, StructureBuilder};
use mad_nf2::materialize;
use mad_workload::generate_geo;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B7_dynamic_definition");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for (label, params) in presets::geo_sweep() {
        if label == "large" {
            continue; // NF² materialization of the large preset dominates runtime
        }
        let (db, _) = generate_geo(&params).unwrap();
        let md_state = path(db.schema(), &["state", "area", "edge", "point"]).unwrap();
        let md_pn = StructureBuilder::new(db.schema())
            .node("point")
            .node("edge")
            .node("area")
            .node("state")
            .node("net")
            .node("river")
            .edge("point", "edge")
            .edge("edge", "area")
            .edge("area", "state")
            .edge("edge", "net")
            .edge("net", "river")
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("mad/two_views_on_demand", label),
            &(),
            |b, _| {
                b.iter(|| {
                    let a = derive_molecules(&db, &md_state, &DeriveOptions::default()).unwrap();
                    let b2 = derive_molecules(&db, &md_pn, &DeriveOptions::default()).unwrap();
                    (a, b2)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("nf2/two_views_materialized", label),
            &(),
            |b, _| {
                b.iter(|| {
                    let a = derive_molecules(&db, &md_state, &DeriveOptions::default()).unwrap();
                    let mta = MoleculeType {
                        name: "a".into(),
                        structure: md_state.clone(),
                        molecules: a,
                    };
                    let na = materialize(&db, &mta).unwrap();
                    let b2 = derive_molecules(&db, &md_pn, &DeriveOptions::default()).unwrap();
                    let mtb = MoleculeType {
                        name: "b".into(),
                        structure: md_pn.clone(),
                        molecules: b2,
                    };
                    let nb = materialize(&db, &mtb).unwrap();
                    (na, nb)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
