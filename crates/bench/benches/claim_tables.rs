//! `cargo bench` entry point that prints the quantitative claim tables
//! B1–B7 with robust wall-clock measurements (criterion's statistical
//! versions live in the sibling bench targets).
fn main() {
    mad_bench::tables::run_all();
}
