//! B3 — the §5 "query parallelism" outlook: per-root vs. set-oriented
//! (level-at-a-time) vs. parallel vs. frontier-bitset molecule derivation.
//!
//! Expected shape: level-at-a-time wins over per-root when molecules
//! overlap heavily (shared adjacency is scanned once); parallel derivation
//! scales with the number of molecules and cores; the bitset engine over
//! the CSR snapshot beats all single-threaded strategies by replacing hash
//! probes and sorted-vector intersections with sequential scans and
//! word-wise set operations.
//!
//! Run with `-- --quick` to emit/merge `BENCH_derive.json` (median ns/op
//! per strategy) for cross-commit perf comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mad_bench::presets;
use mad_core::derive::{derive_molecules, DeriveOptions, Strategy};
use mad_core::structure::path;
use mad_workload::generate_geo;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3_derivation_strategies");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for (label, params) in presets::geo_sweep() {
        let (db, _) = generate_geo(&params).unwrap();
        let md = path(db.schema(), &["state", "area", "edge", "point"]).unwrap();
        // warm the CSR snapshot outside the timed region, as a session would
        let _ = db.csr_snapshot();
        for (name, strat) in [
            ("per_root", Strategy::PerRoot),
            ("level_at_a_time", Strategy::LevelAtATime),
            ("parallel_2", Strategy::Parallel(2)),
            ("parallel_4", Strategy::Parallel(4)),
            ("bitset", Strategy::Bitset),
        ] {
            group.bench_with_input(BenchmarkId::new(name, label), &(), |b, _| {
                b.iter(|| {
                    derive_molecules(&db, &md, &DeriveOptions::with_strategy(strat)).unwrap()
                })
            });
        }
    }
    // high-sharing case: the set-oriented join's advantage
    for (share, params) in presets::share_sweep() {
        let (db, _) = generate_geo(&params).unwrap();
        let md = path(db.schema(), &["river", "net", "edge", "point"]).unwrap();
        let _ = db.csr_snapshot();
        for (name, strat) in [
            ("per_root", Strategy::PerRoot),
            ("level_at_a_time", Strategy::LevelAtATime),
            ("bitset", Strategy::Bitset),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("share={share}")),
                &(),
                |b, _| {
                    b.iter(|| {
                        derive_molecules(&db, &md, &DeriveOptions::with_strategy(strat))
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
