//! B10 — the network front-end: statement throughput and latency
//! percentiles at 1/4/16/64/256 concurrent connections.
//!
//! Unlike the criterion benches, this harness needs *per-statement*
//! latency distributions (p50/p99), so it measures directly: `N` client
//! threads each push a fixed statement quota through one in-process
//! [`mad_net::Server`] on loopback, every round-trip is timed, and the
//! aggregate reports
//!
//! * `B10_net/<kind>_stmts_per_sec/cN` — completed statements per second
//!   across all `N` connections (wall clock of the whole burst),
//! * `B10_net/<kind>_p50_ns/cN`, `B10_net/<kind>_p99_ns/cN` — round-trip
//!   latency percentiles in nanoseconds,
//!
//! for `kind = read` (a pushdown SELECT), `kind = prepared` (the same
//! SELECT as a server-side prepared statement: `PREPARE` once per
//! connection, then `EXECUTE` — prices the parse/plan cache against the
//! re-parsing `read` row) and `kind = update` (autocommit DML, one
//! implicit transaction per statement, conflict-free across
//! connections). The handle is non-durable: B10 prices the protocol +
//! session + commit path, B9 already prices fsync schedules.
//!
//! The per-connection quota shrinks above 16 connections so the total
//! statement volume stays bounded; throughput is still per-second over
//! the whole burst.
//!
//! `-- --quick` shrinks the quota and merges the results into
//! `BENCH_derive.json` (same contract as the criterion shim).

use mad_model::Value;
use mad_net::{Client, Server};
use mad_txn::DbHandle;
use mad_workload::mixed_database;
use std::collections::BTreeMap;
use std::sync::Barrier;
use std::time::Instant;

const CONNECTIONS: [usize; 5] = [1, 4, 16, 64, 256];

/// Statement generator of one bench kind: `(connection, iteration) → MQL`.
type StmtGen = Box<dyn Fn(usize, usize) -> String + Sync>;
/// Optional once-per-connection setup statement: `connection → MQL`.
type SetupGen<'a> = Option<&'a (dyn Fn(usize) -> String + Sync)>;

fn populated_handle(conns: usize) -> DbHandle {
    let mut db = mixed_database().unwrap();
    let state = db.schema().atom_type_id("state").unwrap();
    let area = db.schema().atom_type_id("area").unwrap();
    let sa = db.schema().link_type_id("state-area").unwrap();
    // one private state per connection (conflict-free update target) plus
    // a shared molecule population for the SELECTs
    for w in 0..conns {
        db.insert_atom(state, vec![Value::from(format!("w{w}")), Value::from(0.0)])
            .unwrap();
    }
    for g in 0..64i64 {
        let s = db
            .insert_atom(state, vec![Value::from(format!("g{g}")), Value::from(1.0)])
            .unwrap();
        let ids = db
            .insert_atoms(area, (0..4).map(|j| vec![Value::from(g * 10 + j)]))
            .unwrap();
        for a in ids {
            db.connect(sa, s, a).unwrap();
        }
    }
    let _ = db.csr_snapshot();
    DbHandle::new(db)
}

/// Drive `conns` clients, each issuing `quota` statements produced by
/// `stmt(conn, i)`; returns every round-trip latency in ns plus the
/// burst's wall-clock seconds.
fn burst(
    addr: std::net::SocketAddr,
    conns: usize,
    quota: usize,
    setup: SetupGen<'_>,
    stmt: impl Fn(usize, usize) -> String + Sync,
) -> (Vec<u64>, f64) {
    let barrier = Barrier::new(conns + 1);
    let mut all = Vec::with_capacity(conns * quota);
    let wall = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..conns {
            let (barrier, stmt) = (&barrier, &stmt);
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect to bench server");
                if let Some(setup) = setup {
                    client.execute(&setup(c)).expect("per-connection setup statement");
                }
                // warm the connection and the session's fork
                client.execute(&stmt(c, 0)).expect("warm-up statement");
                let mut lat = Vec::with_capacity(quota);
                barrier.wait();
                for i in 0..quota {
                    let t = Instant::now();
                    client.execute(&stmt(c, i)).expect("bench statement");
                    lat.push(t.elapsed().as_nanos() as u64);
                }
                lat
            }));
        }
        barrier.wait();
        let t = Instant::now();
        for j in joins {
            all.extend(j.join().expect("bench client thread"));
        }
        t.elapsed().as_secs_f64()
    });
    (all, wall)
}

// nearest-rank percentile over exact samples, shared with the
// observability layer (whose histograms bucket the same statistic)
use mad_obs::percentile_sorted as percentile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| quick.then(|| "BENCH_derive.json".to_owned()));
    let quota = if quick { 60 } else { 300 };

    let mut results: BTreeMap<String, f64> = BTreeMap::new();
    for conns in CONNECTIONS {
        // keep the total statement volume bounded at high connection
        // counts; throughput stays a per-second rate over the burst
        let per_conn = if conns > 16 { (quota * 16 / conns).max(12) } else { quota };
        let server = Server::serve(populated_handle(conns), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        // zero-parameter form: the session caches the plan keyed by the
        // base snapshot, so EXECUTE skips both parse and plan until a
        // commit invalidates it (a parameterized EXECUTE still replans)
        let prepare: &(dyn Fn(usize) -> String + Sync) = &|_| {
            "PREPARE q AS SELECT ALL FROM state-area WHERE state.sname = 'g7'".to_owned()
        };
        let kinds: [(&str, SetupGen, StmtGen); 3] = [
            (
                "read",
                None,
                Box::new(|_, _| {
                    "SELECT ALL FROM state-area WHERE state.sname = 'g7'".to_owned()
                }),
            ),
            (
                "prepared",
                Some(prepare),
                Box::new(|_, _| "EXECUTE q".to_owned()),
            ),
            (
                "update",
                None,
                Box::new(|c, i| format!("UPDATE state[sname='w{c}'] SET hectare = {i}.0")),
            ),
        ];
        for (kind, setup, stmt) in kinds {
            let (mut lat, wall) = burst(addr, conns, per_conn, setup, stmt);
            lat.sort_unstable();
            let total = lat.len() as f64;
            results.insert(
                format!("B10_net/{kind}_stmts_per_sec/c{conns}"),
                total / wall,
            );
            results.insert(format!("B10_net/{kind}_p50_ns/c{conns}"), percentile(&lat, 0.50));
            results.insert(format!("B10_net/{kind}_p99_ns/c{conns}"), percentile(&lat, 0.99));
        }
        server.shutdown();
    }

    for (k, v) in &results {
        println!("{k:<46} {v:>14.1}");
    }
    if let Some(path) = json_path {
        merge_json(&path, &results);
        println!("bench report written to {path}");
    }
}

/// Merge into the flat `{"id": number}` report, same shape the criterion
/// shim writes.
fn merge_json(path: &str, fresh: &BTreeMap<String, f64>) {
    let mut merged: BTreeMap<String, f64> = std::fs::read_to_string(path)
        .ok()
        .map(|text| parse_flat_json(&text))
        .unwrap_or_default();
    merged.extend(fresh.iter().map(|(k, v)| (k.clone(), *v)));
    let mut out = String::from("{\n");
    for (i, (k, v)) in merged.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!("  \"{}\": {:.1}", k.replace('"', "\\\""), v));
    }
    out.push_str("\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

fn parse_flat_json(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut rest = text;
    while let Some(q) = rest.find('"') {
        rest = &rest[q + 1..];
        let Some(endq) = rest.find('"') else { break };
        let key = rest[..endq].to_owned();
        rest = &rest[endq + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            out.insert(key, v);
        }
        rest = &rest[end..];
    }
    out
}
