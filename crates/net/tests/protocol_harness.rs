//! The deterministic protocol-level test harness: a scripted raw-socket
//! client driving a live [`Server`] through the wire format directly —
//! no [`mad_net::Client`] in the loop — so framing edge cases the
//! high-level client never produces (partial writes, coalesced frames,
//! mid-frame disconnects, half-closes) are exercised on purpose.
//!
//! Responses are asserted **byte-exact and in request order**: for
//! idempotent statements the canonical response bytes are captured once
//! over a plain one-frame exchange, then every scripted variation
//! (byte-at-a-time writes, coalesced bursts) must produce *identical*
//! payload bytes in the scripted order.

use mad_model::{AttrType, MadError, SchemaBuilder, Value};
use mad_net::frame::{
    decode_response, encode_request, read_frame, FrameIn, Request, Response, FRAME_HEADER, MAGIC,
    PROTOCOL_VERSION, SUPPORTED_ENCODINGS,
};
use mad_net::{DbHandle, Server, ServerConfig};
use mad_storage::Database;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn geo_handle() -> DbHandle {
    let schema = SchemaBuilder::new()
        .atom_type("state", &[("sname", AttrType::Text), ("pop", AttrType::Int)])
        .atom_type("area", &[("aid", AttrType::Int)])
        .link_type("state-area", "state", "area")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let state = db.schema().atom_type_id("state").unwrap();
    db.insert_atom(state, vec![Value::from("SP"), Value::from(10)])
        .unwrap();
    DbHandle::new(db)
}

/// A scripted raw-socket client: every byte on the wire is explicit.
struct Script {
    stream: TcpStream,
}

impl Script {
    fn connect(server: &Server) -> Self {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Script { stream }
    }

    /// Connect and complete the magic preamble, returning the hello
    /// payload bytes exactly as they arrived.
    fn handshake(server: &Server) -> (Self, Vec<u8>) {
        let mut script = Script::connect(server);
        script.write_bytes(MAGIC);
        let hello = script.recv_payload();
        (script, hello)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).unwrap();
        self.stream.flush().unwrap();
    }

    /// Write `bytes` one byte per syscall, pausing every few bytes so
    /// the server's read sweeps observe genuinely partial input.
    fn trickle(&mut self, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_bytes(&[*b]);
            if i % 5 == 4 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// One request frame as raw wire bytes.
    fn frame(req: &Request) -> Vec<u8> {
        let mut wire = Vec::new();
        mad_net::frame::write_frame(&mut wire, &encode_request(req)).unwrap();
        wire
    }

    fn send(&mut self, req: &Request) {
        let wire = Self::frame(req);
        self.write_bytes(&wire);
    }

    /// Block until the next response frame arrives; return its payload.
    fn recv_payload(&mut self) -> Vec<u8> {
        match read_frame(&mut self.stream).unwrap() {
            FrameIn::Payload(p) => p,
            FrameIn::Closed => panic!("server closed the connection mid-script"),
        }
    }

    fn recv_response(&mut self) -> Response {
        decode_response(&self.recv_payload()).unwrap()
    }

    /// The connection must be closed (EOF or reset) — no further frame.
    fn expect_closed(&mut self) {
        match read_frame(&mut self.stream) {
            Ok(FrameIn::Closed) => {}
            Ok(FrameIn::Payload(p)) => {
                panic!("expected EOF, got a frame: {:?}", decode_response(&p))
            }
            // a reset after the server's shutdown(Both) is also "closed"
            Err(MadError::Protocol { .. }) | Err(MadError::Io { .. }) => {}
            Err(e) => panic!("expected EOF, got {e:?}"),
        }
    }
}

fn wait_until(deadline_secs: u64, what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(deadline_secs);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

#[test]
fn trickled_handshake_gets_a_byte_exact_hello() {
    let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
    let expected = mad_net::frame::encode_response(&Response::Hello {
        protocol: PROTOCOL_VERSION,
        commit_seq: server.handle().commit_seq(),
        durable: false,
        encodings: SUPPORTED_ENCODINGS,
    });
    // the magic preamble delivered one byte per syscall must still
    // complete the handshake
    let mut script = Script::connect(&server);
    script.trickle(MAGIC);
    assert_eq!(script.recv_payload(), expected);
    server.shutdown();
}

#[test]
fn partial_writes_reassemble_into_byte_exact_responses() {
    let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
    let select = Request::Statement("SELECT ALL FROM state".into());

    // canonical exchange: one clean frame, one response
    let (mut canon, _) = Script::handshake(&server);
    canon.send(&select);
    let expected = canon.recv_payload();
    assert!(matches!(
        decode_response(&expected).unwrap(),
        Response::Result(_)
    ));

    // the same frame trickled byte-at-a-time must produce identical bytes
    let (mut script, _) = Script::handshake(&server);
    script.trickle(&Script::frame(&select));
    assert_eq!(script.recv_payload(), expected);

    // a frame split exactly at the header/body boundary, with a pause
    let wire = Script::frame(&select);
    script.write_bytes(&wire[..FRAME_HEADER]);
    std::thread::sleep(Duration::from_millis(5));
    script.write_bytes(&wire[FRAME_HEADER..]);
    assert_eq!(script.recv_payload(), expected);
    server.shutdown();
}

#[test]
fn coalesced_pipeline_answers_in_order_byte_exact() {
    let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
    let select = Request::Statement("SELECT ALL FROM state".into());

    let (mut canon, _) = Script::handshake(&server);
    canon.send(&select);
    let select_bytes = canon.recv_payload();
    canon.send(&Request::Ping);
    let pong_bytes = canon.recv_payload();

    // five requests in ONE write syscall; five responses, in order,
    // byte-identical to the canonical exchanges
    let (mut script, _) = Script::handshake(&server);
    let mut burst = Vec::new();
    let order = [&select, &Request::Ping, &select, &Request::Ping, &select];
    for req in order {
        burst.extend_from_slice(&Script::frame(req));
    }
    script.write_bytes(&burst);
    for req in order {
        let expected = if matches!(req, Request::Ping) {
            &pong_bytes
        } else {
            &select_bytes
        };
        assert_eq!(&script.recv_payload(), expected);
    }
    server.shutdown();
}

#[test]
fn pipelined_burst_with_a_failing_statement_keeps_order() {
    let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
    let (mut script, _) = Script::handshake(&server);
    // a burst where the middle statement fails: the error answers in
    // position and the statements after it still execute
    let reqs = [
        Request::Statement("INSERT ATOM state (sname = 'AA', pop = 1)".into()),
        Request::Statement("SELECT ALL FROM nowhere".into()),
        Request::Statement("INSERT ATOM state (sname = 'BB', pop = 2)".into()),
    ];
    let mut burst = Vec::new();
    for req in &reqs {
        burst.extend_from_slice(&Script::frame(req));
    }
    script.write_bytes(&burst);
    let Response::Result(first) = script.recv_response() else {
        panic!("first insert should succeed")
    };
    assert!(first.starts_with("inserted atom"), "got: {first}");
    let Response::Error(err) = script.recv_response() else {
        panic!("unknown name should answer in position two")
    };
    assert!(err.to_string().contains("nowhere"), "got: {err}");
    let Response::Result(third) = script.recv_response() else {
        panic!("third insert should still execute")
    };
    assert!(third.starts_with("inserted atom"), "got: {third}");
    assert_eq!(server.handle().committed().total_atoms(), 3);
    server.shutdown();
}

#[test]
fn half_close_after_a_burst_still_answers_everything() {
    let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
    let (mut script, _) = Script::handshake(&server);
    let mut burst = Vec::new();
    for i in 0..3 {
        burst.extend_from_slice(&Script::frame(&Request::Statement(format!(
            "INSERT ATOM state (sname = 'H{i}', pop = {i})"
        ))));
    }
    script.write_bytes(&burst);
    // close only the write side: everything already sent must still be
    // answered before the server closes its side
    script.stream.shutdown(std::net::Shutdown::Write).unwrap();
    for _ in 0..3 {
        let Response::Result(text) = script.recv_response() else {
            panic!("burst statement lost after half-close")
        };
        assert!(text.starts_with("inserted atom"), "got: {text}");
    }
    script.expect_closed();
    assert_eq!(server.handle().committed().total_atoms(), 4);
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_aborts_the_open_transaction_exactly_once() {
    let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
    let baseline_seq = server.handle().commit_seq();

    let (mut script, _) = Script::handshake(&server);
    script.send(&Request::Statement("BEGIN".into()));
    assert!(matches!(script.recv_response(), Response::Result(_)));
    script.send(&Request::Statement(
        "INSERT ATOM state (sname = 'TX', pop = 99)".into(),
    ));
    assert!(matches!(script.recv_response(), Response::Result(_)));

    // vanish mid-frame: write half a header, then drop the socket
    let wire = Script::frame(&Request::Statement("COMMIT".into()));
    script.write_bytes(&wire[..FRAME_HEADER / 2]);
    drop(script);

    // the server notices, drops the session, and the session drop aborts
    // the open transaction — exactly once, observable as: the connection
    // retires, nothing committed, and the handle is not wedged
    wait_until(10, "the connection to retire", || {
        server.active_connections() == 0
    });
    assert_eq!(server.handle().commit_seq(), baseline_seq);
    assert_eq!(server.handle().committed().total_atoms(), 1);

    // a fresh connection can run a full transaction: no leaked
    // registration pins the commit log
    let (mut fresh, _) = Script::handshake(&server);
    for stmt in [
        "BEGIN",
        "INSERT ATOM state (sname = 'OK', pop = 1)",
        "COMMIT",
    ] {
        fresh.send(&Request::Statement(stmt.into()));
        let resp = fresh.recv_response();
        assert!(matches!(resp, Response::Result(_)), "got: {resp:?}");
    }
    assert_eq!(server.handle().committed().total_atoms(), 2);
    server.shutdown();
}

#[test]
fn corrupt_and_oversized_frames_get_ordered_protocol_errors() {
    let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();

    // a frame whose CRC lies: the statement queued BEFORE it must still
    // be answered first, then the protocol error, then EOF
    let (mut script, _) = Script::handshake(&server);
    let mut burst = Script::frame(&Request::Ping);
    let mut bad = Script::frame(&Request::Ping);
    let last = bad.len() - 1;
    bad[last] ^= 0xFF; // corrupt the body so the CRC mismatches
    burst.extend_from_slice(&bad);
    script.write_bytes(&burst);
    assert!(matches!(script.recv_response(), Response::Pong));
    let Response::Error(err) = script.recv_response() else {
        panic!("corrupt frame should produce an in-order error response")
    };
    assert!(err.to_string().contains("checksum"), "got: {err}");
    script.expect_closed();

    // a header declaring an absurd length is refused without allocating
    let (mut script, _) = Script::handshake(&server);
    let mut header = Vec::new();
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    script.write_bytes(&header);
    let Response::Error(err) = script.recv_response() else {
        panic!("oversized frame should produce an error response")
    };
    assert!(err.to_string().contains("refusing"), "got: {err}");
    script.expect_closed();

    // and a garbage preamble never reaches frame parsing at all
    let mut script = Script::connect(&server);
    script.write_bytes(b"HTTP/1.1");
    let Response::Error(err) = script.recv_response() else {
        panic!("bad magic should produce an error response")
    };
    assert!(matches!(err, MadError::Protocol { .. }), "got: {err}");
    script.expect_closed();
    server.shutdown();
}

#[test]
fn scripted_shutdown_drains_then_closes() {
    let server = Server::serve_with(
        geo_handle(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let (mut script, _) = Script::handshake(&server);
    const N: usize = 16;
    let mut burst = Vec::new();
    for i in 0..N {
        burst.extend_from_slice(&Script::frame(&Request::Statement(format!(
            "INSERT ATOM state (sname = 'Z{i}', pop = {i})"
        ))));
    }
    script.write_bytes(&burst);
    wait_until(10, "the burst to be parsed", || {
        server.requests_received() >= N
    });
    let stopper = std::thread::spawn(move || server.shutdown());
    for _ in 0..N {
        let Response::Result(text) = script.recv_response() else {
            panic!("shutdown dropped a parsed statement")
        };
        assert!(text.starts_with("inserted atom"), "got: {text}");
    }
    script.expect_closed();
    stopper.join().unwrap();
}
