#![forbid(unsafe_code)]

//! `madc` — the MAD client REPL.
//!
//! ```text
//! madc [ADDR]                 interactive REPL (default 127.0.0.1:7878)
//! madc [ADDR] -e "SCRIPT"     execute the `;`-separated script and exit
//! ```
//!
//! Statements end with `;` and may span lines; `--` starts a line
//! comment. REPL commands: `\q` quits, `\ping` probes the server,
//! `\stats [SUBSYSTEM]` renders the server's metrics registry (shorthand
//! for `SHOW STATS …;`), `\bin` toggles the binary result encoding
//! (results arrive structurally and are rendered client-side). Each
//! `madc` process is one server-side session, so `BEGIN; … COMMIT;`
//! behaves transactionally across inputs — and like
//! `Session::execute_script`, a failing statement stops the rest of its
//! input, so an error inside `BEGIN … COMMIT` never lets the trailing
//! `COMMIT` publish a half-built transaction.

use mad_mql::split_statements;
use mad_net::{Client, ENCODING_BINARY, ENCODING_TEXT};
use std::io::{BufRead, Write};

fn main() {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut script: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-e" => match args.next() {
                Some(s) => script = Some(s),
                None => return usage_err("-e needs a script argument"),
            },
            "-h" | "--help" => {
                println!("usage: madc [ADDR] [-e SCRIPT]");
                return;
            }
            s if s.starts_with('-') => return usage_err(&format!("unknown flag `{s}`")),
            s => addr = s.to_owned(),
        }
    }

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("madc: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let info = *client.server_info();

    if let Some(script) = script {
        std::process::exit(i32::from(!run_statements(&mut client, &script)));
    }

    println!(
        "connected to {addr} (protocol {}, commit seq {}, {})",
        info.protocol,
        info.commit_seq,
        if info.durable { "durable" } else { "in-memory" }
    );
    println!(
        "statements end with `;`   \\ping probes   \\stats shows metrics   \\bin toggles binary results   \\q quits"
    );
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut binary = false;
    loop {
        prompt(if buffer.trim().is_empty() { "mql> " } else { "  -> " });
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("madc: stdin: {e}");
                break;
            }
        }
        match line.trim() {
            "\\q" | "\\quit" => break,
            "\\ping" => {
                match client.ping() {
                    Ok(()) => println!("pong"),
                    Err(e) => eprintln!("error: {e}"),
                }
                continue;
            }
            "\\bin" => {
                let want = if binary { ENCODING_TEXT } else { ENCODING_BINARY };
                match client.set_encoding(want) {
                    Ok(()) => {
                        binary = !binary;
                        println!(
                            "result encoding: {}",
                            if binary { "binary" } else { "text" }
                        );
                    }
                    Err(e) => eprintln!("error: {e}"),
                }
                continue;
            }
            cmd if cmd.starts_with("\\stats") => {
                let subsystem = cmd.trim_start_matches("\\stats").trim();
                let stmt = if subsystem.is_empty() {
                    "SHOW STATS".to_owned()
                } else {
                    format!("SHOW STATS {subsystem}")
                };
                match client.execute(&stmt) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                }
                continue;
            }
            _ => {}
        }
        buffer.push_str(&line);
        if !ends_statement(&buffer) {
            continue;
        }
        run_statements(&mut client, &buffer);
        buffer.clear();
    }
}

/// Execute the `;`-separated statements of `input` in order, stopping at
/// the first failure (mirroring `Session::execute_script`: never send the
/// statements after a failed one). Returns whether everything succeeded.
fn run_statements(client: &mut Client, input: &str) -> bool {
    for stmt in split_statements(input) {
        match client.execute(&stmt) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("error: {e}");
                return false;
            }
        }
    }
    true
}

fn usage_err(msg: &str) {
    eprintln!("madc: {msg} (try --help)");
    std::process::exit(2);
}

fn prompt(p: &str) {
    print!("{p}");
    let _ = std::io::stdout().flush();
}

/// Does the buffered input end with a statement terminator — a `;`
/// outside string literals and `--` comments, ignoring trailing
/// whitespace? (Same lexical rules as `split_statements`.)
fn ends_statement(buffer: &str) -> bool {
    let mut in_str = false;
    let mut last_significant = ' ';
    let mut chars = buffer.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                in_str = !in_str;
                last_significant = c;
            }
            '-' if !in_str && chars.peek() == Some(&'-') => {
                // skip the comment to end of line
                for c2 in chars.by_ref() {
                    if c2 == '\n' {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => {}
            c => last_significant = if in_str { ' ' } else { c },
        }
    }
    !in_str && last_significant == ';'
}
