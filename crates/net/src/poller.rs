//! The readiness shim: non-blocking socket sweeps and the event loop's
//! adaptive idle wait.
//!
//! The workspace forbids `unsafe` and vendors no FFI, so there is no
//! `epoll`/`kqueue` to call. Readiness is instead *discovered by
//! attempting the operation* on sockets switched to non-blocking mode:
//! a read that returns [`std::io::ErrorKind::WouldBlock`] means "not
//! readable now", a short or refused write means "not writable now", and
//! the event loop simply retries on its next sweep. What this costs over
//! a kernel selector is one failed syscall per idle connection per sweep;
//! what it keeps is the same structure an epoll loop would have — one
//! thread owning every socket, sweeping readiness, and dispatching parsed
//! frames to workers — with zero unsafe code.
//!
//! Between sweeps the loop waits adaptively (see [`IdleWait`]): while
//! traffic is hot it spins with [`std::thread::yield_now`] so the peer
//! (often a benchmark client on the same box) gets the core immediately;
//! once genuinely idle it parks on a [`Condvar`] with escalating
//! timeouts, so an idle server costs a few hundred wakeups per second,
//! not a spinning core. Workers signal the condvar when they append
//! response bytes, so flushes stay prompt even from the parked state.

use mad_model::{MadError, Result};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Lock a mutex, ignoring poisoning: the data under every mad-net mutex
/// is a queue or byte buffer that stays structurally valid even if a
/// holder panicked mid-update, and the server's failure containment is
/// per-connection, not process-wide.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Outcome of one non-blocking read sweep over a connection.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadSweep {
    /// Nothing to read right now (`WouldBlock` before any byte).
    Idle,
    /// At least one byte was appended to the buffer.
    Progress,
    /// The peer closed its write side (EOF).
    Eof,
    /// The socket failed; the connection is dead.
    Failed,
}

/// Per-sweep read cap per connection, so one fire-hosing peer cannot
/// starve the rest of the sweep.
const READ_SWEEP_CAP: usize = 256 * 1024;

/// Read whatever the socket has ready into `buf`, without blocking.
/// Stops at [`ReadSweep::Idle`] (`WouldBlock`), EOF, error, or the
/// per-sweep cap (reported as progress; the next sweep continues).
pub fn sweep_read(stream: &mut TcpStream, buf: &mut Vec<u8>, scratch: &mut [u8]) -> ReadSweep {
    let mut total = 0usize;
    loop {
        match stream.read(scratch) {
            Ok(0) => return ReadSweep::Eof,
            Ok(n) => {
                // check: allow(panic, "read returns n <= scratch.len() by contract")
                buf.extend_from_slice(&scratch[..n]);
                total += n;
                if total >= READ_SWEEP_CAP {
                    return ReadSweep::Progress;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return if total == 0 {
                    ReadSweep::Idle
                } else {
                    ReadSweep::Progress
                };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadSweep::Failed,
        }
    }
}

/// Outcome of one non-blocking write sweep over a connection.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteSweep {
    /// Every pending byte went out.
    Drained,
    /// The socket stopped accepting bytes (`WouldBlock`); the remainder
    /// stays in the buffer for the next sweep.
    Pending,
    /// The socket failed; the connection is dead.
    Failed,
}

/// Write as much of `buf` as the socket accepts without blocking; written
/// bytes are removed from the front of `buf`.
pub fn sweep_write(stream: &mut TcpStream, buf: &mut Vec<u8>) -> WriteSweep {
    let mut written = 0usize;
    let outcome = loop {
        if written == buf.len() {
            break WriteSweep::Drained;
        }
        // check: allow(panic, "the Drained break above keeps written <= buf.len()")
        match stream.write(&buf[written..]) {
            // a zero-length write on a non-empty buffer: the peer's
            // receive window is gone for good — treat as failure
            Ok(0) => break WriteSweep::Failed,
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break WriteSweep::Pending,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break WriteSweep::Failed,
        }
    };
    if written > 0 {
        buf.drain(..written);
    }
    outcome
}

/// Sweeps of pure spinning (one [`std::thread::yield_now`] each) before
/// the loop starts parking on the condvar. On a single-core box the
/// yield is what hands the CPU to the in-process peer, so a hot
/// request/response ping-pong never pays a park/unpark.
const SPIN_SWEEPS: u32 = 256;

/// The escalating park timeouts once spinning gives up.
const PARK_STEPS: [Duration; 3] = [
    Duration::from_micros(200),
    Duration::from_millis(1),
    Duration::from_millis(5),
];

/// Sweeps spent at each park step before escalating to the next.
const PARK_STEP_SWEEPS: u32 = 64;

/// The event loop's adaptive idle wait: spin while hot, park with
/// escalating timeouts while idle. [`IdleWait::progress`] resets the
/// escalation; the timeout cap bounds how stale a sweep can be (new
/// connections and new request bytes are discovered by sweeping, so the
/// cap is also the worst-case latency for an idle server's first byte).
#[derive(Debug, Default)]
pub struct IdleWait {
    streak: u32,
}

impl IdleWait {
    /// Called after any sweep that accomplished work.
    pub fn progress(&mut self) {
        self.streak = 0;
    }

    /// Called after an idle sweep: yield or park until the next sweep is
    /// due, or until a worker signals `(signal, cv)`.
    pub fn wait(&mut self, signal: &Mutex<bool>, cv: &Condvar) {
        self.streak = self.streak.saturating_add(1);
        if self.streak <= SPIN_SWEEPS {
            std::thread::yield_now();
            return;
        }
        let step = usize::min(
            ((self.streak - SPIN_SWEEPS) / PARK_STEP_SWEEPS) as usize,
            PARK_STEPS.len() - 1,
        );
        let mut flagged = lock(signal);
        if !*flagged {
            let (guard, _) = cv
                .wait_timeout(flagged, PARK_STEPS[step])
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            flagged = guard;
        }
        if *flagged {
            // a worker produced output while we parked: hot again
            *flagged = false;
            self.streak = 0;
        }
    }
}

/// Switch a freshly accepted stream into the event loop's discipline:
/// non-blocking, no Nagle delay.
pub fn prepare_stream(stream: &TcpStream) -> Result<()> {
    let _ = stream.set_nodelay(true);
    stream
        .set_nonblocking(true)
        .map_err(|e| MadError::io(format!("set non-blocking: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn sweeps_discover_readiness_without_blocking() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut server = server;
        prepare_stream(&server).unwrap();

        // nothing sent yet: the read sweep reports idle, not a block
        let mut buf = Vec::new();
        let mut scratch = [0u8; 4096];
        assert_eq!(sweep_read(&mut server, &mut buf, &mut scratch), ReadSweep::Idle);

        // bytes written by the peer show up on a later sweep
        client.write_all(b"hello").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match sweep_read(&mut server, &mut buf, &mut scratch) {
                ReadSweep::Progress => break,
                ReadSweep::Idle if std::time::Instant::now() < deadline => {
                    std::thread::yield_now();
                }
                other => panic!("unexpected sweep outcome: {other:?}"),
            }
        }
        assert_eq!(buf, b"hello");

        // a write sweep drains the buffer through the socket
        let mut out = b"world".to_vec();
        assert_eq!(sweep_write(&mut server, &mut out), WriteSweep::Drained);
        assert!(out.is_empty());
        let mut echo = [0u8; 5];
        client.read_exact(&mut echo).unwrap();
        assert_eq!(&echo, b"world");

        // peer gone: EOF, then failure modes stay non-blocking
        drop(client);
        loop {
            match sweep_read(&mut server, &mut buf, &mut scratch) {
                ReadSweep::Eof => break,
                ReadSweep::Idle if std::time::Instant::now() < deadline => {
                    std::thread::yield_now();
                }
                other => panic!("unexpected sweep outcome: {other:?}"),
            }
        }
    }

    #[test]
    fn idle_wait_spins_then_parks_and_resets_on_signal() {
        let signal = Mutex::new(false);
        let cv = Condvar::new();
        let mut wait = IdleWait::default();
        // the spin phase must not park (fast even called 3× the spin budget)
        let started = std::time::Instant::now();
        for _ in 0..SPIN_SWEEPS {
            wait.wait(&signal, &cv);
        }
        assert!(started.elapsed() < Duration::from_secs(1));
        // past the spin budget it parks — but a pending signal wakes it
        *lock(&signal) = true;
        wait.wait(&signal, &cv);
        assert_eq!(wait.streak, 0, "a signal must reset the escalation");
        assert!(!*lock(&signal), "the signal must be consumed");
    }
}
