//! The TCP server: one listener, one thread + one shared session per
//! connection, graceful shutdown.

use crate::frame::{
    encode_response, is_timeout_error, read_frame, write_frame, FrameIn, Request, Response,
    MAGIC, PROTOCOL_VERSION,
};
use mad_model::bin::u64_of_usize;
use mad_model::{MadError, Result};
use mad_mql::Session;
use mad_obs::{Histogram, Registry, SlowEntry, SlowLog};
use mad_txn::DbHandle;
use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;

/// Statements the slow-query ring buffer retains (oldest evicted first).
const SLOW_LOG_CAP: usize = 128;

/// Server-side connection knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerConfig {
    /// Reap a connection after this long without a complete request
    /// (socket read deadline): a half-open or abandoned connection then
    /// drops its session — aborting any transaction it left open —
    /// instead of pinning a thread, a session and the transaction's
    /// commit-log registration forever. `None` (the default) never
    /// reaps, the pre-deadline behavior.
    pub idle_timeout: Option<std::time::Duration>,
    /// Record any statement slower than this in the slow-query ring
    /// buffer (its per-stage trace included; see [`Server::slow_queries`]).
    /// `None` (the default) disables the log.
    pub slow_query: Option<std::time::Duration>,
}

/// Shared state of a running server, visible to every connection thread.
#[derive(Debug)]
struct Shared {
    handle: DbHandle,
    config: ServerConfig,
    /// Connections reaped by the idle timeout (monitoring/tests).
    reaped: AtomicUsize,
    /// Set by [`Server::shutdown`]; the accept loop and every connection
    /// loop observe it and wind down.
    stopping: AtomicBool,
    /// Connection id → stream clone for every **live** connection, so
    /// shutdown can unblock threads parked in a read; entries are removed
    /// when their connection ends (no fd outlives its connection).
    conns: Mutex<HashMap<u64, TcpStream>>,
    active: AtomicUsize,
    served: AtomicUsize,
    /// The deployment registry (the served handle's) this server reports
    /// its `net.*` metrics into.
    obs: Registry,
    /// `net.stmt_ns` — wall time per served statement, all connections.
    stmt_ns: Arc<Histogram>,
    /// The slow-query ring buffer ([`ServerConfig::slow_query`]).
    slow: SlowLog,
}

/// A running MAD TCP server.
///
/// [`Server::serve`] binds the listener and returns immediately; accepting
/// and serving happen on background threads (one per connection — sessions
/// are thread-confined, the [`DbHandle`] underneath is the shared,
/// thread-safe piece). Drop without [`Server::shutdown`] leaves the
/// threads running until the process exits; call `shutdown` for a
/// graceful stop (stop accepting, close every connection, join all
/// threads).
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port, see
    /// [`Server::local_addr`]) and serve `handle` until shutdown. Every
    /// accepted connection gets its own [`Session::shared`] over a clone
    /// of `handle`.
    pub fn serve(handle: DbHandle, addr: impl ToSocketAddrs) -> Result<Server> {
        Self::serve_with(handle, addr, ServerConfig::default())
    }

    /// [`Server::serve`] with connection knobs — notably
    /// [`ServerConfig::idle_timeout`], the idle-connection reaper.
    pub fn serve_with(
        handle: DbHandle,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Server> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| MadError::io(format!("bind listener: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| MadError::io(format!("listener address: {e}")))?;
        let obs = handle.obs().clone();
        let stmt_ns = obs.histogram("net.stmt_ns");
        let shared = Arc::new(Shared {
            handle,
            config,
            reaped: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            active: AtomicUsize::new(0),
            served: AtomicUsize::new(0),
            obs,
            stmt_ns,
            slow: SlowLog::new(SLOW_LOG_CAP, config.slow_query),
        });
        register_server_gauges(&shared);
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_threads = Arc::clone(&conn_threads);
        let accept_thread = std::thread::Builder::new()
            .name("mad-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_threads))
            .map_err(|e| MadError::io(format!("spawn accept thread: {e}")))?;
        Ok(Server {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served database handle.
    pub fn handle(&self) -> &DbHandle {
        &self.shared.handle
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Connections accepted since the server started.
    pub fn connections_served(&self) -> usize {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Connections reaped by the idle timeout since the server started.
    pub fn connections_reaped(&self) -> usize {
        self.shared.reaped.load(Ordering::Relaxed)
    }

    /// The metrics registry this server reports into (the served handle's
    /// deployment registry; `SHOW STATS net` over any connection renders
    /// the same numbers).
    pub fn obs(&self) -> &Registry {
        &self.shared.obs
    }

    /// The slow-query ring buffer's current contents, oldest first (empty
    /// unless [`ServerConfig::slow_query`] set a threshold).
    pub fn slow_queries(&self) -> Vec<SlowEntry> {
        self.shared.slow.entries()
    }

    /// Render the slow-query log, one line per retained statement.
    pub fn render_slow_queries(&self) -> String {
        self.shared.slow.render()
    }

    /// Graceful shutdown: stop accepting, close every live connection
    /// (in-flight statements finish or fail with an I/O error on their
    /// client; open transactions abort through session drop), and join
    /// every thread. Idempotent in effect; consumes the server.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // unblock the accept loop with a loopback connection to ourselves
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // close every live connection so reads unblock
        for (_, conn) in self.shared.conns.lock().unwrap().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let threads: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

/// Register the server's `net.*` poll-gauges. Each captures only a
/// [`Weak`] of the shared state: once the server (and its last connection
/// thread) is gone the gauges read `None` and the registry drops them at
/// the next snapshot — a shut-down server leaves no stale rows behind.
fn register_server_gauges(shared: &Arc<Shared>) {
    let weak = {
        let w = Arc::downgrade(shared);
        move || -> Weak<Shared> { w.clone() }
    };
    let obs = &shared.obs;
    {
        let w = weak();
        obs.gauge("net.active", move || {
            w.upgrade().map(|s| u64_of_usize(s.active.load(Ordering::Relaxed)))
        });
    }
    {
        let w = weak();
        obs.gauge("net.served", move || {
            w.upgrade().map(|s| u64_of_usize(s.served.load(Ordering::Relaxed)))
        });
    }
    {
        let w = weak();
        obs.gauge("net.reaped", move || {
            w.upgrade().map(|s| u64_of_usize(s.reaped.load(Ordering::Relaxed)))
        });
    }
    {
        let w = weak();
        obs.gauge("net.slow.len", move || {
            w.upgrade().map(|s| u64_of_usize(s.slow.len()))
        });
    }
    {
        let w = weak();
        obs.gauge("net.slow.recorded", move || {
            w.upgrade().map(|s| s.slow.total_recorded())
        });
    }
    {
        let w = weak();
        obs.gauge("net.slow.threshold_ns", move || {
            w.upgrade().map(|s| {
                s.slow
                    .threshold()
                    .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            })
        });
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let accepted = listener.accept();
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = accepted else {
            // transient accept failure (the peer vanished between SYN and
            // accept, or fd exhaustion); back off briefly so a persistent
            // error condition cannot busy-spin the accept thread
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        };
        let conn_id = shared.served.fetch_add(1, Ordering::Relaxed) as u64;
        match stream.try_clone() {
            Ok(clone) => {
                shared.conns.lock().unwrap().insert(conn_id, clone);
            }
            // without a registered clone, shutdown could not unblock this
            // connection's read and would hang joining its thread — refuse
            // the connection instead of serving it untracked
            Err(_) => continue,
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("mad-net-conn".into())
            .spawn(move || {
                conn_shared.active.fetch_add(1, Ordering::Relaxed);
                serve_connection(&conn_shared, stream, conn_id);
                conn_shared.active.fetch_sub(1, Ordering::Relaxed);
                conn_shared.conns.lock().unwrap().remove(&conn_id);
                // the connection's metrics leave the registry with it; the
                // global `net.stmt_ns` histogram keeps the totals
                conn_shared.obs.remove_prefix(&format!("net.conn.{conn_id}."));
            });
        let mut threads = threads.lock().unwrap();
        if let Ok(t) = spawned {
            threads.push(t);
        }
        // reap finished threads so a long-lived server does not
        // accumulate one parked JoinHandle per past connection
        let (done, running): (Vec<_>, Vec<_>) =
            threads.drain(..).partition(|t| t.is_finished());
        *threads = running;
        drop(threads);
        for t in done {
            let _ = t.join();
        }
    }
}

/// Serve one connection to completion. All failure modes are scoped to
/// this connection: a malformed frame or statement error is answered with
/// an error frame (best-effort for protocol errors, after which the
/// connection closes); the shared handle is never poisoned. Returning —
/// normally or early — drops the session, which aborts any transaction
/// the client left open.
fn serve_connection(shared: &Shared, stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    // the read deadline implements the idle reaper: a connection that
    // completes no request within the timeout is torn down below
    if stream.set_read_timeout(shared.config.idle_timeout).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    if let Err(e) = handshake(shared, &mut reader, &mut writer) {
        let _ = send(&mut writer, &Response::Error(e));
        return;
    }
    let mut session = Session::shared(shared.handle.clone());
    let conn_stmt_ns = shared.obs.histogram(&format!("net.conn.{conn_id}.stmt_ns"));
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut reader) {
            Ok(FrameIn::Payload(p)) => p,
            // clean disconnect — or our own shutdown closing the socket
            Ok(FrameIn::Closed) => return,
            Err(e) if is_timeout_error(&e) => {
                // idle for a whole timeout window: reap. Returning drops
                // the session, aborting any open transaction, so a
                // half-open client cannot pin server state
                shared.reaped.fetch_add(1, Ordering::Relaxed);
                let _ = send(
                    &mut writer,
                    &Response::Error(MadError::io(
                        "connection reaped after idling past the server's timeout",
                    )),
                );
                return;
            }
            Err(e) => {
                // malformed frame: answer with the protocol error (the
                // peer may already be gone — best effort) and close
                let _ = send(&mut writer, &Response::Error(e));
                return;
            }
        };
        let response = match crate::frame::decode_request(&payload) {
            Ok(Request::Statement(text)) => {
                // Stage tracing is armed only when the slow-query log
                // wants the breakdown; the latency histograms need just
                // the total, so the default path stays two clock reads.
                // EXPLAIN ANALYZE arms its own trace inside the session
                // either way.
                let (result, total_ns) = if shared.slow.threshold().is_some() {
                    let (result, trace) = session.execute_rendered_traced(&text);
                    shared.slow.offer(conn_id, &trace);
                    (result, trace.total_ns)
                } else {
                    let started = std::time::Instant::now();
                    let result = session.execute_rendered(&text);
                    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    (result, ns)
                };
                shared.stmt_ns.record(total_ns);
                conn_stmt_ns.record(total_ns);
                match result {
                    Ok(rendered) => Response::Result(rendered),
                    Err(e) => Response::Error(e),
                }
            }
            Ok(Request::Ping) => Response::Pong,
            Err(e) => {
                let _ = send(&mut writer, &Response::Error(e));
                return;
            }
        };
        if send(&mut writer, &response).is_err() {
            // the client is gone; drop the session (aborting any open
            // transaction) and release the thread
            return;
        }
    }
}

/// Verify the client preamble and send the hello frame.
fn handshake(shared: &Shared, r: &mut impl Read, w: &mut impl Write) -> Result<()> {
    let mut magic = [0u8; MAGIC.len()];
    r.read_exact(&mut magic)
        .map_err(|e| MadError::protocol(format!("connection preamble: {e}")))?;
    if &magic != MAGIC {
        return Err(MadError::protocol(
            "connection preamble mismatch: not a MAD protocol client",
        ));
    }
    send(
        w,
        &Response::Hello {
            protocol: PROTOCOL_VERSION,
            commit_seq: shared.handle.commit_seq(),
            durable: shared.handle.is_durable(),
        },
    )
}

fn send(w: &mut impl Write, resp: &Response) -> Result<()> {
    write_frame(w, &encode_response(resp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use mad_model::{AttrType, SchemaBuilder, Value};
    use mad_storage::Database;

    fn geo_handle() -> DbHandle {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text), ("pop", AttrType::Int)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        db.insert_atom(state, vec![Value::from("SP"), Value::from(10)])
            .unwrap();
        DbHandle::new(db)
    }

    #[test]
    fn serve_execute_shutdown_roundtrip() {
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.server_info().protocol, PROTOCOL_VERSION);
        assert!(!client.server_info().durable);
        client.ping().unwrap();
        let text = client
            .execute("INSERT ATOM state (sname = 'MG', pop = 9)")
            .unwrap();
        assert!(text.starts_with("inserted atom"), "got: {text}");
        let text = client
            .execute("SELECT ALL FROM state WHERE state.sname = 'MG'")
            .unwrap();
        assert!(text.contains("1 molecule(s)"), "got: {text}");
        // statement errors come back typed, not as closed connections
        let err = client.execute("SELECT ALL FROM ghost").unwrap_err();
        assert!(matches!(err, MadError::UnknownName { .. }), "got {err:?}");
        // the session survives the error
        client.ping().unwrap();
        drop(client);
        server.shutdown();
    }

    #[test]
    fn malformed_preamble_gets_a_protocol_error() {
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"GET / HT").unwrap(); // an HTTP client, say
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let reply = crate::frame::read_frame(&mut reader).unwrap();
        let crate::frame::FrameIn::Payload(payload) = reply else {
            panic!("expected an error frame before close");
        };
        let resp = crate::frame::decode_response(&payload).unwrap();
        let Response::Error(e) = resp else {
            panic!("expected an error response, got {resp:?}")
        };
        assert!(matches!(e, MadError::Protocol { .. }), "got {e:?}");
        // ...and the connection is then closed
        assert!(matches!(
            crate::frame::read_frame(&mut reader),
            Ok(crate::frame::FrameIn::Closed)
        ));
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_and_their_transactions_aborted() {
        use std::time::Duration;
        let server = Server::serve_with(
            geo_handle(),
            "127.0.0.1:0",
            ServerConfig {
                idle_timeout: Some(Duration::from_millis(100)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        client.execute("BEGIN").unwrap();
        client
            .execute("INSERT ATOM state (sname = 'RJ', pop = 6)")
            .unwrap();
        // ...and then the client goes silent (half-open in spirit)
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.active_connections() > 0 {
            assert!(std::time::Instant::now() < deadline, "connection never reaped");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.connections_reaped(), 1);
        // the open transaction died with its session: nothing committed,
        // and no registration pins the commit log
        assert_eq!(server.handle().committed().total_atoms(), 1);
        assert_eq!(server.handle().commit_log_len(), 0);
        // an active client is NOT reaped while it keeps talking
        let mut live = Client::connect(addr).unwrap();
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(60));
            live.ping().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn client_read_deadline_classifies_a_stalled_server() {
        use crate::{is_timeout_error, ClientConfig};
        use std::time::Duration;
        // a listener that accepts and then never says anything
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(2));
            drop(stream);
        });
        let err = Client::connect_with(
            addr,
            ClientConfig {
                read_timeout: Some(Duration::from_millis(100)),
                write_timeout: Some(Duration::from_millis(100)),
            },
        )
        .unwrap_err();
        assert!(is_timeout_error(&err), "got {err:?}");
        sink.join().unwrap();
    }

    #[test]
    fn conflict_retry_and_reconnect_policies() {
        use crate::RetryPolicy;
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let policy = RetryPolicy::default();

        // retry helper: a conflict-free statement goes through unchanged
        let mut client = Client::connect(addr).unwrap();
        let text = client
            .execute_retry("SELECT ALL FROM state", &policy)
            .unwrap();
        assert!(text.contains("molecule"), "got: {text}");
        // a non-conflict error is NOT retried (fails fast, same error)
        let err = client
            .execute_retry("SELECT ALL FROM ghost", &policy)
            .unwrap_err();
        assert!(matches!(err, MadError::UnknownName { .. }), "got {err:?}");

        // reconnect: kill the connection server-side, then recover
        for (_, conn) in server.shared.conns.lock().unwrap().iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        assert!(client.ping().is_err(), "connection should be dead");
        client.reconnect_retry(&policy).unwrap();
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn slow_query_log_records_traced_statements_over_the_wire() {
        use std::time::Duration;
        // threshold 0: every statement is "slow", so the log fills
        let server = Server::serve_with(
            geo_handle(),
            "127.0.0.1:0",
            ServerConfig {
                slow_query: Some(Duration::ZERO),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client
            .execute("INSERT ATOM state (sname = 'MG', pop = 9)")
            .unwrap();
        client.execute("SELECT ALL FROM state").unwrap();
        client.ping().unwrap(); // pings are not statements: never logged
        let entries = server.slow_queries();
        assert_eq!(entries.len(), 2, "got: {}", server.render_slow_queries());
        // the entries carry real traces: text, total, non-zero stages
        let select = &entries[1];
        assert_eq!(select.conn, entries[0].conn);
        assert_eq!(select.trace.text, "SELECT ALL FROM state");
        assert!(select.trace.total_ns > 0);
        for kind in [
            mad_obs::StageKind::Lex,
            mad_obs::StageKind::Parse,
            mad_obs::StageKind::Derive,
        ] {
            assert_eq!(select.trace.stage_count(kind), 1, "{kind:?} missing");
            assert!(select.trace.stage_ns(kind) > 0, "{kind:?} timed at zero");
        }
        // the autocommit INSERT validated and appended through mad_txn
        assert_eq!(entries[0].trace.stage_count(mad_obs::StageKind::Validate), 1);
        // the ring buffer caps: overflow evicts the oldest entries
        for i in 0..(SLOW_LOG_CAP + 4) {
            client
                .execute(&format!("SELECT ALL FROM state WHERE state.pop = {i}"))
                .unwrap();
        }
        let entries = server.slow_queries();
        assert_eq!(entries.len(), SLOW_LOG_CAP);
        assert!(
            entries[0].trace.text.contains("state.pop"),
            "oldest entries were evicted: {}",
            entries[0].trace.text
        );
        // rendering shows one line per retained statement
        let rendered = server.render_slow_queries();
        assert_eq!(rendered.lines().count(), SLOW_LOG_CAP);
        server.shutdown();
    }

    #[test]
    fn show_stats_and_explain_analyze_served_over_the_wire() {
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.execute("SELECT ALL FROM state").unwrap();
        // the server's registry is the handle's: net.* and mql.* both show
        let text = client.execute("SHOW STATS net").unwrap();
        assert!(text.contains("net.stmt_ns"), "got: {text}");
        assert!(text.contains("net.active"), "got: {text}");
        let text = client.execute("SHOW STATS mql").unwrap();
        assert!(text.contains("mql.statements"), "got: {text}");
        // per-connection histograms appear while the connection lives…
        let text = client.execute("SHOW STATS").unwrap();
        assert!(text.contains("net.conn.0.stmt_ns"), "got: {text}");
        // …and EXPLAIN ANALYZE renders stage timings to the client
        let text = client
            .execute("EXPLAIN ANALYZE SELECT ALL FROM state WHERE state.pop = 10")
            .unwrap();
        assert!(text.contains("derive"), "got: {text}");
        assert!(text.contains("1 molecule(s)"), "got: {text}");
        // machine-readable stats parse as JSON on the client side
        let text = client.execute("SHOW STATS net AS JSON").unwrap();
        let json = mad_model::json::Json::parse(&text).unwrap();
        let count = json.get("net.stmt_ns").unwrap().get("count").unwrap();
        assert!(matches!(count, mad_model::json::Json::Int(n) if *n >= 5), "got: {count:?}");
        drop(client);
        server.shutdown();
        // a dead connection's per-connection metrics leave the registry
        // (polled lazily — snapshot after the connection thread exited)
        // …verified via a fresh server in `connection_metrics_are_scoped`
    }

    #[test]
    fn connection_metrics_are_scoped_to_the_connection_lifetime() {
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.execute("SELECT ALL FROM state").unwrap();
        let snap = server.obs().snapshot(Some("net.conn"));
        assert!(!snap.is_empty(), "live connection registers its histogram");
        drop(client);
        // wait for the connection thread to tear down and unregister
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.active_connections() > 0 || !server.obs().snapshot(Some("net.conn")).is_empty()
        {
            assert!(
                std::time::Instant::now() < deadline,
                "per-connection metrics outlived the connection"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_parked_clients() {
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();
        assert_eq!(server.active_connections(), 1);
        server.shutdown(); // must not hang on the idle connection
        // the client now observes a dead connection as an I/O error
        let err = client.execute("SELECT ALL FROM state").unwrap_err();
        assert!(
            matches!(err, MadError::Io { .. } | MadError::Protocol { .. }),
            "got {err:?}"
        );
    }
}
