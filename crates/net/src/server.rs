//! The TCP server: a readiness-based event loop over non-blocking
//! sockets, a fixed worker pool, pipelined request execution.
//!
//! One poller thread (see [`crate::poller`]) owns every socket: it
//! accepts, sweeps read readiness, parses frames out of per-connection
//! buffers, and flushes response bytes. Decoded requests are handed to a
//! small worker pool through per-connection mailboxes; a connection is
//! claimed by at most one worker at a time, so its statements execute in
//! order against its one [`Session::shared`] and responses come back in
//! request order even when the client pipelines. A single pending
//! statement with the whole server otherwise idle is executed inline on
//! the poller thread — no handoff, which keeps the one-client latency of
//! the old thread-per-connection design.

use crate::frame::{
    decode_request, encode_response, extract_frame, write_frame, Request, Response,
    ENCODING_BINARY, ENCODING_TEXT, MAGIC, PROTOCOL_VERSION, SUPPORTED_ENCODINGS,
};
use crate::poller::{
    lock, prepare_stream, sweep_read, sweep_write, IdleWait, ReadSweep, WriteSweep,
};
use mad_model::bin::{u64_of_usize, BinEncode};
use mad_model::{MadError, Result};
use mad_mql::Session;
use mad_obs::{Histogram, Registry, SlowEntry, SlowLog};
use mad_txn::{DbHandle, ReplAck};
use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Statements the slow-query ring buffer retains (oldest evicted first).
const SLOW_LOG_CAP: usize = 128;

/// How long shutdown waits for queued statements to finish and their
/// responses to flush before force-closing what remains (a dead peer
/// with a full receive window cannot stall shutdown forever).
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Server-side connection knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerConfig {
    /// Reap a connection after this long without request bytes: a
    /// half-open or abandoned connection then drops its session —
    /// aborting any transaction it left open — instead of pinning a
    /// session and the transaction's commit-log registration forever.
    /// `None` (the default) never reaps.
    pub idle_timeout: Option<Duration>,
    /// Record any statement slower than this in the slow-query ring
    /// buffer (its per-stage trace included; see [`Server::slow_queries`]).
    /// `None` (the default) disables the log.
    pub slow_query: Option<Duration>,
    /// Statement-execution workers. `0` (the default) sizes the pool to
    /// the machine: `available_parallelism` clamped to `4..=8` — the
    /// floor is above one because workers park (fsync slots, replication
    /// quorums) rather than compute, and a single parked commit must not
    /// serialize every other connection.
    pub workers: usize,
}

/// One unit of work in a connection's mailbox, executed in arrival order.
enum WorkItem {
    /// A decoded client request.
    Req(Request),
    /// A terminal condition discovered on the read side (malformed
    /// frame, idle reap): answer with the error *after* everything
    /// queued before it, then close the connection.
    Fatal(MadError),
}

/// The worker-visible half of one connection: its mailbox and its
/// outgoing byte stream. The poller owns the socket itself.
struct ConnShared {
    id: u64,
    work: Mutex<ConnWork>,
    /// Encoded response frames waiting for the poller to write. Workers
    /// append; the poller drains into its per-connection write buffer,
    /// preserving order.
    outbox: Mutex<Vec<u8>>,
}

/// Mailbox state, guarded by one mutex so the claim/done transitions and
/// the exactly-once session teardown are atomic.
struct ConnWork {
    queue: VecDeque<WorkItem>,
    /// Is the connection currently claimed (in the ready queue or being
    /// drained by a worker)? At most one claimant at a time — this is
    /// what serializes a connection's statements.
    scheduled: bool,
    /// No further items will ever be enqueued (disconnect, fatal error,
    /// shutdown). Whoever next observes the queue empty takes and drops
    /// the session — aborting an open transaction exactly once.
    closed: bool,
    /// The connection's session; taken out while a statement executes so
    /// no lock is held during execution.
    session: Option<Session>,
    /// Result encoding in effect ([`ENCODING_TEXT`] until negotiated).
    encoding: u8,
    /// `net.conn.{id}.stmt_ns` — this connection's statement latencies.
    stmt_ns: Arc<Histogram>,
}

/// Shared state of a running server.
struct Shared {
    handle: DbHandle,
    config: ServerConfig,
    /// Connections reaped by the idle timeout (monitoring/tests).
    reaped: AtomicUsize,
    /// Set by [`Server::shutdown`]; the poller stops accepting and
    /// reading, drains queued statements, then tears down.
    stopping: AtomicBool,
    /// Skip the drain: close everything now (see [`Server::kill`]).
    hard_stop: AtomicBool,
    /// Set by the poller once the drain finished; workers exit when the
    /// ready queue is empty and this is set.
    drained: AtomicBool,
    /// Connection id → stream clone for every **live** connection, so
    /// tests and tooling can kill a connection out from under its
    /// client; entries leave with their connection.
    reg: Mutex<HashMap<u64, TcpStream>>,
    active: AtomicUsize,
    served: AtomicUsize,
    /// Requests answered (statements, pings, encoding switches).
    requests: AtomicUsize,
    /// Requests parsed off the wire (answered or still queued). On
    /// shutdown, everything counted here is still executed and its
    /// response flushed — the drain guarantee.
    received: AtomicUsize,
    /// Work items currently waiting in per-connection mailboxes.
    queued: AtomicUsize,
    /// Connections currently claimed by a worker.
    in_flight: AtomicUsize,
    /// Poller transitions from idle back to useful work.
    wakeups: AtomicUsize,
    /// Connections with claimed, unprocessed mailboxes.
    ready: Mutex<VecDeque<Arc<ConnShared>>>,
    ready_cv: Condvar,
    /// Workers flag this (and signal) when they append response bytes,
    /// so a parked poller flushes promptly.
    flush_signal: Mutex<bool>,
    flush_cv: Condvar,
    /// The deployment registry (the served handle's) this server reports
    /// its `net.*` metrics into.
    obs: Registry,
    /// `net.stmt_ns` — wall time per served statement, all connections.
    stmt_ns: Arc<Histogram>,
    /// The slow-query ring buffer ([`ServerConfig::slow_query`]).
    slow: SlowLog,
}

/// A running MAD TCP server.
///
/// [`Server::serve`] binds the listener and returns immediately;
/// accepting, I/O and statement execution happen on background threads
/// (one poller plus a small worker pool — sessions move between workers
/// but never run concurrently, the [`DbHandle`] underneath is the
/// shared, thread-safe piece). Drop without [`Server::shutdown`] leaves
/// the threads running until the process exits; call `shutdown` for a
/// graceful stop (stop accepting, drain queued statements, flush their
/// responses, close every connection, join all threads).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    poll_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.worker_threads.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port, see
    /// [`Server::local_addr`]) and serve `handle` until shutdown. Every
    /// accepted connection gets its own [`Session::shared`] over a clone
    /// of `handle`.
    pub fn serve(handle: DbHandle, addr: impl ToSocketAddrs) -> Result<Server> {
        Self::serve_with(handle, addr, ServerConfig::default())
    }

    /// [`Server::serve`] with connection knobs — notably
    /// [`ServerConfig::idle_timeout`], the idle-connection reaper, and
    /// [`ServerConfig::workers`], the execution-pool size.
    pub fn serve_with(
        handle: DbHandle,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Server> {
        let listener =
            TcpListener::bind(addr).map_err(|e| MadError::io(format!("bind listener: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| MadError::io(format!("listener address: {e}")))?;
        let obs = handle.obs().clone();
        let stmt_ns = obs.histogram("net.stmt_ns");
        let shared = Arc::new(Shared {
            handle,
            config,
            reaped: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            hard_stop: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            reg: Mutex::new(HashMap::new()),
            active: AtomicUsize::new(0),
            served: AtomicUsize::new(0),
            requests: AtomicUsize::new(0),
            received: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            wakeups: AtomicUsize::new(0),
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            flush_signal: Mutex::new(false),
            flush_cv: Condvar::new(),
            obs,
            stmt_ns,
            slow: SlowLog::new(SLOW_LOG_CAP, config.slow_query),
        });
        register_server_gauges(&shared);
        let poll_shared = Arc::clone(&shared);
        let poll_thread = std::thread::Builder::new()
            .name("mad-net-poll".into())
            .spawn(move || event_loop(&listener, &poll_shared))
            .map_err(|e| MadError::io(format!("spawn poller thread: {e}")))?;
        let mut worker_threads = Vec::new();
        for i in 0..worker_count(&config) {
            let worker_shared = Arc::clone(&shared);
            let t = std::thread::Builder::new()
                .name(format!("mad-net-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared))
                .map_err(|e| MadError::io(format!("spawn worker thread: {e}")))?;
            worker_threads.push(t);
        }
        Ok(Server {
            shared,
            addr: local,
            poll_thread: Some(poll_thread),
            worker_threads,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served database handle.
    pub fn handle(&self) -> &DbHandle {
        &self.shared.handle
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Connections accepted since the server started.
    pub fn connections_served(&self) -> usize {
        self.shared.served.load(Ordering::SeqCst)
    }

    /// Connections reaped by the idle timeout since the server started.
    pub fn connections_reaped(&self) -> usize {
        self.shared.reaped.load(Ordering::SeqCst)
    }

    /// Requests answered since the server started (statements, pings and
    /// encoding switches all count; every answered request produced
    /// exactly one response frame).
    pub fn requests_served(&self) -> usize {
        self.shared.requests.load(Ordering::SeqCst)
    }

    /// Requests parsed off the wire since the server started (answered
    /// or still queued). [`Server::shutdown`] answers everything counted
    /// here before closing — the drain guarantee.
    pub fn requests_received(&self) -> usize {
        self.shared.received.load(Ordering::SeqCst)
    }

    /// The metrics registry this server reports into (the served handle's
    /// deployment registry; `SHOW STATS net` over any connection renders
    /// the same numbers).
    pub fn obs(&self) -> &Registry {
        &self.shared.obs
    }

    /// The slow-query ring buffer's current contents, oldest first (empty
    /// unless [`ServerConfig::slow_query`] set a threshold).
    pub fn slow_queries(&self) -> Vec<SlowEntry> {
        self.shared.slow.entries()
    }

    /// Render the slow-query log, one line per retained statement.
    pub fn render_slow_queries(&self) -> String {
        self.shared.slow.render()
    }

    /// Graceful shutdown: stop accepting and reading, **drain** — every
    /// request already parsed executes and its response flushes to its
    /// client — then close every connection (open transactions abort
    /// through session drop) and join every thread. Idempotent in
    /// effect; consumes the server.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Abrupt kill: close every connection **without draining** — queued
    /// statements die unanswered, clients see transport errors, open
    /// transactions abort through session drop. This is the workload
    /// harness's stand-in for a server crash (modulo durability, which a
    /// real crash test exercises by also cutting the WAL file).
    pub fn kill(mut self) {
        self.shared.hard_stop.store(true, Ordering::SeqCst);
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // the poller notices `stopping` on its next sweep (its park
        // timeout is capped); nudge it in case it is parked right now
        *lock(&self.shared.flush_signal) = true;
        self.shared.flush_cv.notify_all();
        if let Some(t) = self.poll_thread.take() {
            let _ = t.join();
        }
        // the poller sets `drained` before exiting; set it defensively
        // in case that thread died early, then release the workers
        self.shared.drained.store(true, Ordering::SeqCst);
        {
            let _guard = lock(&self.shared.ready);
            self.shared.ready_cv.notify_all();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Resolve [`ServerConfig::workers`]: explicit if nonzero, else sized to
/// the machine — with a floor of 4, NOT a floor of 1. Workers are not
/// CPU-bound: a COMMIT can park for its fsync slot or a replication
/// quorum, costing no cycles while it waits. Sizing the pool by cores
/// alone would let one parked commit serialize every other connection
/// behind it (on a 1-core box the pool would be a single worker), and
/// independent connections must keep making progress while one waits —
/// the replication fault tests deadlock otherwise.
fn worker_count(config: &ServerConfig) -> usize {
    if config.workers > 0 {
        return config.workers;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(4, 8)
}

/// Register the server's `net.*` poll-gauges. Each captures only a
/// [`Weak`] of the shared state: once the server is gone the gauges read
/// `None` and the registry drops them at the next snapshot — a shut-down
/// server leaves no stale rows behind.
fn register_server_gauges(shared: &Arc<Shared>) {
    let weak = {
        let w = Arc::downgrade(shared);
        move || -> Weak<Shared> { w.clone() }
    };
    let obs = &shared.obs;
    type GaugeRow = (&'static str, fn(&Shared) -> u64);
    let gauges: [GaugeRow; 10] = [
        ("net.active", |s| u64_of_usize(s.active.load(Ordering::Relaxed))),
        ("net.served", |s| u64_of_usize(s.served.load(Ordering::Relaxed))),
        ("net.reaped", |s| u64_of_usize(s.reaped.load(Ordering::Relaxed))),
        ("net.requests", |s| {
            u64_of_usize(s.requests.load(Ordering::Relaxed))
        }),
        ("net.pipeline.received", |s| {
            u64_of_usize(s.received.load(Ordering::Relaxed))
        }),
        ("net.pipeline.queued", |s| {
            u64_of_usize(s.queued.load(Ordering::Relaxed))
        }),
        ("net.pipeline.in_flight", |s| {
            u64_of_usize(s.in_flight.load(Ordering::Relaxed))
        }),
        ("net.poll.wakeups", |s| {
            u64_of_usize(s.wakeups.load(Ordering::Relaxed))
        }),
        ("net.slow.len", |s| u64_of_usize(s.slow.len())),
        ("net.slow.recorded", |s| s.slow.total_recorded()),
    ];
    for (name, read) in gauges {
        let w = weak();
        obs.gauge(name, move || w.upgrade().map(|s| read(&s)));
    }
    {
        let w = weak();
        obs.gauge("net.slow.threshold_ns", move || {
            w.upgrade().map(|s| {
                s.slow
                    .threshold()
                    .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            })
        });
    }
}

// ---------------------------------------------------------------------
// the event loop (poller thread)
// ---------------------------------------------------------------------

/// Poller-side state of one connection. Only the poller touches the
/// socket and these buffers; everything workers need lives in
/// [`ConnShared`].
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into frames.
    rbuf: Vec<u8>,
    /// Bytes waiting to go out (drained from the outbox, plus the hello).
    pending: Vec<u8>,
    shared: Arc<ConnShared>,
    /// Completed the magic preamble?
    handshaken: bool,
    /// Still reading? Cleared on EOF, socket failure, a fatal protocol
    /// error, or the idle reaper.
    read_open: bool,
    /// Socket failed — skip further writes, drop pending output.
    hard_dead: bool,
    last_activity: Instant,
}

fn event_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let _ = listener.set_nonblocking(true);
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut wait = IdleWait::default();
    let mut drain_started: Option<Instant> = None;
    let mut was_idle = false;
    loop {
        let stopping = shared.stopping.load(Ordering::SeqCst);
        let mut progress = false;
        if !stopping {
            // accept sweep
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        accept_conn(shared, &mut conns, stream);
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    // transient accept failure (peer vanished between SYN
                    // and accept, fd exhaustion): retried next sweep
                    Err(_) => break,
                }
            }
            // idle reap
            if let Some(timeout) = shared.config.idle_timeout {
                if reap_idle(shared, &mut conns, timeout) {
                    progress = true;
                }
            }
        }
        // read sweep: pull bytes, parse frames, dispatch requests. This
        // keeps running while stopping — the drain guarantee covers every
        // request the server has *received*, and received bytes may still
        // be in the kernel buffer or mid-parse in `rbuf` when `stopping`
        // flips. Only a still-incomplete frame at the deadline is dropped.
        for conn in &mut conns {
            if pump_conn(shared, conn, &mut scratch) {
                progress = true;
            }
        }
        // flush sweep: outbox → pending → socket
        for conn in &mut conns {
            if flush_conn(shared, conn) {
                progress = true;
            }
        }
        // retire connections that are fully done
        let before = conns.len();
        conns.retain(|conn| {
            if retired(conn) {
                finish_conn(shared, conn);
                false
            } else {
                true
            }
        });
        if conns.len() != before {
            progress = true;
        }
        if stopping {
            let started = *drain_started.get_or_insert_with(Instant::now);
            let drained = shared.queued.load(Ordering::SeqCst) == 0
                && shared.in_flight.load(Ordering::SeqCst) == 0
                && conns.iter().all(|c| {
                    c.hard_dead
                        || (c.pending.is_empty() && lock(&c.shared.outbox).is_empty())
                });
            if drained
                || shared.hard_stop.load(Ordering::SeqCst)
                || started.elapsed() > DRAIN_DEADLINE
            {
                teardown(shared, &mut conns);
                shared.drained.store(true, Ordering::SeqCst);
                let _guard = lock(&shared.ready);
                shared.ready_cv.notify_all();
                return;
            }
        }
        if progress {
            if was_idle {
                shared.wakeups.fetch_add(1, Ordering::Relaxed);
            }
            was_idle = false;
            wait.progress();
        } else {
            was_idle = true;
            wait.wait(&shared.flush_signal, &shared.flush_cv);
        }
    }
}

fn accept_conn(shared: &Arc<Shared>, conns: &mut Vec<Conn>, stream: TcpStream) {
    if prepare_stream(&stream).is_err() {
        return;
    }
    let id = shared.served.fetch_add(1, Ordering::SeqCst) as u64;
    // without a registered clone, tooling could not kill this connection
    // out from under a stuck client — refuse it instead of serving it
    // untracked
    let Ok(clone) = stream.try_clone() else { return };
    lock(&shared.reg).insert(id, clone);
    shared.active.fetch_add(1, Ordering::SeqCst);
    let stmt_ns = shared.obs.histogram(&format!("net.conn.{id}.stmt_ns"));
    let conn_shared = Arc::new(ConnShared {
        id,
        work: Mutex::new(ConnWork {
            queue: VecDeque::new(),
            scheduled: false,
            closed: false,
            session: None,
            encoding: ENCODING_TEXT,
            stmt_ns,
        }),
        outbox: Mutex::new(Vec::new()),
    });
    conns.push(Conn {
        stream,
        rbuf: Vec::new(),
        pending: Vec::new(),
        shared: conn_shared,
        handshaken: false,
        read_open: true,
        hard_dead: false,
        last_activity: Instant::now(),
    });
}

/// One read sweep over one connection: pull ready bytes, parse, dispatch.
fn pump_conn(shared: &Arc<Shared>, conn: &mut Conn, scratch: &mut [u8]) -> bool {
    if !conn.read_open {
        return false;
    }
    // Backpressure: while this connection still has queued or in-flight
    // work, skip the read syscall. A request/response peer cannot have
    // sent more anyway, and a pipelined peer's bytes sit in the kernel
    // buffer until the mailbox drains — the next sweep picks them up.
    // This keeps the sweep cost proportional to *idle* connections
    // instead of all of them.
    {
        let w = lock(&conn.shared.work);
        if w.scheduled || !w.queue.is_empty() {
            return false;
        }
    }
    match sweep_read(&mut conn.stream, &mut conn.rbuf, scratch) {
        ReadSweep::Idle => false,
        ReadSweep::Progress => {
            conn.last_activity = Instant::now();
            parse_input(shared, conn);
            true
        }
        ReadSweep::Eof => {
            // half-close: the peer may still be reading; parse what
            // arrived before the EOF, finish queued work, flush, then
            // close (an open transaction aborts when the session drops)
            parse_input(shared, conn);
            conn.read_open = false;
            mark_input_closed(shared, conn, false);
            true
        }
        ReadSweep::Failed => {
            conn.read_open = false;
            conn.hard_dead = true;
            mark_input_closed(shared, conn, true);
            true
        }
    }
}

/// The read side of `conn` is finished. With `discard`, queued items are
/// dropped (the peer is gone and responses are undeliverable); without,
/// they drain normally. Either way the session is torn down exactly once
/// — here if the connection is unclaimed, else by the draining worker.
fn mark_input_closed(shared: &Shared, conn: &Conn, discard: bool) {
    let stale = {
        let mut w = lock(&conn.shared.work);
        w.closed = true;
        if discard {
            shared.queued.fetch_sub(w.queue.len(), Ordering::SeqCst);
            w.queue.clear();
        }
        if !w.scheduled && w.queue.is_empty() {
            w.session.take()
        } else {
            None
        }
    };
    // dropping the session aborts an open transaction; do it outside the
    // mailbox lock
    drop(stale);
}

/// Parse everything parseable out of `conn.rbuf`: the handshake preamble
/// first, then complete frames, dispatched in order.
fn parse_input(shared: &Arc<Shared>, conn: &mut Conn) {
    if !conn.handshaken {
        if conn.rbuf.len() < MAGIC.len() {
            return;
        }
        let ok = conn.rbuf[..MAGIC.len()] == MAGIC[..];
        conn.rbuf.drain(..MAGIC.len());
        if !ok {
            conn.read_open = false;
            enqueue_all(
                shared,
                conn,
                vec![WorkItem::Fatal(MadError::protocol(
                    "connection preamble mismatch: not a MAD protocol client",
                ))],
            );
            return;
        }
        conn.handshaken = true;
        // the hello precedes every response; write it straight into the
        // poller's buffer (the outbox is still empty)
        let hello = Response::Hello {
            protocol: PROTOCOL_VERSION,
            commit_seq: shared.handle.commit_seq(),
            durable: shared.handle.is_durable(),
            encodings: SUPPORTED_ENCODINGS,
        };
        let _ = write_frame(&mut conn.pending, &encode_response(&hello));
        lock(&conn.shared.work).session = Some(Session::shared(shared.handle.clone()));
    }
    let mut items = Vec::new();
    let mut fatal = false;
    while !fatal {
        match extract_frame(&mut conn.rbuf) {
            Ok(Some(payload)) => match decode_request(&payload) {
                Ok(req) => {
                    shared.received.fetch_add(1, Ordering::SeqCst);
                    items.push(WorkItem::Req(req));
                }
                Err(e) => {
                    items.push(WorkItem::Fatal(e));
                    fatal = true;
                }
            },
            Ok(None) => break,
            Err(e) => {
                items.push(WorkItem::Fatal(e));
                fatal = true;
            }
        }
    }
    if fatal {
        conn.read_open = false;
    }
    if items.is_empty() {
        return;
    }
    // inline fast path: exactly one statement arrived and the whole
    // server is otherwise idle — execute here, no worker handoff
    if items.len() == 1 && !fatal && can_inline(shared, conn) {
        if let Some(item) = items.pop() {
            run_inline(shared, conn, item);
        }
        return;
    }
    enqueue_all(shared, conn, items);
}

/// May the poller execute this connection's single new item inline? Only
/// when no worker is busy, nothing is queued anywhere, and the
/// connection itself is unclaimed — then the handoff would only add
/// latency. Under synchronous replication the fast path is off entirely:
/// a COMMIT then parks until a standby quorum acknowledges it, and a
/// parked poller reads and flushes nobody — including the very writer
/// whose next commit the quorum may be waiting on.
fn can_inline(shared: &Shared, conn: &Conn) -> bool {
    matches!(shared.handle.repl_ack(), ReplAck::Async)
        && shared.in_flight.load(Ordering::SeqCst) == 0
        && shared.queued.load(Ordering::SeqCst) == 0
        && lock(&shared.ready).is_empty()
        && {
            let w = lock(&conn.shared.work);
            !w.scheduled && w.queue.is_empty()
        }
}

/// Execute one item on the poller thread (the single-statement fast
/// path). Response bytes go through the outbox like everyone else's, so
/// ordering with any not-yet-flushed worker output is preserved.
fn run_inline(shared: &Shared, conn: &mut Conn, item: WorkItem) {
    let (mut session, mut encoding, stmt_ns) = {
        let mut w = lock(&conn.shared.work);
        (w.session.take(), w.encoding, Arc::clone(&w.stmt_ns))
    };
    let (frame, fatal) = run_item(shared, conn.shared.id, &stmt_ns, item, &mut session, &mut encoding);
    {
        let mut w = lock(&conn.shared.work);
        w.encoding = encoding;
        if fatal {
            w.closed = true;
        } else {
            w.session = session.take();
        }
    }
    if fatal {
        drop(session);
        conn.read_open = false;
    }
    lock(&conn.shared.outbox).extend_from_slice(&frame);
    shared.requests.fetch_add(1, Ordering::SeqCst);
}

/// Append `items` to the connection's mailbox and claim it for the
/// worker pool if it is unclaimed.
fn enqueue_all(shared: &Shared, conn: &Conn, items: Vec<WorkItem>) {
    let n = items.len();
    let claim = {
        let mut w = lock(&conn.shared.work);
        w.queue.extend(items);
        shared.queued.fetch_add(n, Ordering::SeqCst);
        if w.scheduled {
            false
        } else {
            w.scheduled = true;
            true
        }
    };
    if claim {
        lock(&shared.ready).push_back(Arc::clone(&conn.shared));
        shared.ready_cv.notify_one();
    }
}

/// One flush sweep over one connection: drain the outbox into the write
/// buffer, then write what the socket accepts.
fn flush_conn(shared: &Shared, conn: &mut Conn) -> bool {
    {
        let mut outbox = lock(&conn.shared.outbox);
        if !outbox.is_empty() {
            conn.pending.append(&mut outbox);
        }
    }
    if conn.pending.is_empty() || conn.hard_dead {
        return false;
    }
    let before = conn.pending.len();
    match sweep_write(&mut conn.stream, &mut conn.pending) {
        WriteSweep::Drained | WriteSweep::Pending => before != conn.pending.len(),
        WriteSweep::Failed => {
            conn.read_open = false;
            conn.hard_dead = true;
            mark_input_closed(shared, conn, true);
            true
        }
    }
}

/// Reap connections idle past the timeout with no in-flight work. The
/// reap notice is enqueued as a fatal item so it lands *after* any
/// responses still owed, and the session teardown runs through the same
/// exactly-once drop path as a disconnect.
fn reap_idle(shared: &Shared, conns: &mut [Conn], timeout: Duration) -> bool {
    let mut progress = false;
    for conn in conns.iter_mut() {
        if !conn.read_open || conn.last_activity.elapsed() < timeout {
            continue;
        }
        let quiet = {
            let w = lock(&conn.shared.work);
            w.queue.is_empty() && !w.scheduled
        };
        if !quiet {
            // mid-statement or mid-pipeline: not idle, restart the clock
            conn.last_activity = Instant::now();
            continue;
        }
        conn.read_open = false;
        shared.reaped.fetch_add(1, Ordering::SeqCst);
        enqueue_all(
            shared,
            conn,
            vec![WorkItem::Fatal(MadError::io(
                "connection reaped after idling past the server's timeout",
            ))],
        );
        progress = true;
    }
    progress
}

/// Is this connection completely finished — input closed, mailbox empty
/// and unclaimed, session torn down, output flushed (or unflushable)?
fn retired(conn: &Conn) -> bool {
    let done = {
        let w = lock(&conn.shared.work);
        w.closed && !w.scheduled && w.queue.is_empty() && w.session.is_none()
    };
    done && (conn.hard_dead || (conn.pending.is_empty() && lock(&conn.shared.outbox).is_empty()))
}

/// Deregister a retired connection: socket, kill-handle, per-connection
/// metrics.
fn finish_conn(shared: &Shared, conn: &Conn) {
    let _ = conn.stream.shutdown(Shutdown::Both);
    lock(&shared.reg).remove(&conn.shared.id);
    // the connection's metrics leave the registry with it; the global
    // `net.stmt_ns` histogram keeps the totals
    shared.obs.remove_prefix(&format!("net.conn.{}.", conn.shared.id));
    shared.active.fetch_sub(1, Ordering::SeqCst);
}

/// Force-close every remaining connection at the end of the drain.
fn teardown(shared: &Shared, conns: &mut Vec<Conn>) {
    for conn in conns.drain(..) {
        mark_input_closed(shared, &conn, true);
        finish_conn(shared, &conn);
    }
}

// ---------------------------------------------------------------------
// statement execution (worker pool + inline path)
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let claimed = {
            let mut ready = lock(&shared.ready);
            loop {
                if let Some(conn) = ready.pop_front() {
                    break Some(conn);
                }
                if shared.drained.load(Ordering::SeqCst) {
                    break None;
                }
                ready = shared
                    .ready_cv
                    .wait(ready)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let Some(conn) = claimed else { return };
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        drain_conn(shared, &conn);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What a worker found when it asked a claimed mailbox for work.
enum NextItem {
    /// An item to execute, with the session and encoding taken out.
    Run(WorkItem, Option<Session>, u8, Arc<Histogram>),
    /// Mailbox empty: the claim was released. If the connection is
    /// closed, the session comes out here for its exactly-once drop.
    Done(Option<Session>),
}

/// Drain one claimed connection's mailbox: execute items in order,
/// appending each response frame to the outbox, until the mailbox is
/// empty. Several queued statements execute per claim, so the handoff
/// cost amortizes across a pipelined burst.
fn drain_conn(shared: &Shared, conn: &ConnShared) {
    loop {
        let next = {
            let mut w = lock(&conn.work);
            match w.queue.pop_front() {
                Some(item) => {
                    NextItem::Run(item, w.session.take(), w.encoding, Arc::clone(&w.stmt_ns))
                }
                None => {
                    w.scheduled = false;
                    NextItem::Done(if w.closed { w.session.take() } else { None })
                }
            }
        };
        let (item, mut session, mut encoding, stmt_ns) = match next {
            NextItem::Done(stale) => {
                // aborts an open transaction, outside the mailbox lock
                drop(stale);
                return;
            }
            NextItem::Run(item, session, encoding, stmt_ns) => (item, session, encoding, stmt_ns),
        };
        shared.queued.fetch_sub(1, Ordering::SeqCst);
        let (frame, fatal) =
            run_item(shared, conn.id, &stmt_ns, item, &mut session, &mut encoding);
        {
            let mut w = lock(&conn.work);
            w.encoding = encoding;
            if fatal {
                w.closed = true;
                shared.queued.fetch_sub(w.queue.len(), Ordering::SeqCst);
                w.queue.clear();
            } else {
                w.session = session.take();
            }
        }
        // a fatal item's session (if any) drops here: exactly-once abort
        drop(session);
        lock(&conn.outbox).extend_from_slice(&frame);
        shared.requests.fetch_add(1, Ordering::SeqCst);
        // wake the poller so the response flushes promptly
        *lock(&shared.flush_signal) = true;
        shared.flush_cv.notify_one();
    }
}

/// Execute one work item and encode its response frame. Returns the
/// frame bytes and whether the item was fatal (the connection closes
/// after the response flushes).
fn run_item(
    shared: &Shared,
    conn_id: u64,
    stmt_ns: &Histogram,
    item: WorkItem,
    session: &mut Option<Session>,
    encoding: &mut u8,
) -> (Vec<u8>, bool) {
    let (resp, fatal) = match item {
        WorkItem::Fatal(e) => (Response::Error(e), true),
        WorkItem::Req(Request::Ping) => (Response::Pong, false),
        WorkItem::Req(Request::SetEncoding(enc)) => {
            if enc == ENCODING_TEXT || enc == ENCODING_BINARY {
                *encoding = enc;
                (Response::EncodingAck(enc), false)
            } else {
                (
                    Response::Error(MadError::protocol(format!(
                        "unsupported result encoding {enc} (hello advertised {SUPPORTED_ENCODINGS:#04b})"
                    ))),
                    false,
                )
            }
        }
        WorkItem::Req(Request::Statement(text)) => match session.as_mut() {
            Some(session) => (
                execute_statement(shared, conn_id, stmt_ns, session, &text, *encoding),
                false,
            ),
            // unreachable in practice: statements are only enqueued after
            // the handshake created the session, and a closed connection
            // stops enqueuing — but never panic on a protocol path
            None => (
                Response::Error(MadError::io("connection session already closed")),
                true,
            ),
        },
    };
    let mut frame = Vec::new();
    if let Err(e) = write_frame(&mut frame, &encode_response(&resp)) {
        // the response itself could not be framed (a > 64 MiB rendered
        // result): answer with the error instead of dying silently
        frame.clear();
        let _ = write_frame(&mut frame, &encode_response(&Response::Error(e)));
    }
    (frame, fatal)
}

/// Execute one MQL statement in the connection's session, in the
/// negotiated result encoding, recording latency (and the slow-query
/// trace when armed).
fn execute_statement(
    shared: &Shared,
    conn_id: u64,
    stmt_ns: &Histogram,
    session: &mut Session,
    text: &str,
    encoding: u8,
) -> Response {
    // Stage tracing is armed only when the slow-query log wants the
    // breakdown; the latency histograms need just the total, so the
    // default path stays two clock reads. EXPLAIN ANALYZE arms its own
    // trace inside the session either way.
    let traced = shared.slow.threshold().is_some();
    let (resp, total_ns) = if encoding == ENCODING_BINARY {
        if traced {
            let (result, trace) = session.execute_bin_traced(text);
            shared.slow.offer(conn_id, &trace);
            (bin_response(result), trace.total_ns)
        } else {
            let started = Instant::now();
            let result = session.execute_bin(text);
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            (bin_response(result), ns)
        }
    } else if traced {
        let (result, trace) = session.execute_rendered_traced(text);
        shared.slow.offer(conn_id, &trace);
        (text_response(result), trace.total_ns)
    } else {
        let started = Instant::now();
        let result = session.execute_rendered(text);
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        (text_response(result), ns)
    };
    shared.stmt_ns.record(total_ns);
    stmt_ns.record(total_ns);
    resp
}

fn text_response(result: Result<String>) -> Response {
    match result {
        Ok(rendered) => Response::Result(rendered),
        Err(e) => Response::Error(e),
    }
}

fn bin_response(result: Result<mad_model::bin::BinResult>) -> Response {
    match result {
        Ok(bin) => {
            let mut bytes = Vec::new();
            bin.encode(&mut bytes);
            Response::BinResult(bytes)
        }
        Err(e) => Response::Error(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use mad_model::{AttrType, SchemaBuilder, Value};
    use mad_storage::Database;

    fn geo_handle() -> DbHandle {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text), ("pop", AttrType::Int)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        db.insert_atom(state, vec![Value::from("SP"), Value::from(10)])
            .unwrap();
        DbHandle::new(db)
    }

    #[test]
    fn serve_execute_shutdown_roundtrip() {
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.server_info().protocol, PROTOCOL_VERSION);
        assert!(!client.server_info().durable);
        assert_eq!(client.server_info().encodings, SUPPORTED_ENCODINGS);
        client.ping().unwrap();
        let text = client
            .execute("INSERT ATOM state (sname = 'MG', pop = 9)")
            .unwrap();
        assert!(text.starts_with("inserted atom"), "got: {text}");
        let text = client
            .execute("SELECT ALL FROM state WHERE state.sname = 'MG'")
            .unwrap();
        assert!(text.contains("1 molecule(s)"), "got: {text}");
        // statement errors come back typed, not as closed connections
        let err = client.execute("SELECT ALL FROM ghost").unwrap_err();
        assert!(matches!(err, MadError::UnknownName { .. }), "got {err:?}");
        // the session survives the error
        client.ping().unwrap();
        drop(client);
        server.shutdown();
    }

    #[test]
    fn malformed_preamble_gets_a_protocol_error() {
        use std::io::{BufReader, Write};
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"GET / HT").unwrap(); // an HTTP client, say
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let reply = crate::frame::read_frame(&mut reader).unwrap();
        let crate::frame::FrameIn::Payload(payload) = reply else {
            panic!("expected an error frame before close");
        };
        let resp = crate::frame::decode_response(&payload).unwrap();
        let Response::Error(e) = resp else {
            panic!("expected an error response, got {resp:?}")
        };
        assert!(matches!(e, MadError::Protocol { .. }), "got {e:?}");
        // ...and the connection is then closed
        assert!(matches!(
            crate::frame::read_frame(&mut reader),
            Ok(crate::frame::FrameIn::Closed)
        ));
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_and_their_transactions_aborted() {
        let server = Server::serve_with(
            geo_handle(),
            "127.0.0.1:0",
            ServerConfig {
                idle_timeout: Some(Duration::from_millis(100)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        client.execute("BEGIN").unwrap();
        client
            .execute("INSERT ATOM state (sname = 'RJ', pop = 6)")
            .unwrap();
        // ...and then the client goes silent (half-open in spirit)
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.active_connections() > 0 {
            assert!(std::time::Instant::now() < deadline, "connection never reaped");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.connections_reaped(), 1);
        // the open transaction died with its session: nothing committed,
        // and no registration pins the commit log
        assert_eq!(server.handle().committed().total_atoms(), 1);
        assert_eq!(server.handle().commit_log_len(), 0);
        // an active client is NOT reaped while it keeps talking (the
        // cadence sits well inside the timeout: a loaded box overshoots
        // sleeps, and the margin absorbs that)
        let mut live = Client::connect(addr).unwrap();
        for _ in 0..10 {
            std::thread::sleep(Duration::from_millis(20));
            live.ping().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn client_read_deadline_classifies_a_stalled_server() {
        use crate::{is_timeout_error, ClientConfig};
        // a listener that accepts and then never says anything
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(2));
            drop(stream);
        });
        let err = Client::connect_with(
            addr,
            ClientConfig {
                read_timeout: Some(Duration::from_millis(100)),
                write_timeout: Some(Duration::from_millis(100)),
            },
        )
        .unwrap_err();
        assert!(is_timeout_error(&err), "got {err:?}");
        sink.join().unwrap();
    }

    #[test]
    fn conflict_retry_and_reconnect_policies() {
        use crate::RetryPolicy;
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let policy = RetryPolicy::default();

        // retry helper: a conflict-free statement goes through unchanged
        let mut client = Client::connect(addr).unwrap();
        let text = client
            .execute_retry("SELECT ALL FROM state", &policy)
            .unwrap();
        assert!(text.contains("molecule"), "got: {text}");
        // a non-conflict error is NOT retried (fails fast, same error)
        let err = client
            .execute_retry("SELECT ALL FROM ghost", &policy)
            .unwrap_err();
        assert!(matches!(err, MadError::UnknownName { .. }), "got {err:?}");

        // reconnect: kill the connection server-side, then recover
        for (_, conn) in lock(&server.shared.reg).iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        assert!(client.ping().is_err(), "connection should be dead");
        client.reconnect_retry(&policy).unwrap();
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn slow_query_log_records_traced_statements_over_the_wire() {
        // threshold 0: every statement is "slow", so the log fills
        let server = Server::serve_with(
            geo_handle(),
            "127.0.0.1:0",
            ServerConfig {
                slow_query: Some(Duration::ZERO),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client
            .execute("INSERT ATOM state (sname = 'MG', pop = 9)")
            .unwrap();
        client.execute("SELECT ALL FROM state").unwrap();
        client.ping().unwrap(); // pings are not statements: never logged
        let entries = server.slow_queries();
        assert_eq!(entries.len(), 2, "got: {}", server.render_slow_queries());
        // the entries carry real traces: text, total, non-zero stages
        let select = &entries[1];
        assert_eq!(select.conn, entries[0].conn);
        assert_eq!(select.trace.text, "SELECT ALL FROM state");
        assert!(select.trace.total_ns > 0);
        for kind in [
            mad_obs::StageKind::Lex,
            mad_obs::StageKind::Parse,
            mad_obs::StageKind::Derive,
        ] {
            assert_eq!(select.trace.stage_count(kind), 1, "{kind:?} missing");
            assert!(select.trace.stage_ns(kind) > 0, "{kind:?} timed at zero");
        }
        // the autocommit INSERT validated and appended through mad_txn
        assert_eq!(entries[0].trace.stage_count(mad_obs::StageKind::Validate), 1);
        // the ring buffer caps: overflow evicts the oldest entries
        for i in 0..(SLOW_LOG_CAP + 4) {
            client
                .execute(&format!("SELECT ALL FROM state WHERE state.pop = {i}"))
                .unwrap();
        }
        let entries = server.slow_queries();
        assert_eq!(entries.len(), SLOW_LOG_CAP);
        assert!(
            entries[0].trace.text.contains("state.pop"),
            "oldest entries were evicted: {}",
            entries[0].trace.text
        );
        // rendering shows one line per retained statement
        let rendered = server.render_slow_queries();
        assert_eq!(rendered.lines().count(), SLOW_LOG_CAP);
        server.shutdown();
    }

    #[test]
    fn show_stats_and_explain_analyze_served_over_the_wire() {
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.execute("SELECT ALL FROM state").unwrap();
        // the server's registry is the handle's: net.* and mql.* both show
        let text = client.execute("SHOW STATS net").unwrap();
        assert!(text.contains("net.stmt_ns"), "got: {text}");
        assert!(text.contains("net.active"), "got: {text}");
        assert!(text.contains("net.pipeline.queued"), "got: {text}");
        let text = client.execute("SHOW STATS mql").unwrap();
        assert!(text.contains("mql.statements"), "got: {text}");
        // per-connection histograms appear while the connection lives…
        let text = client.execute("SHOW STATS").unwrap();
        assert!(text.contains("net.conn.0.stmt_ns"), "got: {text}");
        // …and EXPLAIN ANALYZE renders stage timings to the client
        let text = client
            .execute("EXPLAIN ANALYZE SELECT ALL FROM state WHERE state.pop = 10")
            .unwrap();
        assert!(text.contains("derive"), "got: {text}");
        assert!(text.contains("1 molecule(s)"), "got: {text}");
        // machine-readable stats parse as JSON on the client side
        let text = client.execute("SHOW STATS net AS JSON").unwrap();
        let json = mad_model::json::Json::parse(&text).unwrap();
        let count = json.get("net.stmt_ns").unwrap().get("count").unwrap();
        assert!(matches!(count, mad_model::json::Json::Int(n) if *n >= 5), "got: {count:?}");
        drop(client);
        server.shutdown();
    }

    #[test]
    fn connection_metrics_are_scoped_to_the_connection_lifetime() {
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.execute("SELECT ALL FROM state").unwrap();
        let snap = server.obs().snapshot(Some("net.conn"));
        assert!(!snap.is_empty(), "live connection registers its histogram");
        drop(client);
        // wait for the poller to retire the connection and unregister
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.active_connections() > 0 || !server.obs().snapshot(Some("net.conn")).is_empty()
        {
            assert!(
                std::time::Instant::now() < deadline,
                "per-connection metrics outlived the connection"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    }

    /// A commit parked in a replication-quorum wait must not stall the
    /// rest of the server. Regression test for a distributed deadlock:
    /// the poller inlined a sync-quorum COMMIT and froze every sweep —
    /// no other connection could even be read — while the quorum it was
    /// waiting on needed further traffic to converge. The commit must
    /// park on a *worker*, with the poller and the remaining workers
    /// still serving everyone else.
    #[test]
    fn a_parked_quorum_commit_does_not_stall_other_connections() {
        let handle = geo_handle();
        // one standby required, none attached: every commit parks until
        // the mode is loosened back to Async
        handle.set_repl_ack(ReplAck::SyncQuorum(1));
        let server = Server::serve(handle.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let committed = Arc::new(AtomicBool::new(false));
        let writer = {
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let out = client.execute("INSERT ATOM state (sname = 'RS', pop = 11)");
                committed.store(true, Ordering::SeqCst);
                out
            })
        };
        // wait until the INSERT reached the server (received, not yet
        // answered), then give it a beat to reach the quorum park
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.requests_received() == 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(50));
        // an independent connection must connect and answer while the
        // writer is parked (the Client's read deadline turns a frozen
        // server into a test failure, not a hang)
        let mut reader = Client::connect(addr).unwrap();
        let text = reader.execute("SELECT ALL FROM state").unwrap();
        assert!(text.contains("molecule(s)"), "got: {text}");
        assert!(
            !committed.load(Ordering::SeqCst),
            "the quorum wait should still be parked"
        );
        // loosening the mode releases the parked waiter
        handle.set_repl_ack(ReplAck::Async);
        let ack = writer.join().unwrap().unwrap();
        assert!(ack.starts_with("inserted atom"), "got: {ack}");
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_parked_clients() {
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();
        assert_eq!(server.active_connections(), 1);
        server.shutdown(); // must not hang on the idle connection
        // the client now observes a dead connection as an I/O error
        let err = client.execute("SELECT ALL FROM state").unwrap_err();
        assert!(
            matches!(err, MadError::Io { .. } | MadError::Protocol { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn pipelined_statements_answer_in_order() {
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        // a write burst first, then the responses — the server executes
        // in order on one session, so later SELECTs see earlier INSERTs
        let stmts: Vec<String> = (0..8)
            .map(|i| format!("INSERT ATOM state (sname = 'S{i}', pop = {i})"))
            .collect();
        let mut all: Vec<&str> = stmts.iter().map(String::as_str).collect();
        all.push("SELECT ALL FROM state");
        let results = client.execute_pipelined(&all).unwrap();
        assert_eq!(results.len(), 9);
        for r in &results[..8] {
            assert!(r.as_ref().unwrap().starts_with("inserted atom"));
        }
        let select = results[8].as_ref().unwrap();
        assert!(select.contains("9 molecule(s)"), "got: {select}");
        // a transaction spanning pipelined round-trips commits atomically
        let results = client
            .execute_pipelined(&[
                "BEGIN",
                "INSERT ATOM state (sname = 'TX', pop = 1)",
                "COMMIT",
            ])
            .unwrap();
        assert!(results.iter().all(Result::is_ok), "got: {results:?}");
        assert_eq!(server.handle().committed().total_atoms(), 10);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_statements_before_joining_workers() {
        // single worker: a burst is guaranteed to sit queued while the
        // first statements execute, so shutdown races a non-empty mailbox
        let server = Server::serve_with(
            geo_handle(),
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        const N: usize = 64;
        for i in 0..N {
            client
                .send_statement(&format!("INSERT ATOM state (sname = 'D{i}', pop = {i})"))
                .unwrap();
        }
        // wait until the server has parsed the whole burst — from then on
        // the drain guarantee owes a response for every statement — then
        // shut down while it is (at best partially) executed
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.requests_received() < N {
            assert!(
                std::time::Instant::now() < deadline,
                "burst never fully parsed: {} of {N}",
                server.requests_received()
            );
            std::thread::yield_now();
        }
        let stopper = std::thread::spawn(move || server.shutdown());
        // every queued statement must still be answered, in order, and
        // only then may the connection close
        for _ in 0..N {
            let text = client.recv_result().unwrap();
            assert!(text.starts_with("inserted atom"), "got: {text}");
        }
        // a ping sent now may still sneak into the teardown window and be
        // answered (reads keep draining while stopping); the connection
        // must close shortly regardless
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let err = loop {
            match client.ping() {
                Err(e) => break e,
                Ok(()) => assert!(
                    std::time::Instant::now() < deadline,
                    "connection never closed after the drain"
                ),
            }
        };
        assert!(matches!(err, MadError::Io { .. }), "got {err:?}");
        stopper.join().unwrap();
    }

    #[test]
    fn binary_encoding_negotiates_and_round_trips() {
        use mad_model::bin::BinResult;
        let server = Server::serve(geo_handle(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.server_info().encodings & (1 << ENCODING_BINARY), 2);
        client.set_encoding(ENCODING_BINARY).unwrap();
        // molecule sets now travel structurally…
        let result = client.execute_bin("SELECT ALL FROM state").unwrap();
        let BinResult::Molecules(bm) = &result else {
            panic!("expected a structural result, got {result:?}");
        };
        assert_eq!(bm.molecules.len(), 1);
        assert_eq!(bm.nodes[0].atom_type, "state");
        assert_eq!(bm.molecules[0][0].tuple[0], Value::from("SP"));
        // …and the text renderer on the client side still shows them
        let text = client.execute("SELECT ALL FROM state").unwrap();
        assert!(text.contains("(binary)"), "got: {text}");
        // non-molecule results arrive as pre-rendered text payloads
        let result = client
            .execute_bin("INSERT ATOM state (sname = 'BN', pop = 2)")
            .unwrap();
        assert!(matches!(result, BinResult::Text(t) if t.starts_with("inserted atom")));
        // errors stay structural regardless of encoding
        let err = client.execute("SELECT ALL FROM ghost").unwrap_err();
        assert!(matches!(err, MadError::UnknownName { .. }), "got {err:?}");
        // switching back restores rendered text results
        client.set_encoding(ENCODING_TEXT).unwrap();
        let text = client.execute("SELECT ALL FROM state").unwrap();
        assert!(text.contains("structure:"), "got: {text}");
        // an unknown encoding is refused in-band, connection intact
        let err = client.set_encoding(9).unwrap_err();
        assert!(matches!(err, MadError::Protocol { .. }), "got {err:?}");
        client.ping().unwrap();
        server.shutdown();
    }
}
