//! The wire format: framing, message payloads, error transport.
//!
//! This module is the **normative spec** of what crosses a connection
//! (see `ARCHITECTURE.md` for the prose version):
//!
//! ```text
//! connection := client-magic server-hello (request response)*
//! client-magic := "MADNET1\n"                       (8 bytes, client → server)
//! frame  := len:u32le crc:u32le payload[len]        (crc = CRC-32/IEEE of payload)
//! request  := 0x00 statement:str                    (one MQL statement)
//!           | 0x01                                  (ping)
//!           | 0x02 encoding:u8                      (set result encoding: 0 text, 1 binary)
//! response := 0x00 rendered:str                     (statement result text)
//!           | 0x01 error                            (statement/protocol error)
//!           | 0x02                                  (pong)
//!           | 0x03 proto:u32le seq:u64le durable:u8 encodings:u8
//!                                                   (server hello; encodings is a bitmask:
//!                                                    bit 0 text, bit 1 binary)
//!           | 0x04 bytes:blob                       (statement result, binary encoding —
//!                                                    a `mad_model::bin::BinResult` payload)
//!           | 0x05 encoding:u8                      (ack of a SetEncoding request)
//! str    := len:u32le utf8[len]
//! blob   := len:u32le bytes[len]
//! error  := tag:u8 fields…                          (structural MadError encoding)
//! ```
//!
//! Requests may be **pipelined**: a client can write any number of request
//! frames without waiting for responses, and the server answers each one
//! with exactly one response frame, in request order. A `BEGIN … COMMIT`
//! span may extend across pipelined frames; a disconnect with a
//! transaction open aborts it.
//!
//! The framing discipline mirrors the `mad_wal` log (`len` + CRC + payload)
//! and is hardened the same way: a declared length beyond
//! [`MAX_FRAME_LEN`] is rejected **before** any allocation, a short read is
//! a protocol error rather than an unbounded block on garbage, and a
//! checksum or decode failure classifies the frame as malformed — the
//! connection is closed with [`MadError::Protocol`], the shared handle is
//! never touched.

use mad_model::bin::{
    len_u32, put_blob, put_str, put_u32, put_u64, u64_of_usize, usize_of_u32, usize_of_u64, Reader,
};
use mad_model::{MadError, Result};
use mad_wal::crc32;
use std::io::{Read, Write};

/// The 8-byte connection preamble a client must send first ("MADNET" +
/// protocol generation 1 + newline).
pub const MAGIC: &[u8; 8] = b"MADNET1\n";

/// Protocol version carried in the server hello; bumped on any
/// incompatible change to the frame or payload format. Version 2 added
/// pipelining, the result-encoding negotiation
/// ([`Request::SetEncoding`] / [`Response::EncodingAck`]) and the binary
/// result payload ([`Response::BinResult`]).
pub const PROTOCOL_VERSION: u32 = 2;

/// Result-encoding selector: rendered text (the default).
pub const ENCODING_TEXT: u8 = 0;

/// Result-encoding selector: structural binary
/// (`mad_model::bin::BinResult` payloads in [`Response::BinResult`]).
pub const ENCODING_BINARY: u8 = 1;

/// Bitmask of encodings this server supports, advertised in the hello
/// (bit 0 = text, bit 1 = binary).
pub const SUPPORTED_ENCODINGS: u8 = 0b11;

/// Size of a frame header (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// Hard upper bound on a frame payload (64 MiB). A peer declaring more is
/// lying or broken; honoring the length field would let one malformed
/// header allocate attacker-controlled memory.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Map a socket-level failure into a [`MadError::Io`], classifying an
/// expired read/write deadline ([`std::io::ErrorKind::TimedOut`] /
/// [`std::io::ErrorKind::WouldBlock`], which is what a socket with
/// `set_read_timeout` raises on Unix) with a stable "timed out" marker
/// that [`is_timeout_error`] recognizes.
pub fn io_error(context: &str, e: &std::io::Error) -> MadError {
    if matches!(
        e.kind(),
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    ) {
        MadError::io(format!("{context}: timed out waiting for the peer"))
    } else {
        MadError::io(format!("{context}: {e}"))
    }
}

/// Did this transport error stem from a socket deadline expiring (as
/// classified by [`io_error`])? Servers use it to tell an idle/half-open
/// connection from a genuinely broken one; clients to decide a retry is
/// worth it.
pub fn is_timeout_error(e: &MadError) -> bool {
    matches!(e, MadError::Io { detail } if detail.contains("timed out waiting for the peer"))
}

/// One client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Execute one MQL statement in the connection's session.
    Statement(String),
    /// Liveness probe; the server answers [`Response::Pong`].
    Ping,
    /// Switch the connection's result encoding ([`ENCODING_TEXT`] or
    /// [`ENCODING_BINARY`]); the server answers
    /// [`Response::EncodingAck`]. Takes effect for statements *after*
    /// this request in the pipeline.
    SetEncoding(u8),
}

/// One server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The statement succeeded; the rendered result text.
    Result(String),
    /// The statement (or the frame carrying it) failed. The error is
    /// transported structurally, so variant-level client logic —
    /// `is_conflict()` retry loops above all — behaves exactly as it
    /// would in-process.
    Error(MadError),
    /// Answer to [`Request::Ping`].
    Pong,
    /// First frame of every connection, server → client.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Commit sequence of the served handle at connect time.
        commit_seq: u64,
        /// Does the served handle write-ahead-log its commits?
        durable: bool,
        /// Bitmask of result encodings the server supports (bit 0 text,
        /// bit 1 binary); see [`SUPPORTED_ENCODINGS`].
        encodings: u8,
    },
    /// The statement succeeded; the result in the binary encoding — an
    /// encoded `mad_model::bin::BinResult`. Sent only after the client
    /// selected [`ENCODING_BINARY`].
    BinResult(Vec<u8>),
    /// Answer to [`Request::SetEncoding`], echoing the encoding now in
    /// effect.
    EncodingAck(u8),
}

// ---------------------------------------------------------------------
// frame I/O
// ---------------------------------------------------------------------

/// Outcome of reading one frame from a connection.
pub enum FrameIn {
    /// A complete, checksum-verified payload.
    Payload(Vec<u8>),
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Closed,
}

/// Write `payload` as one frame. Errors with [`MadError::Protocol`] if the
/// payload exceeds [`MAX_FRAME_LEN`] (nothing is written then) and
/// [`MadError::Io`] on socket failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(MadError::protocol(format!(
            "frame payload of {} bytes exceeds the {} byte limit",
            payload.len(),
            MAX_FRAME_LEN
        )));
    }
    let mut header = [0u8; FRAME_HEADER];
    // the MAX_FRAME_LEN guard above keeps the length well inside u32
    header[0..4].copy_from_slice(&len_u32(payload.len()).to_le_bytes());
    header[4..8].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| io_error("write frame", &e))
}

/// Read one frame. EOF **at a frame boundary** is a clean close
/// ([`FrameIn::Closed`]); EOF anywhere inside a frame is a truncated frame
/// and therefore [`MadError::Protocol`]. A declared length beyond
/// [`MAX_FRAME_LEN`] is rejected before any allocation; a checksum
/// mismatch is a protocol error.
pub fn read_frame(r: &mut impl Read) -> Result<FrameIn> {
    let mut header = [0u8; FRAME_HEADER];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(FrameIn::Closed),
        ReadOutcome::Full => {}
    }
    let len = usize_of_u32(u32::from_le_bytes(header[0..4].try_into().unwrap()));
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(MadError::protocol(format!(
            "peer declared a {len} byte frame (limit {MAX_FRAME_LEN}); refusing to allocate"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            MadError::protocol(format!(
                "truncated frame: peer closed inside a {len} byte payload"
            ))
        } else {
            io_error("read frame payload", &e)
        }
    })?;
    if crc32(&payload) != crc {
        return Err(MadError::protocol("frame checksum mismatch"));
    }
    Ok(FrameIn::Payload(payload))
}

/// Try to extract one complete frame from the front of `buf` — the
/// accumulation buffer of a readiness-driven reader, which sees bytes in
/// whatever chunks the socket delivers (partial frames, several coalesced
/// frames, or a frame split across sweeps). Returns `Ok(None)` while the
/// buffer holds only a partial frame; on success the frame's bytes are
/// consumed from `buf` and the verified payload is returned. The same
/// hardening as [`read_frame`] applies: an oversized declared length is
/// rejected before any allocation, a checksum mismatch is a
/// [`MadError::Protocol`].
pub fn extract_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>> {
    if buf.len() < FRAME_HEADER {
        return Ok(None);
    }
    let mut header = Reader::new(&buf[..FRAME_HEADER]);
    let len = usize_of_u32(header.u32().map_err(bad_payload)?);
    let crc = header.u32().map_err(bad_payload)?;
    if len > MAX_FRAME_LEN {
        return Err(MadError::protocol(format!(
            "peer declared a {len} byte frame (limit {MAX_FRAME_LEN}); refusing to allocate"
        )));
    }
    let Some(body) = buf.get(FRAME_HEADER..FRAME_HEADER + len) else {
        return Ok(None);
    };
    if crc32(body) != crc {
        return Err(MadError::protocol("frame checksum mismatch"));
    }
    let payload = body.to_vec();
    buf.drain(..FRAME_HEADER + len);
    Ok(Some(payload))
}

enum ReadOutcome {
    Full,
    Eof,
}

/// `read_exact`, except a clean EOF before the **first** byte is reported
/// as [`ReadOutcome::Eof`] instead of an error (EOF after at least one
/// byte is a truncation and errors as [`MadError::Protocol`]).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(MadError::protocol(format!(
                    "truncated frame: peer closed after {filled} of {} header bytes",
                    buf.len()
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_error("read frame header", &e)),
        }
    }
    Ok(ReadOutcome::Full)
}

// ---------------------------------------------------------------------
// payload codec
// ---------------------------------------------------------------------

/// Encode a request payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Statement(text) => {
            out.push(0);
            put_str(&mut out, text);
        }
        Request::Ping => out.push(1),
        Request::SetEncoding(enc) => {
            out.push(2);
            out.push(*enc);
        }
    }
    out
}

/// Decode a request payload. Never panics; any malformed input — unknown
/// tag, truncation, trailing garbage — is a [`MadError::Protocol`].
pub fn decode_request(payload: &[u8]) -> Result<Request> {
    let mut r = Reader::new(payload);
    let req = match r.u8().map_err(bad_payload)? {
        0 => Request::Statement(r.str().map_err(bad_payload)?),
        1 => Request::Ping,
        2 => Request::SetEncoding(r.u8().map_err(bad_payload)?),
        t => return Err(MadError::protocol(format!("unknown request tag {t}"))),
    };
    r.expect_end().map_err(bad_payload)?;
    Ok(req)
}

/// Encode a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Result(text) => {
            out.push(0);
            put_str(&mut out, text);
        }
        Response::Error(e) => {
            out.push(1);
            put_error(&mut out, e);
        }
        Response::Pong => out.push(2),
        Response::Hello {
            protocol,
            commit_seq,
            durable,
            encodings,
        } => {
            out.push(3);
            put_u32(&mut out, *protocol);
            put_u64(&mut out, *commit_seq);
            out.push(u8::from(*durable));
            out.push(*encodings);
        }
        Response::BinResult(bytes) => {
            out.push(4);
            put_blob(&mut out, bytes);
        }
        Response::EncodingAck(enc) => {
            out.push(5);
            out.push(*enc);
        }
    }
    out
}

/// Decode a response payload. Never panics; malformed input is a
/// [`MadError::Protocol`].
pub fn decode_response(payload: &[u8]) -> Result<Response> {
    let mut r = Reader::new(payload);
    let resp = match r.u8().map_err(bad_payload)? {
        0 => Response::Result(r.str().map_err(bad_payload)?),
        1 => Response::Error(read_error(&mut r, 0)?),
        2 => Response::Pong,
        3 => Response::Hello {
            protocol: r.u32().map_err(bad_payload)?,
            commit_seq: r.u64().map_err(bad_payload)?,
            durable: r.u8().map_err(bad_payload)? != 0,
            encodings: r.u8().map_err(bad_payload)?,
        },
        4 => Response::BinResult(r.blob().map_err(bad_payload)?),
        5 => Response::EncodingAck(r.u8().map_err(bad_payload)?),
        t => return Err(MadError::protocol(format!("unknown response tag {t}"))),
    };
    r.expect_end().map_err(bad_payload)?;
    Ok(resp)
}

fn bad_payload(e: MadError) -> MadError {
    MadError::protocol(format!("malformed payload: {e}"))
}

// ---------------------------------------------------------------------
// error transport
// ---------------------------------------------------------------------
//
// Errors cross the wire structurally (one tag per `MadError` variant plus
// the variant's fields), so the client reconstructs the *same* variant the
// server raised: `is_conflict()` keeps driving retry loops, `TxnState`
// still reads as a transaction-state problem, and so on. The only
// lossy corner: the `&'static str` discriminants (`kind`/`op`) are
// re-interned through a closed table, with unknown values folding to a
// generic label.

/// Nesting bound for [`MadError::Script`] sources — deeper input is
/// malformed by construction (scripts don't nest in the engine).
const MAX_ERROR_DEPTH: u8 = 4;

fn intern_kind(s: &str) -> &'static str {
    for k in [
        "atom type",
        "atom type id",
        "attribute",
        "attribute index",
        "link type",
        "molecule type",
        "structure node",
        "structure node alias",
        "projection node",
    ] {
        if s == k {
            return k;
        }
    }
    "object"
}

fn intern_op(s: &str) -> &'static str {
    for k in [
        "×", "Ω", "Δ", "Π", "Σ", "α", "δ", "μ", "ν", "σ", "ω", "closure",
    ] {
        if s == k {
            return k;
        }
    }
    "operator"
}

fn put_error(out: &mut Vec<u8>, e: &MadError) {
    match e {
        MadError::UnknownName { kind, name } => {
            out.push(0);
            put_str(out, kind);
            put_str(out, name);
        }
        MadError::DuplicateName { kind, name } => {
            out.push(1);
            put_str(out, kind);
            put_str(out, name);
        }
        MadError::TypeMismatch {
            context,
            expected,
            found,
        } => {
            out.push(2);
            put_str(out, context);
            put_str(out, expected);
            put_str(out, found);
        }
        MadError::ArityMismatch {
            context,
            expected,
            found,
        } => {
            out.push(3);
            put_str(out, context);
            put_u64(out, u64_of_usize(*expected));
            put_u64(out, u64_of_usize(*found));
        }
        MadError::IntegrityViolation { detail } => {
            out.push(4);
            put_str(out, detail);
        }
        MadError::CardinalityViolation { link_type, detail } => {
            out.push(5);
            put_str(out, link_type);
            put_str(out, detail);
        }
        MadError::InvalidStructure { detail } => {
            out.push(6);
            put_str(out, detail);
        }
        MadError::IncompatibleOperands { op, detail } => {
            out.push(7);
            put_str(out, op);
            put_str(out, detail);
        }
        MadError::InvalidQualification { detail } => {
            out.push(8);
            put_str(out, detail);
        }
        MadError::Parse { offset, detail } => {
            out.push(9);
            put_u64(out, u64_of_usize(*offset));
            put_str(out, detail);
        }
        MadError::Analysis { detail } => {
            out.push(10);
            put_str(out, detail);
        }
        MadError::Snapshot { detail } => {
            out.push(11);
            put_str(out, detail);
        }
        MadError::Codec { detail } => {
            out.push(12);
            put_str(out, detail);
        }
        MadError::Wal { detail } => {
            out.push(13);
            put_str(out, detail);
        }
        MadError::Recursion { detail } => {
            out.push(14);
            put_str(out, detail);
        }
        MadError::TxnConflict { detail } => {
            out.push(15);
            put_str(out, detail);
        }
        MadError::TxnState { detail } => {
            out.push(16);
            put_str(out, detail);
        }
        MadError::Script {
            index,
            statement,
            source,
        } => {
            out.push(17);
            put_u64(out, u64_of_usize(*index));
            put_str(out, statement);
            put_error(out, source);
        }
        MadError::Protocol { detail } => {
            out.push(18);
            put_str(out, detail);
        }
        MadError::Io { detail } => {
            out.push(19);
            put_str(out, detail);
        }
    }
}

fn read_error(r: &mut Reader<'_>, depth: u8) -> Result<MadError> {
    if depth > MAX_ERROR_DEPTH {
        return Err(MadError::protocol("error nesting exceeds the wire bound"));
    }
    let e = match r.u8().map_err(bad_payload)? {
        0 => MadError::UnknownName {
            kind: intern_kind(&r.str().map_err(bad_payload)?),
            name: r.str().map_err(bad_payload)?,
        },
        1 => MadError::DuplicateName {
            kind: intern_kind(&r.str().map_err(bad_payload)?),
            name: r.str().map_err(bad_payload)?,
        },
        2 => MadError::TypeMismatch {
            context: r.str().map_err(bad_payload)?,
            expected: r.str().map_err(bad_payload)?,
            found: r.str().map_err(bad_payload)?,
        },
        3 => MadError::ArityMismatch {
            context: r.str().map_err(bad_payload)?,
            expected: usize_of_u64(r.u64().map_err(bad_payload)?).map_err(bad_payload)?,
            found: usize_of_u64(r.u64().map_err(bad_payload)?).map_err(bad_payload)?,
        },
        4 => MadError::IntegrityViolation {
            detail: r.str().map_err(bad_payload)?,
        },
        5 => MadError::CardinalityViolation {
            link_type: r.str().map_err(bad_payload)?,
            detail: r.str().map_err(bad_payload)?,
        },
        6 => MadError::InvalidStructure {
            detail: r.str().map_err(bad_payload)?,
        },
        7 => MadError::IncompatibleOperands {
            op: intern_op(&r.str().map_err(bad_payload)?),
            detail: r.str().map_err(bad_payload)?,
        },
        8 => MadError::InvalidQualification {
            detail: r.str().map_err(bad_payload)?,
        },
        9 => MadError::Parse {
            offset: usize_of_u64(r.u64().map_err(bad_payload)?).map_err(bad_payload)?,
            detail: r.str().map_err(bad_payload)?,
        },
        10 => MadError::Analysis {
            detail: r.str().map_err(bad_payload)?,
        },
        11 => MadError::Snapshot {
            detail: r.str().map_err(bad_payload)?,
        },
        12 => MadError::Codec {
            detail: r.str().map_err(bad_payload)?,
        },
        13 => MadError::Wal {
            detail: r.str().map_err(bad_payload)?,
        },
        14 => MadError::Recursion {
            detail: r.str().map_err(bad_payload)?,
        },
        15 => MadError::TxnConflict {
            detail: r.str().map_err(bad_payload)?,
        },
        16 => MadError::TxnState {
            detail: r.str().map_err(bad_payload)?,
        },
        17 => MadError::Script {
            index: usize_of_u64(r.u64().map_err(bad_payload)?).map_err(bad_payload)?,
            statement: r.str().map_err(bad_payload)?,
            source: Box::new(read_error(r, depth + 1)?),
        },
        18 => MadError::Protocol {
            detail: r.str().map_err(bad_payload)?,
        },
        19 => MadError::Io {
            detail: r.str().map_err(bad_payload)?,
        },
        t => return Err(MadError::protocol(format!("unknown error tag {t}"))),
    };
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_response(resp: &Response) -> Response {
        decode_response(&encode_response(resp)).unwrap()
    }

    #[test]
    fn request_and_response_roundtrip() {
        for req in [
            Request::Statement("SELECT ALL FROM state;".into()),
            Request::Ping,
            Request::SetEncoding(ENCODING_BINARY),
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
        for resp in [
            Response::Result("molecule type `result`: 2 molecule(s)\n".into()),
            Response::Pong,
            Response::Hello {
                protocol: PROTOCOL_VERSION,
                commit_seq: 42,
                durable: true,
                encodings: SUPPORTED_ENCODINGS,
            },
            Response::Error(MadError::txn_conflict("write-write conflict on atom a0s0")),
            Response::BinResult(vec![0, 1, 2, 0xff]),
            Response::EncodingAck(ENCODING_TEXT),
        ] {
            assert_eq!(roundtrip_response(&resp), resp);
        }
    }

    #[test]
    fn truncated_bin_result_blob_is_a_protocol_error() {
        let mut payload = encode_response(&Response::BinResult(vec![7; 16]));
        payload.truncate(payload.len() - 4);
        assert!(matches!(
            decode_response(&payload),
            Err(MadError::Protocol { .. })
        ));
    }

    #[test]
    fn conflict_survives_the_wire() {
        let Response::Error(e) =
            roundtrip_response(&Response::Error(MadError::txn_conflict("overlap")))
        else {
            panic!()
        };
        assert!(e.is_conflict(), "is_conflict() lost in transit: {e:?}");
        // wrapped in a script, too
        let script = MadError::Script {
            index: 2,
            statement: "COMMIT".into(),
            source: Box::new(MadError::txn_conflict("overlap")),
        };
        let Response::Error(e) = roundtrip_response(&Response::Error(script)) else {
            panic!()
        };
        assert!(e.is_conflict());
    }

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let payload = encode_response(&Response::Result("ok\n".into()));
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = wire.as_slice();
        let FrameIn::Payload(read) = read_frame(&mut cursor).unwrap() else {
            panic!("expected a payload");
        };
        assert_eq!(read, payload);
        // and the stream is now at a clean boundary
        assert!(matches!(read_frame(&mut cursor).unwrap(), FrameIn::Closed));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        // header declares u32::MAX bytes; decode must refuse, not allocate
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let err = match read_frame(&mut wire.as_slice()) {
            Err(e) => e,
            Ok(_) => panic!("oversized frame accepted"),
        };
        assert!(matches!(err, MadError::Protocol { .. }), "got {err}");
        // the write side refuses symmetrically
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &big),
            Err(MadError::Protocol { .. })
        ));
        assert!(sink.is_empty(), "nothing may be written before the check");
    }

    #[test]
    fn truncated_frames_are_protocol_errors() {
        let payload = encode_request(&Request::Ping);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        for cut in 1..wire.len() {
            let err = match read_frame(&mut &wire[..cut]) {
                Err(e) => e,
                Ok(_) => panic!("truncated frame at {cut} bytes accepted"),
            };
            assert!(matches!(err, MadError::Protocol { .. }), "cut {cut}: {err}");
        }
    }

    #[test]
    fn extract_frame_handles_partial_and_coalesced_input() {
        let a = encode_request(&Request::Ping);
        let b = encode_request(&Request::Statement("SELECT ALL FROM state".into()));
        let mut wire = Vec::new();
        write_frame(&mut wire, &a).unwrap();
        write_frame(&mut wire, &b).unwrap();
        // feed the coalesced byte stream one byte at a time: a partial
        // frame yields None, each completed frame pops exactly once
        let mut buf = Vec::new();
        let mut got = Vec::new();
        for byte in wire {
            buf.push(byte);
            while let Some(p) = extract_frame(&mut buf).unwrap() {
                got.push(p);
            }
        }
        assert!(buf.is_empty());
        assert_eq!(got, vec![a, b]);
        // oversized length and corrupt checksum are rejected, as in read_frame
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            extract_frame(&mut huge),
            Err(MadError::Protocol { .. })
        ));
    }

    #[test]
    fn corrupt_checksum_is_a_protocol_error() {
        let payload = encode_request(&Request::Statement("SELECT".into()));
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(MadError::Protocol { .. })
        ));
    }
}
