#![forbid(unsafe_code)]

//! # mad-net — the TCP server front-end of the MAD database
//!
//! The paper's molecule-atom data model is meant to be *served*: the MQL
//! statement text is the user's whole interface, and everything behind it
//! (molecule derivation, transactions, the write-ahead log) stays on the
//! server. This crate turns the workspace into that multi-user service:
//!
//! * [`Server`] — a readiness-based event loop serving one shared,
//!   optionally durable [`mad_txn::DbHandle`] to many concurrent
//!   clients: one poller thread owns every socket (see [`poller`]), a
//!   fixed worker pool executes statements against one
//!   [`mad_mql::Session::shared`] per connection. Clients may
//!   **pipeline** any number of requests; responses come back in
//!   request order, and `BEGIN … COMMIT` spans as many round-trips (or
//!   pipelined frames) as the client likes while other connections keep
//!   reading committed snapshots.
//! * [`Client`] — a small blocking client: connect, send MQL statement
//!   text, get the rendered result (or the server's error, with
//!   [`mad_model::MadError::is_conflict`] preserved across the wire so
//!   retry loops work remotely exactly like they do in-process). The
//!   binary result encoding ([`Client::set_encoding`]) ships molecule
//!   sets structurally instead of as server-rendered text;
//!   [`Client::send_statement`] / [`Client::recv_result`] expose the
//!   pipeline directly.
//! * [`frame`] — the wire format: length-prefixed, CRC-32-checksummed
//!   frames (the same framing discipline as the `mad_wal` log), hardened
//!   against oversized and truncated input. The normative spec lives in
//!   `ARCHITECTURE.md`.
//! * `madc` — a REPL binary over [`Client`]
//!   (`cargo run -p mad-net --bin madc -- <addr>`).
//!
//! ## Connection lifecycle
//!
//! A connection is one session. Dropping it mid-transaction aborts the
//! open transaction (the server's session drops, the transaction's `Drop`
//! releases its registration — nothing the client left behind can pin the
//! handle's commit log). A malformed frame closes *that* connection with a
//! protocol error; the shared handle and every other connection are
//! untouched.

pub mod client;
pub mod frame;
pub mod poller;
pub mod server;

pub use client::{Client, ClientConfig, RetryPolicy, ServerInfo};
pub use frame::{
    is_timeout_error, Request, Response, ENCODING_BINARY, ENCODING_TEXT, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig};

pub use mad_txn::DbHandle;
