//! The blocking client: connect, send MQL text, get rendered results —
//! or the server's error, with `is_conflict()` intact.

use crate::frame::{
    decode_response, encode_request, read_frame, write_frame, FrameIn, Request, Response, MAGIC,
    PROTOCOL_VERSION,
};
use mad_model::{MadError, Result};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

/// What the server announced in its hello frame.
#[derive(Clone, Copy, Debug)]
pub struct ServerInfo {
    /// The server's protocol version.
    pub protocol: u32,
    /// Commit sequence of the served handle when this connection opened.
    pub commit_seq: u64,
    /// Does the server write-ahead-log its commits?
    pub durable: bool,
}

/// A blocking connection to a [`crate::Server`].
///
/// One client is one server-side session: statements execute in order on
/// the same session state, so `BEGIN` … `COMMIT` may span any number of
/// [`Client::execute`] round-trips. Statement failures come back as the
/// server's own [`MadError`] — a first-committer-wins conflict satisfies
/// [`MadError::is_conflict`] on the client exactly as it would
/// in-process, so retry loops port unchanged. Dropping the client closes
/// the connection; the server aborts any transaction left open.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    info: ServerInfo,
}

impl Client {
    /// Connect and complete the handshake (preamble out, hello in).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| MadError::io(format!("connect: {e}")))?;
        let _ = stream.set_nodelay(true);
        let mut writer = stream
            .try_clone()
            .map_err(|e| MadError::io(format!("clone stream: {e}")))?;
        use std::io::Write;
        writer
            .write_all(MAGIC)
            .and_then(|()| writer.flush())
            .map_err(|e| MadError::io(format!("send preamble: {e}")))?;
        let mut reader = BufReader::new(stream);
        let info = match read_response(&mut reader)? {
            Response::Hello {
                protocol,
                commit_seq,
                durable,
            } => ServerInfo {
                protocol,
                commit_seq,
                durable,
            },
            other => {
                return Err(MadError::protocol(format!(
                    "expected the server hello, got {other:?}"
                )))
            }
        };
        if info.protocol != PROTOCOL_VERSION {
            return Err(MadError::protocol(format!(
                "protocol version mismatch: server speaks {}, client speaks {PROTOCOL_VERSION}",
                info.protocol
            )));
        }
        Ok(Client {
            writer,
            reader,
            info,
        })
    }

    /// What the server announced at connect time.
    pub fn server_info(&self) -> &ServerInfo {
        &self.info
    }

    /// Execute one MQL statement on the connection's server-side session
    /// and return the rendered result text. A statement error is returned
    /// as the server's own [`MadError`] (conflicts keep `is_conflict()`);
    /// transport failures surface as [`MadError::Io`] /
    /// [`MadError::Protocol`].
    pub fn execute(&mut self, statement: &str) -> Result<String> {
        self.round_trip(&Request::Statement(statement.to_owned()))
            .and_then(|resp| match resp {
                Response::Result(text) => Ok(text),
                Response::Error(e) => Err(e),
                other => Err(MadError::protocol(format!(
                    "expected a statement response, got {other:?}"
                ))),
            })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(MadError::protocol(format!(
                "expected a pong, got {other:?}"
            ))),
        }
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.writer, &encode_request(req))?;
        read_response(&mut self.reader)
    }
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<Response> {
    match read_frame(reader)? {
        FrameIn::Payload(payload) => decode_response(&payload),
        FrameIn::Closed => Err(MadError::io(
            "connection closed by the server before a response arrived",
        )),
    }
}
