//! The blocking client: connect, send MQL text, get rendered results —
//! or the server's error, with `is_conflict()` intact. Per-operation
//! deadlines, reconnection and a bounded-backoff retry helper make it
//! usable against servers that stall or restart.

use crate::frame::{
    decode_response, encode_request, read_frame, write_frame, FrameIn, Request, Response, MAGIC,
    PROTOCOL_VERSION,
};
use mad_model::bin::{BinDecode, BinResult, Reader};
use mad_model::{MadError, Result};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What the server announced in its hello frame.
#[derive(Clone, Copy, Debug)]
pub struct ServerInfo {
    /// The server's protocol version.
    pub protocol: u32,
    /// Commit sequence of the served handle when this connection opened.
    pub commit_seq: u64,
    /// Does the server write-ahead-log its commits?
    pub durable: bool,
    /// Bitmask of result encodings the server supports (bit 0 text,
    /// bit 1 binary) — see [`Client::set_encoding`].
    pub encodings: u8,
}

/// Per-connection knobs: socket deadlines for each read and write, so a
/// stalled or half-open server surfaces as a classified timeout error
/// (see [`crate::frame::is_timeout_error`]) instead of a forever-blocked
/// thread. `None` (the default) blocks indefinitely, the pre-deadline
/// behavior.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientConfig {
    /// Deadline for each socket read (a response, or part of one).
    pub read_timeout: Option<Duration>,
    /// Deadline for each socket write.
    pub write_timeout: Option<Duration>,
}

/// Bounded exponential backoff for retryable failures: conflict retry
/// loops ([`Client::execute_retry`]) and reconnection
/// ([`Client::reconnect_retry`]) share it.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). At least 1.
    pub max_attempts: u32,
    /// Sleep before the second attempt; doubles per further attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// Run `op` up to [`RetryPolicy::max_attempts`] times, sleeping the
    /// backoff schedule between attempts, retrying only failures
    /// `should_retry` accepts. The final error is returned unchanged.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T>,
        mut should_retry: impl FnMut(&MadError) -> bool,
    ) -> Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut delay = self.base_delay;
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(self.max_delay);
            }
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt + 1 < attempts && should_retry(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| MadError::io("retry loop made no attempt")))
    }
}

/// A blocking connection to a [`crate::Server`].
///
/// One client is one server-side session: statements execute in order on
/// the same session state, so `BEGIN` … `COMMIT` may span any number of
/// [`Client::execute`] round-trips. Statement failures come back as the
/// server's own [`MadError`] — a first-committer-wins conflict satisfies
/// [`MadError::is_conflict`] on the client exactly as it would
/// in-process, so retry loops port unchanged. Dropping the client closes
/// the connection; the server aborts any transaction left open.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    info: ServerInfo,
    addr: SocketAddr,
    config: ClientConfig,
}

impl Client {
    /// Connect and complete the handshake (preamble out, hello in), with
    /// no deadlines — see [`Client::connect_with`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with per-operation deadlines. The first address `addr`
    /// resolves to is remembered for [`Client::reconnect`].
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| MadError::io(format!("resolve server address: {e}")))?
            .next()
            .ok_or_else(|| MadError::io("server address resolved to nothing"))?;
        Self::dial(addr, config)
    }

    fn dial(addr: SocketAddr, config: ClientConfig) -> Result<Client> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| MadError::io(format!("connect: {e}")))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(config.read_timeout)
            .and_then(|()| stream.set_write_timeout(config.write_timeout))
            .map_err(|e| MadError::io(format!("set socket deadlines: {e}")))?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| MadError::io(format!("clone stream: {e}")))?;
        use std::io::Write;
        writer
            .write_all(MAGIC)
            .and_then(|()| writer.flush())
            .map_err(|e| MadError::io(format!("send preamble: {e}")))?;
        let mut reader = BufReader::new(stream);
        let info = match read_response(&mut reader)? {
            Response::Hello {
                protocol,
                commit_seq,
                durable,
                encodings,
            } => ServerInfo {
                protocol,
                commit_seq,
                durable,
                encodings,
            },
            other => {
                return Err(MadError::protocol(format!(
                    "expected the server hello, got {other:?}"
                )))
            }
        };
        if info.protocol != PROTOCOL_VERSION {
            return Err(MadError::protocol(format!(
                "protocol version mismatch: server speaks {}, client speaks {PROTOCOL_VERSION}",
                info.protocol
            )));
        }
        Ok(Client {
            writer,
            reader,
            info,
            addr,
            config,
        })
    }

    /// Drop the current connection and dial the same server again with
    /// the same deadlines. The new connection is a **fresh server-side
    /// session**: any transaction the old session had open was aborted
    /// when its connection died.
    pub fn reconnect(&mut self) -> Result<()> {
        let fresh = Self::dial(self.addr, self.config)?;
        *self = fresh;
        Ok(())
    }

    /// [`Client::reconnect`] under a [`RetryPolicy`]: every transport
    /// failure is retryable (the server may still be restarting).
    pub fn reconnect_retry(&mut self, policy: &RetryPolicy) -> Result<()> {
        let addr = self.addr;
        let config = self.config;
        let fresh = policy.run(
            || Self::dial(addr, config),
            |e| matches!(e, MadError::Io { .. } | MadError::Protocol { .. }),
        )?;
        *self = fresh;
        Ok(())
    }

    /// What the server announced at connect time.
    pub fn server_info(&self) -> &ServerInfo {
        &self.info
    }

    /// The server address this client dials.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Execute one MQL statement on the connection's server-side session
    /// and return the rendered result text. A statement error is returned
    /// as the server's own [`MadError`] (conflicts keep `is_conflict()`);
    /// transport failures surface as [`MadError::Io`] /
    /// [`MadError::Protocol`], with an expired deadline classified per
    /// [`crate::frame::is_timeout_error`].
    /// After [`Client::set_encoding`] selected the binary encoding,
    /// results arrive structurally and are rendered client-side.
    pub fn execute(&mut self, statement: &str) -> Result<String> {
        self.round_trip(&Request::Statement(statement.to_owned()))
            .and_then(statement_text)
    }

    /// [`Client::execute`] under a [`RetryPolicy`], retrying only
    /// first-committer-wins conflicts (`is_conflict()`), the one failure
    /// class where the statement is known not to have taken effect and a
    /// bare re-run is the documented recipe. Transport errors are **not**
    /// retried here — whether the statement executed is unknown then;
    /// [`Client::reconnect_retry`] plus application-level idempotence is
    /// the recovery path for those.
    pub fn execute_retry(&mut self, statement: &str, policy: &RetryPolicy) -> Result<String> {
        policy.run(|| self.execute(statement), MadError::is_conflict)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(MadError::protocol(format!(
                "expected a pong, got {other:?}"
            ))),
        }
    }

    /// Switch the connection's result encoding:
    /// [`crate::frame::ENCODING_TEXT`] (the default — the server
    /// renders) or [`crate::frame::ENCODING_BINARY`] (results
    /// travel structurally; [`Client::execute`] renders them locally,
    /// [`Client::execute_bin`] hands them over undecoded-into-text).
    /// Takes effect for every statement after the acknowledgment.
    pub fn set_encoding(&mut self, encoding: u8) -> Result<()> {
        match self.round_trip(&Request::SetEncoding(encoding))? {
            Response::EncodingAck(_) => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(MadError::protocol(format!(
                "expected an encoding ack, got {other:?}"
            ))),
        }
    }

    /// Execute one statement and return the structural result. Under the
    /// binary encoding, molecule sets come back as decoded
    /// [`BinResult::Molecules`]; under the text encoding (or for
    /// non-molecule results) this degrades to [`BinResult::Text`].
    pub fn execute_bin(&mut self, statement: &str) -> Result<BinResult> {
        match self.round_trip(&Request::Statement(statement.to_owned()))? {
            Response::Result(text) => Ok(BinResult::Text(text)),
            Response::BinResult(bytes) => decode_bin(&bytes),
            Response::Error(e) => Err(e),
            other => Err(MadError::protocol(format!(
                "expected a statement response, got {other:?}"
            ))),
        }
    }

    /// Queue one statement **without waiting for its response** — the
    /// pipelining primitive. The server answers every request in order;
    /// collect each response with [`Client::recv_result`]. `BEGIN` …
    /// `COMMIT` may span a pipelined burst exactly as it spans
    /// round-trips.
    pub fn send_statement(&mut self, statement: &str) -> Result<()> {
        write_frame(
            &mut self.writer,
            &encode_request(&Request::Statement(statement.to_owned())),
        )
    }

    /// Receive the next in-order response for a statement queued with
    /// [`Client::send_statement`].
    pub fn recv_result(&mut self) -> Result<String> {
        read_response(&mut self.reader).and_then(statement_text)
    }

    /// Pipeline a burst: write every statement, then collect every
    /// response, in order. Per-statement failures (a conflict, an
    /// unknown name) land in the inner results; only a transport failure
    /// aborts the burst itself.
    pub fn execute_pipelined(&mut self, statements: &[&str]) -> Result<Vec<Result<String>>> {
        for statement in statements {
            self.send_statement(statement)?;
        }
        let mut results = Vec::with_capacity(statements.len());
        for _ in statements {
            results.push(match read_response(&mut self.reader) {
                Ok(resp) => statement_text(resp),
                Err(e) => return Err(e),
            });
        }
        Ok(results)
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.writer, &encode_request(req))?;
        read_response(&mut self.reader)
    }
}

/// Interpret a response to a statement as rendered text, rendering
/// binary results client-side.
fn statement_text(resp: Response) -> Result<String> {
    match resp {
        Response::Result(text) => Ok(text),
        Response::BinResult(bytes) => {
            decode_bin(&bytes).map(|bin| mad_mql::format::render_bin_result(&bin))
        }
        Response::Error(e) => Err(e),
        other => Err(MadError::protocol(format!(
            "expected a statement response, got {other:?}"
        ))),
    }
}

fn decode_bin(bytes: &[u8]) -> Result<BinResult> {
    let mut r = Reader::new(bytes);
    let bin = BinResult::decode(&mut r)
        .map_err(|e| MadError::protocol(format!("malformed binary result: {e}")))?;
    r.expect_end()
        .map_err(|e| MadError::protocol(format!("malformed binary result: {e}")))?;
    Ok(bin)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<Response> {
    match read_frame(reader)? {
        FrameIn::Payload(payload) => decode_response(&payload),
        FrameIn::Closed => Err(MadError::io(
            "connection closed by the server before a response arrived",
        )),
    }
}
