//! Database statistics: occurrence sizes, degree distributions and a rough
//! memory footprint.
//!
//! Used by the benchmark harness (B2 compares the MAD footprint of shared
//! subobjects with the duplicated NF² footprint) and by examples to print
//! "database occurrence" summaries in the spirit of Fig. 1's lower half.

use crate::database::Database;
use mad_model::{AtomTypeId, LinkTypeId, Value};

/// Size statistics for one atom type.
#[derive(Clone, Debug, PartialEq)]
pub struct AtomTypeStats {
    /// Atom-type name.
    pub name: String,
    /// Live atom count.
    pub atoms: usize,
    /// Approximate bytes held by the occurrence (tuple payloads).
    pub bytes: usize,
}

/// Size and degree statistics for one link type.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkTypeStats {
    /// Link-type name.
    pub name: String,
    /// Link count.
    pub links: usize,
    /// Maximum side-0 fan-out observed.
    pub max_degree_fwd: usize,
    /// Maximum side-1 fan-out observed.
    pub max_degree_bwd: usize,
    /// Mean side-0 fan-out over atoms that have at least one partner.
    pub mean_degree_fwd: f64,
}

/// Whole-database statistics.
#[derive(Clone, Debug, Default)]
pub struct DatabaseStats {
    /// Per-atom-type stats, in schema order.
    pub atom_types: Vec<AtomTypeStats>,
    /// Per-link-type stats, in schema order.
    pub link_types: Vec<LinkTypeStats>,
}

fn value_bytes(v: &Value) -> usize {
    std::mem::size_of::<Value>()
        + match v {
            Value::Text(s) => s.len(),
            _ => 0,
        }
}

impl DatabaseStats {
    /// Collect statistics for `db`.
    pub fn collect(db: &Database) -> Self {
        let mut atom_types = Vec::new();
        for (ty, def) in db.schema().atom_types() {
            let mut bytes = 0usize;
            for (_, tuple) in db.atoms_of(ty) {
                bytes += tuple.iter().map(value_bytes).sum::<usize>();
            }
            atom_types.push(AtomTypeStats {
                name: def.name.clone(),
                atoms: db.atom_count(ty),
                bytes,
            });
        }
        let mut link_types = Vec::new();
        for (lt, def) in db.schema().link_types() {
            let store = db.link_store(lt);
            let mut max_fwd = 0usize;
            let mut max_bwd = 0usize;
            let mut sum_fwd = 0usize;
            let mut nonzero_fwd = 0usize;
            for (a, _) in db.atoms_of(def.ends[0]) {
                let d = store.degree_fwd(a);
                max_fwd = max_fwd.max(d);
                if d > 0 {
                    sum_fwd += d;
                    nonzero_fwd += 1;
                }
            }
            for (b, _) in db.atoms_of(def.ends[1]) {
                max_bwd = max_bwd.max(store.degree_bwd(b));
            }
            link_types.push(LinkTypeStats {
                name: def.name.clone(),
                links: store.len(),
                max_degree_fwd: max_fwd,
                max_degree_bwd: max_bwd,
                mean_degree_fwd: if nonzero_fwd == 0 {
                    0.0
                } else {
                    sum_fwd as f64 / nonzero_fwd as f64
                },
            });
        }
        DatabaseStats {
            atom_types,
            link_types,
        }
    }

    /// Total live atoms.
    pub fn total_atoms(&self) -> usize {
        self.atom_types.iter().map(|s| s.atoms).sum()
    }

    /// Total links.
    pub fn total_links(&self) -> usize {
        self.link_types.iter().map(|s| s.links).sum()
    }

    /// Approximate total payload bytes (atoms only; link adjacency adds
    /// `16 * 2` bytes per link on top).
    pub fn total_bytes(&self) -> usize {
        let atom_bytes: usize = self.atom_types.iter().map(|s| s.bytes).sum();
        atom_bytes + self.total_links() * 32
    }

    /// Stats for a named atom type.
    pub fn atom_type(&self, name: &str) -> Option<&AtomTypeStats> {
        self.atom_types.iter().find(|s| s.name == name)
    }

    /// Stats for a named link type.
    pub fn link_type(&self, name: &str) -> Option<&LinkTypeStats> {
        self.link_types.iter().find(|s| s.name == name)
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>10} {:>12}\n",
            "atom type", "atoms", "bytes"
        ));
        for s in &self.atom_types {
            out.push_str(&format!("{:<20} {:>10} {:>12}\n", s.name, s.atoms, s.bytes));
        }
        out.push_str(&format!(
            "{:<20} {:>10} {:>8} {:>8} {:>10}\n",
            "link type", "links", "max→", "max←", "mean→"
        ));
        for s in &self.link_types {
            out.push_str(&format!(
                "{:<20} {:>10} {:>8} {:>8} {:>10.2}\n",
                s.name, s.links, s.max_degree_fwd, s.max_degree_bwd, s.mean_degree_fwd
            ));
        }
        out
    }
}

/// Degree histogram of one link type side (used by workload validation).
pub fn degree_histogram(db: &Database, lt: LinkTypeId, side0: bool) -> Vec<(usize, usize)> {
    let def = db.schema().link_type(lt);
    let ty: AtomTypeId = if side0 { def.ends[0] } else { def.ends[1] };
    let store = db.link_store(lt);
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for (a, _) in db.atoms_of(ty) {
        let d = if side0 {
            store.degree_fwd(a)
        } else {
            store.degree_bwd(a)
        };
        *counts.entry(d).or_default() += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, SchemaBuilder};

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s1 = db.insert_atom(state, vec![Value::from("SP")]).unwrap();
        let s2 = db.insert_atom(state, vec![Value::from("MG")]).unwrap();
        let a1 = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        let a2 = db.insert_atom(area, vec![Value::from(2)]).unwrap();
        db.connect(sa, s1, a1).unwrap();
        db.connect(sa, s1, a2).unwrap();
        db.connect(sa, s2, a1).unwrap();
        db
    }

    #[test]
    fn collects_counts_and_degrees() {
        let db = db();
        let stats = DatabaseStats::collect(&db);
        assert_eq!(stats.total_atoms(), 4);
        assert_eq!(stats.total_links(), 3);
        let sa = stats.link_type("state-area").unwrap();
        assert_eq!(sa.max_degree_fwd, 2);
        assert_eq!(sa.max_degree_bwd, 2);
        assert!((sa.mean_degree_fwd - 1.5).abs() < 1e-9);
        assert!(stats.atom_type("state").unwrap().bytes > 0);
        assert!(stats.total_bytes() > 0);
    }

    #[test]
    fn histogram_counts_degrees() {
        let db = db();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let h = degree_histogram(&db, sa, true);
        // s1 has degree 2, s2 degree 1
        assert_eq!(h, vec![(1, 1), (2, 1)]);
        let h = degree_histogram(&db, sa, false);
        // a1 degree 2, a2 degree 1
        assert_eq!(h, vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn render_contains_names() {
        let stats = DatabaseStats::collect(&db());
        let r = stats.render();
        assert!(r.contains("state-area"));
        assert!(r.contains("atom type"));
    }
}
