//! Read-optimized CSR (compressed sparse row) adjacency snapshots.
//!
//! The mutable [`crate::LinkStore`] keeps adjacency in hash maps keyed by
//! [`AtomId`](mad_model::AtomId) — ideal for DML, but molecule derivation pays one hash probe
//! per atom per traversed edge. A [`CsrSnapshot`] is the read-optimized
//! counterpart: built **once** from the live link stores and then shared
//! immutably across derivations, it stores, per link type and direction, a
//! frozen `offsets`/`partners` pair indexed by **atom slot**. Slots are
//! append-only and never reused, so the slot index is a stable dense key —
//! the same property `mad_model::BitSet` exploits.
//!
//! The snapshot's central operation is **batch frontier expansion**
//! ([`CsrSnapshot::expand_frontier`]): a whole per-node atom set, as a
//! bitset, is pushed through a link type with sequential scans of the
//! partner array — no hashing, no per-atom allocation. This is the
//! set-at-a-time evaluation style of the bulk-oriented database-tuning
//! literature applied to Def. 6 derivation, and the storage substrate of
//! `mad_core::derive::Strategy::Bitset`.
//!
//! ## Invalidation semantics
//!
//! Snapshots are invalidated by **two-level version stamps**:
//!
//! * a global *structural* version on the [`crate::Database`], bumped by
//!   every DDL and every atom/link DML that can change adjacency or slot
//!   horizons (attribute updates bump a separate attribute version and do
//!   **not** invalidate the snapshot);
//! * a *per-link-type* version, bumped only when that link type's pair set
//!   actually changes (a successful `connect`/`disconnect`, or a
//!   `delete_atom` cascade that removed pairs of it).
//!
//! [`crate::Database::csr_snapshot`] rebuilds lazily when the cached
//! snapshot's structural version is stale — but the rebuild is
//! **incremental** ([`CsrSnapshot::rebuild`]): link types whose
//! per-link-type version is unchanged share their frozen [`CsrAdjacency`]
//! pair with the previous snapshot via `Arc`, so one `connect` re-freezes
//! only the touched link type instead of the whole database. Growing a slot
//! horizon (plain `insert_atom`) never forces a per-link rebuild: fresh
//! slots have no partners, and `partners_of` treats out-of-range slots as
//! empty. Parallel derivation workers share one `Arc<CsrSnapshot>` across
//! threads (every field is plain frozen data, so the type is `Sync`).

use crate::database::{Database, Direction};
use mad_model::{AtomTypeId, BitSet, LinkTypeId};
use std::sync::Arc;

/// One direction of one link type, frozen in CSR form.
///
/// `partners_of(slot)` is `partners[offsets[slot]..offsets[slot + 1]]`,
/// sorted ascending; slots beyond the frozen range have no partners.
#[derive(Clone, Debug, Default)]
pub struct CsrAdjacency {
    offsets: Vec<u32>,
    partners: Vec<u32>,
}

impl CsrAdjacency {
    /// Build from oriented `(from_slot, to_slot)` pairs that are sorted by
    /// `from_slot` (ties in insertion order).
    fn from_sorted_pairs(pairs: &[(u32, u32)], from_slots: usize) -> Self {
        let mut offsets = vec![0u32; from_slots + 1];
        for &(f, _) in pairs {
            offsets[f as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let partners = pairs.iter().map(|&(_, t)| t).collect();
        CsrAdjacency { offsets, partners }
    }

    /// Partner slots of `slot` (sorted ascending; empty when out of range).
    #[inline]
    pub fn partners_of(&self, slot: u32) -> &[u32] {
        let i = slot as usize;
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.partners[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total number of stored pairs.
    pub fn len(&self) -> usize {
        self.partners.len()
    }

    /// True when no pair is stored.
    pub fn is_empty(&self) -> bool {
        self.partners.is_empty()
    }
}

/// Both directions of one link type.
#[derive(Clone, Debug, Default)]
struct LinkCsr {
    fwd: CsrAdjacency,
    bwd: CsrAdjacency,
}

/// A frozen, slot-addressed adjacency image of a whole database.
#[derive(Clone, Debug, Default)]
pub struct CsrSnapshot {
    /// Per link type, both directions; `Arc`-shared with the previous
    /// snapshot when the link type's pair set did not change between
    /// rebuilds.
    links: Vec<Arc<LinkCsr>>,
    /// Per link type: the [`Database::link_version`] its CSR pair was
    /// frozen at (keys the incremental rebuild).
    link_versions: Vec<u64>,
    /// Per atom type: the slot horizon (live + tombstoned) at build time.
    slots: Vec<u32>,
}

impl CsrSnapshot {
    /// Freeze the adjacency of every link type of `db` from scratch.
    pub fn build(db: &Database) -> Self {
        Self::rebuild(db, None).0
    }

    /// Freeze the adjacency of `db`, re-using every link type of `prev`
    /// whose per-link-type version is unchanged (its frozen pair is shared
    /// via `Arc`, not copied). Returns the snapshot and how many link-type
    /// CSR pairs were actually (re)built — the incremental-invalidation
    /// statistic EXPLAIN reports.
    pub fn rebuild(db: &Database, prev: Option<&CsrSnapshot>) -> (Self, usize) {
        let schema = db.schema();
        let slots: Vec<u32> = (0..schema.atom_type_count())
            .map(|i| db.atom_slot_count(AtomTypeId(i as u32)) as u32)
            .collect();
        let mut rebuilt = 0usize;
        let mut links = Vec::with_capacity(schema.link_type_count());
        let mut link_versions = Vec::with_capacity(schema.link_type_count());
        for (lt, def) in schema.link_types() {
            let version = db.link_version(lt);
            let li = lt.0 as usize;
            let reusable = prev.and_then(|p| {
                (p.link_versions.get(li) == Some(&version)).then(|| Arc::clone(&p.links[li]))
            });
            let pair = match reusable {
                Some(pair) => pair,
                None => {
                    rebuilt += 1;
                    // iter_oriented yields pairs sorted by (side0, side1)
                    let fwd_pairs: Vec<(u32, u32)> = db
                        .links_of(lt)
                        .map(|(a, b)| (a.slot, b.slot))
                        .collect();
                    let mut bwd_pairs: Vec<(u32, u32)> =
                        fwd_pairs.iter().map(|&(a, b)| (b, a)).collect();
                    bwd_pairs.sort_unstable();
                    Arc::new(LinkCsr {
                        fwd: CsrAdjacency::from_sorted_pairs(
                            &fwd_pairs,
                            slots[def.ends[0].0 as usize] as usize,
                        ),
                        bwd: CsrAdjacency::from_sorted_pairs(
                            &bwd_pairs,
                            slots[def.ends[1].0 as usize] as usize,
                        ),
                    })
                }
            };
            links.push(pair);
            link_versions.push(version);
        }
        (
            CsrSnapshot {
                links,
                link_versions,
                slots,
            },
            rebuilt,
        )
    }

    /// The slot horizon of atom type `ty` at build time — the capacity a
    /// per-node [`BitSet`] needs.
    #[inline]
    pub fn slot_count(&self, ty: AtomTypeId) -> usize {
        self.slots.get(ty.0 as usize).copied().unwrap_or(0) as usize
    }

    /// The frozen adjacency of `lt` in `Fwd` or `Bwd` orientation
    /// (callers needing `Sym` merge both; see
    /// [`CsrSnapshot::for_each_partner`]).
    #[inline]
    pub fn adjacency(&self, lt: LinkTypeId, dir: Direction) -> &CsrAdjacency {
        let l = &self.links[lt.0 as usize];
        match dir {
            Direction::Fwd | Direction::Sym => &l.fwd,
            Direction::Bwd => &l.bwd,
        }
    }

    /// Expand a whole frontier through `lt`/`dir`: every partner of every
    /// set bit of `frontier` is OR-ed into `out`. Sequential scans only —
    /// this is the batch operation that replaces per-atom hash probes.
    pub fn expand_frontier(
        &self,
        lt: LinkTypeId,
        dir: Direction,
        frontier: &BitSet,
        out: &mut BitSet,
    ) {
        let l = &self.links[lt.0 as usize];
        match dir {
            Direction::Fwd => Self::expand_one(&l.fwd, frontier, out),
            Direction::Bwd => Self::expand_one(&l.bwd, frontier, out),
            Direction::Sym => {
                // bitsets absorb the duplicate pairs of a both-ways link
                Self::expand_one(&l.fwd, frontier, out);
                Self::expand_one(&l.bwd, frontier, out);
            }
        }
    }

    fn expand_one(adj: &CsrAdjacency, frontier: &BitSet, out: &mut BitSet) {
        for slot in frontier {
            for &p in adj.partners_of(slot as u32) {
                out.insert(p as usize);
            }
        }
    }

    /// Visit the partners of one slot in ascending order, deduplicated for
    /// `Sym` over reflexive link types (mirrors
    /// `LinkStore::partners_sym`).
    pub fn for_each_partner(
        &self,
        lt: LinkTypeId,
        slot: u32,
        dir: Direction,
        mut f: impl FnMut(u32),
    ) {
        let l = &self.links[lt.0 as usize];
        match dir {
            Direction::Fwd => l.fwd.partners_of(slot).iter().copied().for_each(&mut f),
            Direction::Bwd => l.bwd.partners_of(slot).iter().copied().for_each(&mut f),
            Direction::Sym => crate::merge::merge_sorted_dedup(
                l.fwd.partners_of(slot),
                l.bwd.partners_of(slot),
                f,
            ),
        }
    }

    /// Total pairs frozen across all link types (both directions counted
    /// once).
    pub fn total_links(&self) -> usize {
        self.links.iter().map(|l| l.fwd.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, SchemaBuilder, Value};

    fn db_with_links() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("a", &[("x", AttrType::Int)])
            .atom_type("b", &[("y", AttrType::Int)])
            .atom_type("parts", &[("pid", AttrType::Int)])
            .link_type("ab", "a", "b")
            .link_type("composition", "parts", "parts")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let a = db.schema().atom_type_id("a").unwrap();
        let b = db.schema().atom_type_id("b").unwrap();
        let ab = db.schema().link_type_id("ab").unwrap();
        let a0 = db.insert_atom(a, vec![Value::Int(0)]).unwrap();
        let a1 = db.insert_atom(a, vec![Value::Int(1)]).unwrap();
        let b0 = db.insert_atom(b, vec![Value::Int(0)]).unwrap();
        let b1 = db.insert_atom(b, vec![Value::Int(1)]).unwrap();
        let b2 = db.insert_atom(b, vec![Value::Int(2)]).unwrap();
        db.connect(ab, a0, b1).unwrap();
        db.connect(ab, a0, b0).unwrap();
        db.connect(ab, a1, b2).unwrap();
        db
    }

    #[test]
    fn fwd_and_bwd_agree_with_link_store() {
        let db = db_with_links();
        let ab = db.schema().link_type_id("ab").unwrap();
        let snap = CsrSnapshot::build(&db);
        assert_eq!(snap.adjacency(ab, Direction::Fwd).partners_of(0), &[0, 1]);
        assert_eq!(snap.adjacency(ab, Direction::Fwd).partners_of(1), &[2]);
        assert_eq!(snap.adjacency(ab, Direction::Bwd).partners_of(1), &[0]);
        assert_eq!(snap.adjacency(ab, Direction::Bwd).partners_of(2), &[1]);
        assert_eq!(snap.total_links(), 3);
    }

    #[test]
    fn out_of_range_slot_has_no_partners() {
        let db = db_with_links();
        let ab = db.schema().link_type_id("ab").unwrap();
        let snap = CsrSnapshot::build(&db);
        assert_eq!(snap.adjacency(ab, Direction::Fwd).partners_of(99), &[] as &[u32]);
    }

    #[test]
    fn frontier_expansion_unions_partners() {
        let db = db_with_links();
        let ab = db.schema().link_type_id("ab").unwrap();
        let snap = CsrSnapshot::build(&db);
        let frontier: BitSet = [0usize, 1].into_iter().collect();
        let mut out = BitSet::with_capacity(8);
        snap.expand_frontier(ab, Direction::Fwd, &frontier, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        // backward from b1 only
        let frontier: BitSet = [1usize].into_iter().collect();
        let mut out = BitSet::with_capacity(8);
        snap.expand_frontier(ab, Direction::Bwd, &frontier, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn sym_merge_deduplicates_reflexive_pairs() {
        let mut db = db_with_links();
        let parts = db.schema().atom_type_id("parts").unwrap();
        let comp = db.schema().link_type_id("composition").unwrap();
        let p0 = db.insert_atom(parts, vec![Value::Int(0)]).unwrap();
        let p1 = db.insert_atom(parts, vec![Value::Int(1)]).unwrap();
        let p2 = db.insert_atom(parts, vec![Value::Int(2)]).unwrap();
        db.connect(comp, p0, p1).unwrap();
        db.connect(comp, p1, p0).unwrap(); // both orientations
        db.connect(comp, p2, p1).unwrap();
        let snap = CsrSnapshot::build(&db);
        let mut seen = Vec::new();
        snap.for_each_partner(comp, 1, Direction::Sym, |p| seen.push(p));
        assert_eq!(seen, vec![0, 2], "merged, deduplicated, sorted");
    }

    #[test]
    fn incremental_rebuild_shares_untouched_pairs() {
        let mut db = db_with_links();
        let ab = db.schema().link_type_id("ab").unwrap();
        let comp = db.schema().link_type_id("composition").unwrap();
        let parts = db.schema().atom_type_id("parts").unwrap();
        let p0 = db.insert_atom(parts, vec![Value::Int(0)]).unwrap();
        let p1 = db.insert_atom(parts, vec![Value::Int(1)]).unwrap();
        db.connect(comp, p0, p1).unwrap();
        let (snap, rebuilt) = CsrSnapshot::rebuild(&db, None);
        assert_eq!(rebuilt, 2, "cold build freezes everything");
        // touch `composition` only
        let p2 = db.insert_atom(parts, vec![Value::Int(2)]).unwrap();
        db.connect(comp, p1, p2).unwrap();
        let (snap2, rebuilt2) = CsrSnapshot::rebuild(&db, Some(&snap));
        assert_eq!(rebuilt2, 1, "only the touched pair is re-frozen");
        // the untouched `ab` adjacency is Arc-shared, not copied
        assert!(std::ptr::eq(
            snap.adjacency(ab, Direction::Fwd),
            snap2.adjacency(ab, Direction::Fwd)
        ));
        // the rebuilt pair reflects the new link
        assert_eq!(snap2.adjacency(comp, Direction::Fwd).partners_of(p1.slot), &[p2.slot]);
        assert!(snap.adjacency(comp, Direction::Fwd).partners_of(p1.slot).is_empty());
        // slot horizons track the live database even for shared pairs
        assert_eq!(snap2.slot_count(parts), 3);
    }

    #[test]
    fn snapshot_ignores_later_dml_until_rebuilt() {
        let mut db = db_with_links();
        let ab = db.schema().link_type_id("ab").unwrap();
        let snap = CsrSnapshot::build(&db);
        let a = db.schema().atom_type_id("a").unwrap();
        let b = db.schema().atom_type_id("b").unwrap();
        let a2 = db.insert_atom(a, vec![Value::Int(9)]).unwrap();
        let b3 = db.insert_atom(b, vec![Value::Int(9)]).unwrap();
        db.connect(ab, a2, b3).unwrap();
        // the frozen image is unchanged…
        assert_eq!(snap.adjacency(ab, Direction::Fwd).partners_of(a2.slot), &[] as &[u32]);
        // …and a rebuild sees the new link
        let snap2 = CsrSnapshot::build(&db);
        assert_eq!(snap2.adjacency(ab, Direction::Fwd).partners_of(a2.slot), &[b3.slot]);
    }
}
