//! Shared sorted-sequence merging.
//!
//! Both the mutable [`crate::LinkStore`] (symmetric partner view) and the
//! frozen [`crate::CsrSnapshot`] (Sym traversal of reflexive link types)
//! need the same operation: visit the union of two sorted runs in order,
//! deduplicating elements present in both. Keeping one implementation
//! ensures the two adjacency representations can never drift apart in
//! ordering or dedup semantics.

/// Visit the sorted, deduplicated union of two sorted slices.
pub(crate) fn merge_sorted_dedup<T: Ord + Copy>(a: &[T], b: &[T], mut f: impl FnMut(T)) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                f(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                f(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                f(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    a[i..].iter().copied().for_each(&mut f);
    b[j..].iter().copied().for_each(&mut f);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn merged(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        merge_sorted_dedup(a, b, |x| out.push(x));
        out
    }

    #[test]
    fn merges_and_dedups() {
        assert_eq!(merged(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(merged(&[], &[1, 2]), vec![1, 2]);
        assert_eq!(merged(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(merged(&[], &[]), Vec::<u32>::new());
    }
}
