//! Database snapshots: export/import of full databases (schema + occurrence)
//! to JSON.
//!
//! Fig. 4 of the paper presents GEO_DB as a *formal specification* — schema
//! and occurrence written down together. A [`DatabaseSnapshot`] is the
//! machine-readable analogue, used by the figure-regeneration harness and to
//! freeze synthetic workloads for reproducible benchmarks.

use crate::database::Database;
use crate::index::IndexKind;
use mad_model::bin::{BinDecode, BinEncode, Reader};
use mad_model::json::{FromJson, Json, ToJson};
use mad_model::{AtomId, MadError, Result, Schema, Value};
use std::path::Path;

/// A serializable image of a [`Database`].
#[derive(Clone, Debug)]
pub struct DatabaseSnapshot {
    /// The schema (atom-type and link-type descriptions).
    pub schema: Schema,
    /// Per atom type: the list of `(slot, tuple)` pairs of live atoms.
    pub atoms: Vec<Vec<(u32, Vec<Value>)>>,
    /// Per link type: the list of oriented `(side0, side1)` pairs.
    pub links: Vec<Vec<(AtomId, AtomId)>>,
    /// Indexes to re-create: `(atom type name, attribute name, ordered?)`.
    pub indexes: Vec<(String, String, bool)>,
}

impl ToJson for DatabaseSnapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), self.schema.to_json()),
            ("atoms".into(), self.atoms.to_json()),
            ("links".into(), self.links.to_json()),
            ("indexes".into(), self.indexes.to_json()),
        ])
    }
}

impl FromJson for DatabaseSnapshot {
    fn from_json(v: &Json) -> Result<Self> {
        Ok(DatabaseSnapshot {
            schema: Schema::from_json(v.get("schema")?)?,
            atoms: Vec::from_json(v.get("atoms")?)?,
            links: Vec::from_json(v.get("links")?)?,
            indexes: Vec::from_json(v.get("indexes")?)?,
        })
    }
}

impl BinEncode for DatabaseSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.schema.encode(out);
        self.atoms.encode(out);
        self.links.encode(out);
        mad_model::bin::put_u32(out, self.indexes.len() as u32);
        for (ty, attr, ordered) in &self.indexes {
            ty.encode(out);
            attr.encode(out);
            out.push(*ordered as u8);
        }
    }
}

impl BinDecode for DatabaseSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let schema = Schema::decode(r)?;
        let atoms = Vec::decode(r)?;
        let links = Vec::decode(r)?;
        let n = r.seq_len()?;
        let mut indexes = Vec::with_capacity(n);
        for _ in 0..n {
            let ty = r.str()?;
            let attr = r.str()?;
            let ordered = r.u8()? != 0;
            indexes.push((ty, attr, ordered));
        }
        Ok(DatabaseSnapshot {
            schema,
            atoms,
            links,
            indexes,
        })
    }
}

impl DatabaseSnapshot {
    /// Render to a JSON string (compact).
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Render to a pretty-printed JSON string.
    pub fn to_json_pretty(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parse from a JSON string produced by the renderers above.
    pub fn from_json_str(text: &str) -> Result<Self> {
        DatabaseSnapshot::from_json(&Json::parse(text)?)
    }

    /// Capture the state of `db`.
    pub fn capture(db: &Database) -> Self {
        let schema = db.schema().clone();
        let atoms = schema
            .atom_types()
            .map(|(ty, _)| {
                db.atoms_of(ty)
                    .map(|(id, tuple)| (id.slot, tuple.to_vec()))
                    .collect()
            })
            .collect();
        let links = schema
            .link_types()
            .map(|(lt, _)| db.links_of(lt).collect())
            .collect();
        // Note: index kinds are re-created from this listing; the capture
        // relies on Database exposing which (ty, attr) pairs are indexed.
        let mut indexes = Vec::new();
        for (ty, def) in schema.atom_types() {
            for (attr, adef) in def.attrs.iter().enumerate() {
                if db.has_index(ty, attr) {
                    // We cannot see the kind through the public API; ordered
                    // is the safe superset (supports eq + range).
                    indexes.push((def.name.clone(), adef.name.clone(), true));
                }
            }
        }
        DatabaseSnapshot {
            schema,
            atoms,
            links,
            indexes,
        }
    }

    /// Rebuild a [`Database`] from this snapshot. Slot numbers are
    /// preserved, so stored [`AtomId`]s (e.g. in `Id`-valued attributes)
    /// stay valid.
    pub fn restore(mut self) -> Result<Database> {
        self.schema.rebuild_indexes();
        let mut db = Database::new(self.schema.clone());
        for (ty, _) in self.schema.atom_types() {
            let rows = std::mem::take(&mut self.atoms[ty.0 as usize]);
            let mut expected_slot = 0u32;
            for (slot, tuple) in rows {
                // Re-create tombstoned gaps so that slots line up.
                while expected_slot < slot {
                    let def = self.schema.atom_type(ty);
                    let filler = vec![Value::Null; def.arity()];
                    let id = db.insert_atom(ty, filler)?;
                    db.delete_atom(id)?;
                    expected_slot += 1;
                }
                let id = db.insert_atom(ty, tuple)?;
                if id.slot != slot {
                    return Err(MadError::Snapshot {
                        detail: format!("slot mismatch: expected {slot}, got {}", id.slot),
                    });
                }
                expected_slot = slot + 1;
            }
        }
        for (lt, _) in self.schema.link_types() {
            for (a, b) in std::mem::take(&mut self.links[lt.0 as usize]) {
                db.connect(lt, a, b)?;
            }
        }
        for (ty_name, attr_name, ordered) in &self.indexes {
            let ty = db.schema().atom_type_id(ty_name)?;
            let kind = if *ordered {
                IndexKind::Ordered
            } else {
                IndexKind::Hash
            };
            db.create_index(ty, attr_name, kind)?;
        }
        Ok(db)
    }
}

/// Serialize `db` to pretty JSON at `path`.
pub fn save_json(db: &Database, path: impl AsRef<Path>) -> Result<()> {
    let snap = DatabaseSnapshot::capture(db);
    std::fs::write(path, snap.to_json_pretty()).map_err(|e| MadError::Snapshot {
        detail: e.to_string(),
    })
}

/// Deserialize a database from JSON at `path`.
pub fn load_json(path: impl AsRef<Path>) -> Result<Database> {
    let json = std::fs::read_to_string(path).map_err(|e| MadError::Snapshot {
        detail: e.to_string(),
    })?;
    DatabaseSnapshot::from_json_str(&json)?.restore()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, SchemaBuilder};

    fn sample_db() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s1 = db.insert_atom(state, vec![Value::from("SP")]).unwrap();
        let s2 = db.insert_atom(state, vec![Value::from("MG")]).unwrap();
        let a1 = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        db.connect(sa, s1, a1).unwrap();
        db.connect(sa, s2, a1).unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample_db();
        let snap = DatabaseSnapshot::capture(&db);
        let db2 = snap.restore().unwrap();
        let state = db2.schema().atom_type_id("state").unwrap();
        let sa = db2.schema().link_type_id("state-area").unwrap();
        assert_eq!(db2.atom_count(state), 2);
        assert_eq!(db2.link_count(sa), 2);
        let names: Vec<String> = db2
            .atoms_of(state)
            .map(|(_, t)| t[0].as_text().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["SP", "MG"]);
        assert!(db2.audit_referential_integrity().is_empty());
    }

    #[test]
    fn roundtrip_preserves_slots_across_tombstones() {
        let mut db = sample_db();
        let state = db.schema().atom_type_id("state").unwrap();
        // delete slot 0 so the snapshot has a gap
        db.delete_atom(AtomId::new(state, 0)).unwrap();
        let snap = DatabaseSnapshot::capture(&db);
        let db2 = snap.restore().unwrap();
        assert!(!db2.atom_exists(AtomId::new(state, 0)));
        assert!(db2.atom_exists(AtomId::new(state, 1)));
        assert_eq!(
            db2.atom(AtomId::new(state, 1)).unwrap()[0],
            Value::from("MG")
        );
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let mut db = sample_db();
        let state = db.schema().atom_type_id("state").unwrap();
        db.create_index(state, "sname", IndexKind::Hash).unwrap();
        // a tombstone, so slot gaps travel through the binary form too
        db.delete_atom(AtomId::new(state, 0)).unwrap();
        let snap = DatabaseSnapshot::capture(&db);
        let bytes = snap.to_bytes();
        let db2 = DatabaseSnapshot::from_bytes(&bytes).unwrap().restore().unwrap();
        assert_eq!(
            DatabaseSnapshot::capture(&db2).to_json_string(),
            snap.to_json_string(),
            "binary round-trip must agree with the JSON image"
        );
        assert!(db2.has_index(state, 0));
    }

    #[test]
    fn binary_rejects_truncation() {
        let bytes = DatabaseSnapshot::capture(&sample_db()).to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(DatabaseSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn json_roundtrip_through_string() {
        let db = sample_db();
        let snap = DatabaseSnapshot::capture(&db);
        let json = snap.to_json_string();
        let snap2 = DatabaseSnapshot::from_json_str(&json).unwrap();
        let db2 = snap2.restore().unwrap();
        assert_eq!(db2.total_atoms(), db.total_atoms());
        assert_eq!(db2.total_links(), db.total_links());
    }

    #[test]
    fn file_roundtrip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("mad-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        save_json(&db, &path).unwrap();
        let db2 = load_json(&path).unwrap();
        assert_eq!(db2.total_atoms(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn indexes_survive_roundtrip() {
        let mut db = sample_db();
        let state = db.schema().atom_type_id("state").unwrap();
        db.create_index(state, "sname", IndexKind::Hash).unwrap();
        let db2 = DatabaseSnapshot::capture(&db).restore().unwrap();
        assert!(db2.has_index(state, 0));
        assert_eq!(
            db2.lookup_eq(state, 0, &Value::from("MG")).unwrap().len(),
            1
        );
    }
}
