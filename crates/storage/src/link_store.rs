//! Storage for one link-type occurrence (`lv` of Def. 2).
//!
//! A link store keeps the adjacency of one link type in both directions:
//! `fwd` maps a side-0 atom to its sorted side-1 partners, `bwd` the reverse.
//! Both maps together realize the **symmetric** link concept of the MAD
//! model — "the direct representation and the consideration of
//! bidirectional, i.e. symmetric links establish the basis of the model's
//! flexibility" (§2) — while still giving reflexive link types a
//! well-defined orientation (side 0 = e.g. super-component, side 1 =
//! sub-component).
//!
//! Postings are kept sorted so that membership tests are `O(log d)` and
//! iteration order is deterministic (which the test suite and the figure
//! regeneration rely on).

use mad_model::{AtomId, FxHashMap, LinkPair};

/// The adjacency store backing one link type.
#[derive(Clone, Debug, Default)]
pub struct LinkStore {
    fwd: FxHashMap<AtomId, Vec<AtomId>>,
    bwd: FxHashMap<AtomId, Vec<AtomId>>,
    count: usize,
}

fn insert_sorted(v: &mut Vec<AtomId>, x: AtomId) -> bool {
    match v.binary_search(&x) {
        Ok(_) => false,
        Err(pos) => {
            v.insert(pos, x);
            true
        }
    }
}

fn remove_sorted(v: &mut Vec<AtomId>, x: AtomId) -> bool {
    match v.binary_search(&x) {
        Ok(pos) => {
            v.remove(pos);
            true
        }
        Err(_) => false,
    }
}

impl LinkStore {
    /// An empty store.
    pub fn new() -> Self {
        LinkStore::default()
    }

    /// Insert the link `(side0, side1)`. Returns `false` if it already
    /// existed (link occurrences are sets).
    pub fn insert(&mut self, side0: AtomId, side1: AtomId) -> bool {
        let added = insert_sorted(self.fwd.entry(side0).or_default(), side1);
        if added {
            insert_sorted(self.bwd.entry(side1).or_default(), side0);
            self.count += 1;
        }
        added
    }

    /// Remove the link `(side0, side1)`. Returns `false` if absent.
    pub fn remove(&mut self, side0: AtomId, side1: AtomId) -> bool {
        let removed = match self.fwd.get_mut(&side0) {
            Some(v) => remove_sorted(v, side1),
            None => false,
        };
        if removed {
            if let Some(v) = self.bwd.get_mut(&side1) {
                remove_sorted(v, side0);
            }
            self.count -= 1;
        }
        removed
    }

    /// Does the link `(side0, side1)` exist (in this orientation)?
    pub fn contains(&self, side0: AtomId, side1: AtomId) -> bool {
        self.fwd
            .get(&side0)
            .is_some_and(|v| v.binary_search(&side1).is_ok())
    }

    /// Side-1 partners of a side-0 atom (sorted).
    pub fn partners_fwd(&self, side0: AtomId) -> &[AtomId] {
        self.fwd.get(&side0).map_or(&[], |v| v.as_slice())
    }

    /// Side-0 partners of a side-1 atom (sorted).
    pub fn partners_bwd(&self, side1: AtomId) -> &[AtomId] {
        self.bwd.get(&side1).map_or(&[], |v| v.as_slice())
    }

    /// All partners of `atom` regardless of side — the symmetric view. For
    /// non-reflexive link types an atom appears on only one side, so this
    /// equals the per-side view; for reflexive link types it merges both
    /// orientations (deduplicated).
    pub fn partners_sym(&self, atom: AtomId) -> Vec<AtomId> {
        let f = self.partners_fwd(atom);
        let b = self.partners_bwd(atom);
        if b.is_empty() {
            return f.to_vec();
        }
        if f.is_empty() {
            return b.to_vec();
        }
        // merge two sorted lists, deduplicating
        let mut out = Vec::with_capacity(f.len() + b.len());
        crate::merge::merge_sorted_dedup(f, b, |x| out.push(x));
        out
    }

    /// Number of side-1 partners of a side-0 atom (for cardinality checks).
    pub fn degree_fwd(&self, side0: AtomId) -> usize {
        self.partners_fwd(side0).len()
    }

    /// Number of side-0 partners of a side-1 atom.
    pub fn degree_bwd(&self, side1: AtomId) -> usize {
        self.partners_bwd(side1).len()
    }

    /// Remove every link incident to `atom` (both sides). Returns how many
    /// links were removed. Used by cascading atom deletion.
    pub fn remove_atom(&mut self, atom: AtomId) -> usize {
        let mut removed = 0;
        if let Some(partners) = self.fwd.remove(&atom) {
            removed += partners.len();
            for p in partners {
                if let Some(v) = self.bwd.get_mut(&p) {
                    remove_sorted(v, atom);
                }
            }
        }
        if let Some(partners) = self.bwd.remove(&atom) {
            removed += partners.len();
            for p in partners {
                if let Some(v) = self.fwd.get_mut(&p) {
                    remove_sorted(v, atom);
                }
            }
        }
        self.count -= removed;
        removed
    }

    /// Number of links in the occurrence.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the occurrence is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate all links as oriented `(side0, side1)` pairs, in sorted order
    /// of `side0` then `side1` (deterministic).
    pub fn iter_oriented(&self) -> impl Iterator<Item = (AtomId, AtomId)> + '_ {
        let mut keys: Vec<AtomId> = self.fwd.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter().flat_map(move |a| {
            self.fwd[&a].iter().map(move |&b| (a, b))
        })
    }

    /// Iterate all links as normalized unordered [`LinkPair`]s.
    pub fn iter_pairs(&self) -> impl Iterator<Item = LinkPair> + '_ {
        self.iter_oriented().map(|(a, b)| LinkPair::new(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::AtomTypeId;

    fn a(slot: u32) -> AtomId {
        AtomId::new(AtomTypeId(0), slot)
    }
    fn b(slot: u32) -> AtomId {
        AtomId::new(AtomTypeId(1), slot)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = LinkStore::new();
        assert!(s.insert(a(1), b(2)));
        assert!(!s.insert(a(1), b(2)), "set semantics");
        assert!(s.contains(a(1), b(2)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(a(1), b(2)));
        assert!(!s.remove(a(1), b(2)));
        assert!(s.is_empty());
    }

    #[test]
    fn partners_sorted() {
        let mut s = LinkStore::new();
        s.insert(a(1), b(5));
        s.insert(a(1), b(2));
        s.insert(a(1), b(9));
        assert_eq!(s.partners_fwd(a(1)), &[b(2), b(5), b(9)]);
        assert_eq!(s.partners_bwd(b(5)), &[a(1)]);
        assert_eq!(s.degree_fwd(a(1)), 3);
        assert_eq!(s.degree_bwd(b(2)), 1);
    }

    #[test]
    fn symmetric_view_non_reflexive() {
        let mut s = LinkStore::new();
        s.insert(a(1), b(2));
        assert_eq!(s.partners_sym(a(1)), vec![b(2)]);
        assert_eq!(s.partners_sym(b(2)), vec![a(1)]);
    }

    #[test]
    fn symmetric_view_reflexive_merges_sides() {
        // reflexive link type: both endpoints in type 0
        let mut s = LinkStore::new();
        s.insert(a(1), a(2)); // 1 super of 2
        s.insert(a(3), a(1)); // 3 super of 1
        let sym = s.partners_sym(a(1));
        assert_eq!(sym, vec![a(2), a(3)]);
        assert_eq!(s.partners_fwd(a(1)), &[a(2)]);
        assert_eq!(s.partners_bwd(a(1)), &[a(3)]);
    }

    #[test]
    fn symmetric_view_dedups_bidirectional_pair() {
        let mut s = LinkStore::new();
        s.insert(a(1), a(2));
        s.insert(a(2), a(1));
        assert_eq!(s.partners_sym(a(1)), vec![a(2)]);
        assert_eq!(s.len(), 2, "two oriented links");
    }

    #[test]
    fn remove_atom_cascades_both_sides() {
        let mut s = LinkStore::new();
        s.insert(a(1), b(1));
        s.insert(a(1), b(2));
        s.insert(a(2), b(1));
        assert_eq!(s.remove_atom(b(1)), 2);
        assert_eq!(s.len(), 1);
        assert!(s.contains(a(1), b(2)));
        assert!(!s.contains(a(1), b(1)));
        assert_eq!(s.partners_fwd(a(2)), &[] as &[AtomId]);
    }

    #[test]
    fn remove_self_link() {
        let mut s = LinkStore::new();
        s.insert(a(1), a(1));
        assert_eq!(s.len(), 1);
        // a self link sits in fwd[a1] and bwd[a1]; it is one link and must
        // be counted once when the atom goes away
        assert_eq!(s.remove_atom(a(1)), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn iter_oriented_deterministic() {
        let mut s = LinkStore::new();
        s.insert(a(2), b(1));
        s.insert(a(1), b(2));
        s.insert(a(1), b(1));
        let links: Vec<(AtomId, AtomId)> = s.iter_oriented().collect();
        assert_eq!(links, vec![(a(1), b(1)), (a(1), b(2)), (a(2), b(1))]);
    }

    #[test]
    fn iter_pairs_normalized() {
        let mut s = LinkStore::new();
        s.insert(a(1), b(1));
        let pairs: Vec<LinkPair> = s.iter_pairs().collect();
        assert_eq!(pairs, vec![LinkPair::new(b(1), a(1))]);
    }
}
