#![forbid(unsafe_code)]

//! # mad-storage — the atom-network storage engine
//!
//! This crate is the *occurrence* side of the MAD model: it stores atom-type
//! occurrences (sets of atoms) and link-type occurrences (sets of symmetric
//! links) and maintains the invariants §3.1 of the paper highlights as an
//! advantage over the relational model:
//!
//! * **referential integrity "(!)"** — a link can only connect existing
//!   atoms, and deleting an atom removes all its links, so there are never
//!   dangling references;
//! * **cardinality restrictions** — extended link-type definitions may bound
//!   how many partners an atom has per link type and side;
//! * **symmetry** — every link is navigable from both endpoints, which is
//!   what lets the same database serve `state→area→edge→point` and
//!   `point→edge→(area→state, net→river)` (Fig. 2).
//!
//! Architecturally this crate is the "basic component" of the PRIMA
//! prototype (§5): an atom-oriented interface on which the molecule
//! processing of `mad-core` is layered.
//!
//! One deliberate refinement of the formalism: Def. 2 models a link as an
//! *unsorted* pair, which is ambiguous for **reflexive** link types (both
//! endpoints the same atom type — e.g. `composition` on `parts`). We store
//! each link with its side-0/side-1 orientation and expose both symmetric
//! and per-side navigation; for non-reflexive link types the two views
//! coincide with the paper's, and for reflexive ones the orientation is what
//! makes the super-component vs. sub-component views of §3.1 well-defined.

pub mod atom_store;
pub mod csr;
pub mod database;
pub mod epoch;
pub mod index;
pub mod link_store;
mod merge;
pub mod snapshot;
pub mod stats;

pub use atom_store::AtomStore;
pub use csr::{CsrAdjacency, CsrSnapshot};
pub use database::Database;
pub use epoch::EpochCell;
pub use index::{AttrIndex, IndexKind};
pub use link_store::LinkStore;
pub use snapshot::{load_json, save_json, DatabaseSnapshot};
pub use stats::DatabaseStats;
