//! Storage for one atom-type occurrence (`av` of Def. 1).
//!
//! Atoms are stored slot-addressed; slots are never reused so that an
//! [`AtomId`] stays valid (or verifiably dead) for the lifetime of the
//! database. Deletion leaves a tombstone; iteration skips tombstones.

use mad_model::{AtomId, AtomTypeId, Value};

/// The tuple store backing one atom type.
#[derive(Clone, Debug, Default)]
pub struct AtomStore {
    rows: Vec<Option<Box<[Value]>>>,
    live: usize,
}

impl AtomStore {
    /// An empty store.
    pub fn new() -> Self {
        AtomStore::default()
    }

    /// An empty store with reserved capacity (bulk loads).
    pub fn with_capacity(n: usize) -> Self {
        AtomStore {
            rows: Vec::with_capacity(n),
            live: 0,
        }
    }

    /// Append an atom, returning its slot.
    pub fn insert(&mut self, tuple: Vec<Value>) -> u32 {
        let slot = self.rows.len() as u32;
        self.rows.push(Some(tuple.into_boxed_slice()));
        self.live += 1;
        slot
    }

    /// Fetch the tuple in `slot`, if alive.
    #[inline]
    pub fn get(&self, slot: u32) -> Option<&[Value]> {
        self.rows
            .get(slot as usize)
            .and_then(|r| r.as_deref())
    }

    /// Mutable access to the tuple in `slot`, if alive.
    #[inline]
    pub fn get_mut(&mut self, slot: u32) -> Option<&mut [Value]> {
        self.rows
            .get_mut(slot as usize)
            .and_then(|r| r.as_deref_mut())
    }

    /// Tombstone the atom in `slot`; returns the removed tuple if it was
    /// alive.
    pub fn remove(&mut self, slot: u32) -> Option<Box<[Value]>> {
        let row = self.rows.get_mut(slot as usize)?;
        let removed = row.take();
        if removed.is_some() {
            self.live -= 1;
        }
        removed
    }

    /// Is `slot` alive?
    #[inline]
    pub fn contains(&self, slot: u32) -> bool {
        self.get(slot).is_some()
    }

    /// Number of live atoms.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live atoms remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + tombstones).
    #[inline]
    pub fn slots(&self) -> usize {
        self.rows.len()
    }

    /// Iterate live atoms as `(slot, tuple)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[Value])> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_deref().map(|t| (i as u32, t)))
    }

    /// Iterate live atoms of a given atom type as `(AtomId, tuple)`.
    pub fn iter_ids(&self, ty: AtomTypeId) -> impl Iterator<Item = (AtomId, &[Value])> {
        self.iter().map(move |(slot, t)| (AtomId::new(ty, slot), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(i: i64) -> Vec<Value> {
        vec![Value::Int(i)]
    }

    #[test]
    fn insert_get() {
        let mut s = AtomStore::new();
        let a = s.insert(tup(1));
        let b = s.insert(tup(2));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(s.get(a).unwrap()[0], Value::Int(1));
        assert_eq!(s.get(b).unwrap()[0], Value::Int(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_leaves_tombstone_and_no_slot_reuse() {
        let mut s = AtomStore::new();
        let a = s.insert(tup(1));
        assert!(s.remove(a).is_some());
        assert!(s.remove(a).is_none(), "double delete is a no-op");
        assert!(!s.contains(a));
        assert_eq!(s.len(), 0);
        let b = s.insert(tup(2));
        assert_ne!(a, b, "slots are never reused");
        assert_eq!(s.slots(), 2);
    }

    #[test]
    fn get_out_of_range() {
        let s = AtomStore::new();
        assert!(s.get(7).is_none());
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut s = AtomStore::new();
        let _a = s.insert(tup(1));
        let b = s.insert(tup(2));
        let _c = s.insert(tup(3));
        s.remove(b);
        let vals: Vec<i64> = s.iter().map(|(_, t)| t[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![1, 3]);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s = AtomStore::new();
        let a = s.insert(tup(1));
        s.get_mut(a).unwrap()[0] = Value::Int(99);
        assert_eq!(s.get(a).unwrap()[0], Value::Int(99));
    }

    #[test]
    fn iter_ids_carries_type() {
        let mut s = AtomStore::new();
        s.insert(tup(1));
        let ty = AtomTypeId(4);
        let ids: Vec<AtomId> = s.iter_ids(ty).map(|(id, _)| id).collect();
        assert_eq!(ids, vec![AtomId::new(ty, 0)]);
    }
}
