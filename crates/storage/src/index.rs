//! Secondary indexes over atom attributes.
//!
//! The PRIMA prototype (§5) evaluates root restrictions through its
//! atom-oriented interface before molecules are built; these indexes are the
//! mechanism that makes that *restriction pushdown* pay off (benchmark B4).
//! Two kinds are provided:
//!
//! * [`IndexKind::Hash`] — equality lookups, `O(1)` expected,
//! * [`IndexKind::Ordered`] — a BTree supporting range scans.
//!
//! Indexes are maintained incrementally by [`crate::Database`] on every
//! insert / delete / update of an indexed atom type.

use mad_model::{AtomId, AtomTypeId, FxHashMap, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Which data structure backs an [`AttrIndex`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash index: equality only.
    Hash,
    /// Ordered index: equality and ranges.
    Ordered,
}

/// A secondary index over one attribute of one atom type.
#[derive(Clone, Debug)]
pub struct AttrIndex {
    /// The indexed atom type.
    pub ty: AtomTypeId,
    /// The indexed attribute position.
    pub attr: usize,
    /// The index kind.
    pub kind: IndexKind,
    hash: FxHashMap<Value, Vec<AtomId>>,
    ordered: BTreeMap<Value, Vec<AtomId>>,
}

fn posting_insert(v: &mut Vec<AtomId>, id: AtomId) {
    if let Err(pos) = v.binary_search(&id) {
        v.insert(pos, id);
    }
}

fn posting_remove(v: &mut Vec<AtomId>, id: AtomId) -> bool {
    match v.binary_search(&id) {
        Ok(pos) => {
            v.remove(pos);
            true
        }
        Err(_) => false,
    }
}

impl AttrIndex {
    /// An empty index for `(ty, attr)`.
    pub fn new(ty: AtomTypeId, attr: usize, kind: IndexKind) -> Self {
        AttrIndex {
            ty,
            attr,
            kind,
            hash: FxHashMap::default(),
            ordered: BTreeMap::new(),
        }
    }

    /// Register `id` under `key`.
    pub fn insert(&mut self, key: &Value, id: AtomId) {
        match self.kind {
            IndexKind::Hash => {
                posting_insert(self.hash.entry(key.clone()).or_default(), id)
            }
            IndexKind::Ordered => {
                posting_insert(self.ordered.entry(key.clone()).or_default(), id)
            }
        }
    }

    /// Unregister `id` from `key`.
    pub fn remove(&mut self, key: &Value, id: AtomId) {
        match self.kind {
            IndexKind::Hash => {
                if let Some(v) = self.hash.get_mut(key) {
                    posting_remove(v, id);
                    if v.is_empty() {
                        self.hash.remove(key);
                    }
                }
            }
            IndexKind::Ordered => {
                if let Some(v) = self.ordered.get_mut(key) {
                    posting_remove(v, id);
                    if v.is_empty() {
                        self.ordered.remove(key);
                    }
                }
            }
        }
    }

    /// Equality lookup: atoms whose attribute equals `key` (sorted).
    pub fn lookup_eq(&self, key: &Value) -> &[AtomId] {
        match self.kind {
            IndexKind::Hash => self.hash.get(key).map_or(&[], |v| v.as_slice()),
            IndexKind::Ordered => self.ordered.get(key).map_or(&[], |v| v.as_slice()),
        }
    }

    /// Range lookup (ordered indexes only; a hash index returns `None` to
    /// signal the caller must fall back to a scan).
    pub fn lookup_range(
        &self,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Option<Vec<AtomId>> {
        if self.kind != IndexKind::Ordered {
            return None;
        }
        let mut out = Vec::new();
        for (_, postings) in self.ordered.range::<Value, _>((lo, hi)) {
            out.extend_from_slice(postings);
        }
        out.sort_unstable();
        Some(out)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match self.kind {
            IndexKind::Hash => self.hash.len(),
            IndexKind::Ordered => self.ordered.len(),
        }
    }

    /// Total number of entries.
    pub fn entries(&self) -> usize {
        match self.kind {
            IndexKind::Hash => self.hash.values().map(Vec::len).sum(),
            IndexKind::Ordered => self.ordered.values().map(Vec::len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(slot: u32) -> AtomId {
        AtomId::new(AtomTypeId(0), slot)
    }

    #[test]
    fn hash_index_eq() {
        let mut idx = AttrIndex::new(AtomTypeId(0), 0, IndexKind::Hash);
        idx.insert(&Value::from("SP"), id(1));
        idx.insert(&Value::from("SP"), id(3));
        idx.insert(&Value::from("MG"), id(2));
        assert_eq!(idx.lookup_eq(&Value::from("SP")), &[id(1), id(3)]);
        assert_eq!(idx.lookup_eq(&Value::from("RJ")), &[] as &[AtomId]);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.entries(), 3);
    }

    #[test]
    fn hash_index_rejects_range() {
        let idx = AttrIndex::new(AtomTypeId(0), 0, IndexKind::Hash);
        assert!(idx
            .lookup_range(Bound::Unbounded, Bound::Unbounded)
            .is_none());
    }

    #[test]
    fn ordered_index_range() {
        let mut idx = AttrIndex::new(AtomTypeId(0), 1, IndexKind::Ordered);
        for (i, v) in [100i64, 500, 900, 1200, 2000].iter().enumerate() {
            idx.insert(&Value::Int(*v), id(i as u32));
        }
        let hits = idx
            .lookup_range(Bound::Excluded(&Value::Int(500)), Bound::Unbounded)
            .unwrap();
        assert_eq!(hits, vec![id(2), id(3), id(4)]);
        let hits = idx
            .lookup_range(
                Bound::Included(&Value::Int(500)),
                Bound::Included(&Value::Int(1200)),
            )
            .unwrap();
        assert_eq!(hits, vec![id(1), id(2), id(3)]);
    }

    #[test]
    fn remove_cleans_empty_postings() {
        let mut idx = AttrIndex::new(AtomTypeId(0), 0, IndexKind::Ordered);
        idx.insert(&Value::Int(1), id(1));
        idx.remove(&Value::Int(1), id(1));
        assert_eq!(idx.distinct_keys(), 0);
        assert_eq!(idx.lookup_eq(&Value::Int(1)), &[] as &[AtomId]);
        // removing again is harmless
        idx.remove(&Value::Int(1), id(1));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut idx = AttrIndex::new(AtomTypeId(0), 0, IndexKind::Hash);
        idx.insert(&Value::Int(1), id(1));
        idx.insert(&Value::Int(1), id(1));
        assert_eq!(idx.entries(), 1);
    }
}
