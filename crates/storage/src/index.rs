//! Secondary indexes over atom attributes.
//!
//! The PRIMA prototype (§5) evaluates root restrictions through its
//! atom-oriented interface before molecules are built; these indexes are the
//! mechanism that makes that *restriction pushdown* pay off (benchmark B4).
//! Two kinds are provided:
//!
//! * [`IndexKind::Hash`] — equality lookups, `O(1)` expected,
//! * [`IndexKind::Ordered`] — a BTree supporting range scans.
//!
//! Indexes are maintained incrementally by [`crate::Database`] on every
//! insert / delete / update of an indexed atom type.

use mad_model::{AtomId, AtomTypeId, FxHashMap, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Which data structure backs an [`AttrIndex`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash index: equality only.
    Hash,
    /// Ordered index: equality and ranges.
    Ordered,
}

/// The data structure behind an [`AttrIndex`] — exactly one per index, so
/// an equality-only index carries no dead BTree (and vice versa).
#[derive(Clone, Debug)]
enum Backend {
    /// Equality lookups only.
    Hash(FxHashMap<Value, Vec<AtomId>>),
    /// Equality and range lookups.
    Ordered(BTreeMap<Value, Vec<AtomId>>),
}

/// A secondary index over one attribute of one atom type.
#[derive(Clone, Debug)]
pub struct AttrIndex {
    /// The indexed atom type.
    pub ty: AtomTypeId,
    /// The indexed attribute position.
    pub attr: usize,
    backend: Backend,
}

fn posting_insert(v: &mut Vec<AtomId>, id: AtomId) {
    if let Err(pos) = v.binary_search(&id) {
        v.insert(pos, id);
    }
}

fn posting_remove(v: &mut Vec<AtomId>, id: AtomId) -> bool {
    match v.binary_search(&id) {
        Ok(pos) => {
            v.remove(pos);
            true
        }
        Err(_) => false,
    }
}

impl AttrIndex {
    /// An empty index for `(ty, attr)`.
    pub fn new(ty: AtomTypeId, attr: usize, kind: IndexKind) -> Self {
        AttrIndex {
            ty,
            attr,
            backend: match kind {
                IndexKind::Hash => Backend::Hash(FxHashMap::default()),
                IndexKind::Ordered => Backend::Ordered(BTreeMap::new()),
            },
        }
    }

    /// The index kind (derived from the backend).
    pub fn kind(&self) -> IndexKind {
        match self.backend {
            Backend::Hash(_) => IndexKind::Hash,
            Backend::Ordered(_) => IndexKind::Ordered,
        }
    }

    /// Register `id` under `key`.
    pub fn insert(&mut self, key: &Value, id: AtomId) {
        match &mut self.backend {
            Backend::Hash(map) => posting_insert(map.entry(key.clone()).or_default(), id),
            Backend::Ordered(map) => posting_insert(map.entry(key.clone()).or_default(), id),
        }
    }

    /// Unregister `id` from `key`.
    pub fn remove(&mut self, key: &Value, id: AtomId) {
        match &mut self.backend {
            Backend::Hash(map) => {
                if let Some(v) = map.get_mut(key) {
                    posting_remove(v, id);
                    if v.is_empty() {
                        map.remove(key);
                    }
                }
            }
            Backend::Ordered(map) => {
                if let Some(v) = map.get_mut(key) {
                    posting_remove(v, id);
                    if v.is_empty() {
                        map.remove(key);
                    }
                }
            }
        }
    }

    /// Equality lookup: atoms whose attribute equals `key` (sorted).
    pub fn lookup_eq(&self, key: &Value) -> &[AtomId] {
        match &self.backend {
            Backend::Hash(map) => map.get(key).map_or(&[], |v| v.as_slice()),
            Backend::Ordered(map) => map.get(key).map_or(&[], |v| v.as_slice()),
        }
    }

    /// Range lookup (ordered indexes only; a hash index returns `None` to
    /// signal the caller must fall back to a scan). The postings lists are
    /// already sorted per key, so the result is produced by a k-way merge —
    /// no re-sort of the combined list.
    pub fn lookup_range(
        &self,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Option<Vec<AtomId>> {
        let Backend::Ordered(map) = &self.backend else {
            return None;
        };
        let lists: Vec<&[AtomId]> = map
            .range::<Value, _>((lo, hi))
            .map(|(_, postings)| postings.as_slice())
            .collect();
        Some(merge_sorted_postings(&lists))
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match &self.backend {
            Backend::Hash(map) => map.len(),
            Backend::Ordered(map) => map.len(),
        }
    }

    /// Total number of entries.
    pub fn entries(&self) -> usize {
        match &self.backend {
            Backend::Hash(map) => map.values().map(Vec::len).sum(),
            Backend::Ordered(map) => map.values().map(Vec::len).sum(),
        }
    }
}

/// Merge sorted, pairwise-disjoint postings lists into one sorted list.
///
/// A binary min-heap over the list heads gives `O(n log k)` for `k` lists —
/// against the `O(n log n)` of concatenating and re-sorting, with `n` the
/// total number of postings.
fn merge_sorted_postings(lists: &[&[AtomId]]) -> Vec<AtomId> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    match lists.len() {
        0 => return Vec::new(),
        1 => return lists[0].to_vec(),
        _ => {}
    }
    let total = lists.iter().map(|l| l.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: BinaryHeap<Reverse<(AtomId, usize, usize)>> = lists
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.is_empty())
        .map(|(li, l)| Reverse((l[0], li, 0)))
        .collect();
    while let Some(Reverse((id, li, pos))) = heap.pop() {
        out.push(id);
        if let Some(&next) = lists[li].get(pos + 1) {
            heap.push(Reverse((next, li, pos + 1)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(slot: u32) -> AtomId {
        AtomId::new(AtomTypeId(0), slot)
    }

    #[test]
    fn hash_index_eq() {
        let mut idx = AttrIndex::new(AtomTypeId(0), 0, IndexKind::Hash);
        idx.insert(&Value::from("SP"), id(1));
        idx.insert(&Value::from("SP"), id(3));
        idx.insert(&Value::from("MG"), id(2));
        assert_eq!(idx.lookup_eq(&Value::from("SP")), &[id(1), id(3)]);
        assert_eq!(idx.lookup_eq(&Value::from("RJ")), &[] as &[AtomId]);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.entries(), 3);
    }

    #[test]
    fn hash_index_rejects_range() {
        let idx = AttrIndex::new(AtomTypeId(0), 0, IndexKind::Hash);
        assert!(idx
            .lookup_range(Bound::Unbounded, Bound::Unbounded)
            .is_none());
    }

    #[test]
    fn ordered_index_range() {
        let mut idx = AttrIndex::new(AtomTypeId(0), 1, IndexKind::Ordered);
        for (i, v) in [100i64, 500, 900, 1200, 2000].iter().enumerate() {
            idx.insert(&Value::Int(*v), id(i as u32));
        }
        let hits = idx
            .lookup_range(Bound::Excluded(&Value::Int(500)), Bound::Unbounded)
            .unwrap();
        assert_eq!(hits, vec![id(2), id(3), id(4)]);
        let hits = idx
            .lookup_range(
                Bound::Included(&Value::Int(500)),
                Bound::Included(&Value::Int(1200)),
            )
            .unwrap();
        assert_eq!(hits, vec![id(1), id(2), id(3)]);
    }

    #[test]
    fn range_merge_interleaves_postings() {
        let mut idx = AttrIndex::new(AtomTypeId(0), 0, IndexKind::Ordered);
        // postings whose slot orders interleave across keys
        for (v, slot) in [(1i64, 5u32), (1, 9), (2, 2), (2, 7), (3, 0), (3, 8)] {
            idx.insert(&Value::Int(v), id(slot));
        }
        let hits = idx
            .lookup_range(Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        assert_eq!(hits, vec![id(0), id(2), id(5), id(7), id(8), id(9)]);
        assert_eq!(idx.kind(), IndexKind::Ordered);
    }

    #[test]
    fn remove_cleans_empty_postings() {
        let mut idx = AttrIndex::new(AtomTypeId(0), 0, IndexKind::Ordered);
        idx.insert(&Value::Int(1), id(1));
        idx.remove(&Value::Int(1), id(1));
        assert_eq!(idx.distinct_keys(), 0);
        assert_eq!(idx.lookup_eq(&Value::Int(1)), &[] as &[AtomId]);
        // removing again is harmless
        idx.remove(&Value::Int(1), id(1));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut idx = AttrIndex::new(AtomTypeId(0), 0, IndexKind::Hash);
        idx.insert(&Value::Int(1), id(1));
        idx.insert(&Value::Int(1), id(1));
        assert_eq!(idx.entries(), 1);
    }
}
