//! The database `DB = <AT, LT>` of Def. 3, with occurrences.
//!
//! [`Database`] couples a growable [`Schema`] with one [`AtomStore`] per atom
//! type and one [`LinkStore`] per link type, and enforces the two integrity
//! guarantees §3.1 contrasts with the relational model:
//!
//! 1. **Referential integrity**: links connect only existing atoms of the
//!    right types; deleting an atom cascades into all incident links; there
//!    are no dangling references, ever.
//! 2. **Cardinality restrictions** from extended link-type definitions:
//!    `max` bounds are enforced eagerly on [`Database::connect`], `min`
//!    bounds are checked on demand via
//!    [`Database::check_min_cardinalities`] (they can only be validated once
//!    loading is complete).
//!
//! The schema grows at runtime — atom-type operations and the propagation
//! function `prop` (Def. 9) add derived atom and link types — which is
//! exactly the "correspondingly enlarged database" DB′ the closure theorems
//! of the paper quantify over.

use crate::atom_store::AtomStore;
use crate::csr::CsrSnapshot;
use crate::index::{AttrIndex, IndexKind};
use crate::link_store::LinkStore;
use mad_model::{
    AtomId, AtomTypeDef, AtomTypeId, FxHashMap, LinkTypeDef, LinkTypeId, MadError, Result,
    Schema, Value,
};
use std::ops::Bound;
use std::sync::{Arc, Mutex};

/// Traversal direction through a link type.
///
/// For non-reflexive link types `Fwd`/`Bwd` are determined by the endpoint
/// types and `Sym` coincides with whichever side applies. For reflexive link
/// types (e.g. `composition` on `parts`) the three differ: `Fwd` is the
/// super→sub view, `Bwd` the sub→super view, and `Sym` the union (§3.1:
/// "Exploiting the link type's symmetry it is now easy to evaluate either
/// the super-component view or only the sub-component view").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// side 0 → side 1.
    Fwd,
    /// side 1 → side 0.
    Bwd,
    /// Both orientations merged.
    Sym,
}

/// A violation reported by [`Database::check_min_cardinalities`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCardViolation {
    /// The violating link type.
    pub link_type: LinkTypeId,
    /// The atom with too few partners.
    pub atom: AtomId,
    /// Which side of the link type the atom is on.
    pub side: usize,
    /// How many partners it has.
    pub found: u32,
    /// How many the extended link-type definition requires.
    pub required: u32,
}

/// Version-stamped cache for the read-optimized [`CsrSnapshot`], plus the
/// statistics of the most recent (incremental) rebuild.
///
/// Cloning a database **shares** the cached snapshot (it is an immutable
/// `Arc`, keyed by the structural version the clone inherits): a
/// transaction fork starts with a warm cache, and its first post-DML
/// rebuild is incremental against the shared image. The clones' caches are
/// independent `Mutex`es, so forks that diverge rebuild privately and can
/// never see each other's adjacency.
#[derive(Debug, Default)]
struct CsrCache(Mutex<CsrCacheState>);

#[derive(Clone, Debug, Default)]
struct CsrCacheState {
    /// The cached snapshot and the structural version it was built at.
    snap: Option<(u64, Arc<CsrSnapshot>)>,
    /// `(rebuilt, total)` link-type CSR pairs of the last rebuild.
    last_rebuild: Option<(usize, usize)>,
}

impl Clone for CsrCache {
    fn clone(&self) -> Self {
        CsrCache(Mutex::new(self.0.lock().unwrap().clone()))
    }
}

/// A MAD database: schema plus atom-type and link-type occurrences.
///
/// Every bulky component (schema, per-type atom and link stores, secondary
/// indexes) lives behind an [`Arc`], and DML clones a store lazily via
/// [`Arc::make_mut`] on first write. `Database::clone` is therefore **O(number
/// of types)**, not O(data): a clone is a *copy-on-write fork* that shares
/// all untouched stores with its origin. This is the substrate of the
/// `mad_txn` transaction overlay — a transaction's fork physically *is* the
/// committed image plus privately-rewritten stores for exactly the touched
/// types — and it makes an `Arc<Database>` a cheap immutable published
/// snapshot for concurrent readers (the type is `Sync`; the only interior
/// mutability is the mutex-guarded CSR cache).
#[derive(Clone, Debug, Default)]
pub struct Database {
    schema: Arc<Schema>,
    atoms: Vec<Arc<AtomStore>>,
    links: Vec<Arc<LinkStore>>,
    indexes: Vec<Arc<AttrIndex>>,
    index_map: FxHashMap<(AtomTypeId, usize), usize>,
    /// Bumped by every **structural** change (atom/link DML, DDL); keys the
    /// CSR snapshot cache. Attribute-only DML bumps `attr_version` instead
    /// — it cannot change adjacency, so it must not invalidate the
    /// snapshot.
    structural_version: u64,
    /// Bumped by attribute-only DML (`update_attr`).
    attr_version: u64,
    /// Per link type: bumped only when that link type's pair set changes
    /// (successful connect/disconnect, delete cascade). Keys the
    /// incremental CSR rebuild ([`CsrSnapshot::rebuild`]).
    link_versions: Vec<u64>,
    csr: CsrCache,
}

impl Database {
    /// A database over the given schema, with empty occurrences.
    pub fn new(schema: Schema) -> Self {
        let atoms = (0..schema.atom_type_count())
            .map(|_| Arc::new(AtomStore::new()))
            .collect();
        let links = (0..schema.link_type_count())
            .map(|_| Arc::new(LinkStore::new()))
            .collect();
        let link_versions = vec![0; schema.link_type_count()];
        Database {
            schema: Arc::new(schema),
            atoms,
            links,
            indexes: Vec::new(),
            index_map: FxHashMap::default(),
            structural_version: 0,
            attr_version: 0,
            link_versions,
            csr: CsrCache::default(),
        }
    }

    /// An empty database with an empty schema.
    pub fn empty() -> Self {
        Database::new(Schema::new())
    }

    /// The schema (read-only; DDL goes through the methods below so that the
    /// occurrence stores stay in sync).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Add an atom type (with empty occurrence).
    pub fn add_atom_type(&mut self, def: AtomTypeDef) -> Result<AtomTypeId> {
        let id = Arc::make_mut(&mut self.schema).add_atom_type(def)?;
        self.atoms.push(Arc::new(AtomStore::new()));
        self.structural_version += 1;
        Ok(id)
    }

    /// Add a link type (with empty occurrence).
    pub fn add_link_type(&mut self, def: LinkTypeDef) -> Result<LinkTypeId> {
        let id = Arc::make_mut(&mut self.schema).add_link_type(def)?;
        self.links.push(Arc::new(LinkStore::new()));
        self.link_versions.push(0);
        self.structural_version += 1;
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Atom DML
    // ------------------------------------------------------------------

    /// Insert an atom; the tuple is validated (and coerced) against the
    /// atom-type description.
    pub fn insert_atom(&mut self, ty: AtomTypeId, tuple: Vec<Value>) -> Result<AtomId> {
        let id = self.insert_atom_unstamped(ty, tuple)?;
        // a fresh slot grows the type's slot horizon but cannot carry
        // links yet: structural, but no per-link-type bump
        self.structural_version += 1;
        Ok(id)
    }

    /// The shared insert path *without* the structural-version bump, so that
    /// [`Database::insert_atoms`] can stamp a whole batch once.
    fn insert_atom_unstamped(&mut self, ty: AtomTypeId, tuple: Vec<Value>) -> Result<AtomId> {
        let def = self.schema.atom_type(ty);
        let tuple = def.check_tuple(tuple)?;
        let slot = Arc::make_mut(&mut self.atoms[ty.0 as usize]).insert(tuple);
        let id = AtomId::new(ty, slot);
        // maintain indexes
        for idx_pos in self.indexes_of_type(ty) {
            let attr = self.indexes[idx_pos].attr;
            let key = self.atoms[ty.0 as usize].get(slot).unwrap()[attr].clone();
            Arc::make_mut(&mut self.indexes[idx_pos]).insert(&key, id);
        }
        Ok(id)
    }

    /// Insert many atoms of one type; returns their ids in order.
    ///
    /// The structural version is bumped **once per batch**, not once per
    /// atom: fresh slots carry no links, so the whole bulk load invalidates
    /// the CSR snapshot cache exactly as much as a single insert would —
    /// loaders no longer thrash snapshot invalidation. If a tuple fails
    /// validation mid-batch, the atoms inserted before it remain (the same
    /// partial-application contract as the per-atom loop this replaces) and
    /// the version is still bumped so no stale snapshot can be served.
    pub fn insert_atoms(
        &mut self,
        ty: AtomTypeId,
        tuples: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Vec<AtomId>> {
        let mut ids = Vec::new();
        for t in tuples {
            match self.insert_atom_unstamped(ty, t) {
                Ok(id) => ids.push(id),
                Err(e) => {
                    if !ids.is_empty() {
                        self.structural_version += 1;
                    }
                    return Err(e);
                }
            }
        }
        if !ids.is_empty() {
            self.structural_version += 1;
        }
        Ok(ids)
    }

    /// Delete an atom, **cascading** into every link incident to it (the
    /// no-dangling-references guarantee). Returns the number of links
    /// removed.
    pub fn delete_atom(&mut self, id: AtomId) -> Result<usize> {
        if !self.atom_exists(id) {
            return Err(MadError::integrity(format!("atom {id} does not exist")));
        }
        let removed_tuple = Arc::make_mut(&mut self.atoms[id.ty.0 as usize])
            .remove(id.slot)
            .expect("existence checked above");
        for idx_pos in self.indexes_of_type(id.ty) {
            let idx = Arc::make_mut(&mut self.indexes[idx_pos]);
            idx.remove(&removed_tuple[idx.attr], id);
        }
        let mut removed_links = 0;
        // `link_types_of` lists each incident link type once (reflexive
        // types included), and `remove_atom` clears both orientations in
        // one call, so every touched link type is stamped exactly once.
        for lt in self.schema.link_types_of(id.ty).to_vec() {
            let removed = Arc::make_mut(&mut self.links[lt.0 as usize]).remove_atom(id);
            if removed > 0 {
                self.link_versions[lt.0 as usize] += 1;
            }
            removed_links += removed;
        }
        // exactly one structural bump per delete (cascade included), so the
        // next `csr_snapshot` call re-freezes the touched pairs and a stale
        // adjacency image is never served.
        self.structural_version += 1;
        Ok(removed_links)
    }

    /// Update one attribute of an atom.
    pub fn update_attr(&mut self, id: AtomId, attr: usize, value: Value) -> Result<()> {
        let def = self.schema.atom_type(id.ty);
        let attr_def = def.attrs.get(attr).ok_or_else(|| {
            MadError::unknown("attribute index", format!("{attr} of `{}`", def.name))
        })?;
        if !value.conforms_to(attr_def.ty) {
            return Err(MadError::TypeMismatch {
                context: format!("update of `{}`.`{}`", def.name, attr_def.name),
                expected: attr_def.ty.name().to_owned(),
                found: value
                    .attr_type()
                    .map(|t| t.name().to_owned())
                    .unwrap_or_else(|| "NULL".to_owned()),
            });
        }
        let value = value.coerce(attr_def.ty);
        if !self.atom_exists(id) {
            return Err(MadError::integrity(format!("atom {id} does not exist")));
        }
        let store = Arc::make_mut(&mut self.atoms[id.ty.0 as usize]);
        let row = store.get_mut(id.slot).expect("existence checked above");
        let old = std::mem::replace(&mut row[attr], value.clone());
        if let Some(&idx_pos) = self.index_map.get(&(id.ty, attr)) {
            let idx = Arc::make_mut(&mut self.indexes[idx_pos]);
            idx.remove(&old, id);
            idx.insert(&value, id);
        }
        // attribute-only DML: adjacency is untouched, so this must not
        // invalidate the CSR snapshot (structural version stays put)
        self.attr_version += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Atom access
    // ------------------------------------------------------------------

    /// Is `id` a live atom?
    pub fn atom_exists(&self, id: AtomId) -> bool {
        (id.ty.0 as usize) < self.atoms.len() && self.atoms[id.ty.0 as usize].contains(id.slot)
    }

    /// The tuple of atom `id`.
    pub fn atom(&self, id: AtomId) -> Result<&[Value]> {
        self.atoms
            .get(id.ty.0 as usize)
            .and_then(|s| s.get(id.slot))
            .ok_or_else(|| MadError::integrity(format!("atom {id} does not exist")))
    }

    /// One attribute value of atom `id`.
    pub fn atom_value(&self, id: AtomId, attr: usize) -> Result<&Value> {
        self.atom(id)?.get(attr).ok_or_else(|| {
            MadError::unknown("attribute index", format!("{attr} of atom {id}"))
        })
    }

    /// Iterate the occurrence of atom type `ty` as `(id, tuple)`.
    pub fn atoms_of(&self, ty: AtomTypeId) -> impl Iterator<Item = (AtomId, &[Value])> {
        self.atoms[ty.0 as usize].iter_ids(ty)
    }

    /// Ids of the occurrence of atom type `ty`, in slot order.
    pub fn atom_ids_of(&self, ty: AtomTypeId) -> Vec<AtomId> {
        self.atoms_of(ty).map(|(id, _)| id).collect()
    }

    /// Number of live atoms of type `ty`.
    pub fn atom_count(&self, ty: AtomTypeId) -> usize {
        self.atoms[ty.0 as usize].len()
    }

    /// Total number of live atoms across all types.
    pub fn total_atoms(&self) -> usize {
        self.atoms.iter().map(|s| s.len()).sum()
    }

    // ------------------------------------------------------------------
    // Link DML
    // ------------------------------------------------------------------

    /// Connect two atoms with an **explicit orientation**: `side0` must be
    /// of `ends[0]`, `side1` of `ends[1]`. This is the only way to connect
    /// through a reflexive link type (orientation cannot be inferred).
    /// Returns `false` if the link already existed.
    pub fn connect(&mut self, lt: LinkTypeId, side0: AtomId, side1: AtomId) -> Result<bool> {
        let def = self.schema.link_type(lt);
        if side0.ty != def.ends[0] || side1.ty != def.ends[1] {
            return Err(MadError::integrity(format!(
                "link type `{}` connects `{}` and `{}`, got atoms {side0} and {side1}",
                def.name,
                self.schema.atom_type(def.ends[0]).name,
                self.schema.atom_type(def.ends[1]).name,
            )));
        }
        if !self.atom_exists(side0) {
            return Err(MadError::integrity(format!("atom {side0} does not exist")));
        }
        if !self.atom_exists(side1) {
            return Err(MadError::integrity(format!("atom {side1} does not exist")));
        }
        let store = &self.links[lt.0 as usize];
        if store.contains(side0, side1) {
            return Ok(false);
        }
        // eager max-cardinality enforcement
        if let Some(max) = def.cards[0].max {
            if store.degree_fwd(side0) as u32 >= max {
                return Err(MadError::CardinalityViolation {
                    link_type: def.name.clone(),
                    detail: format!(
                        "atom {side0} already has {} partner(s) on side 0 (max {max})",
                        store.degree_fwd(side0)
                    ),
                });
            }
        }
        if let Some(max) = def.cards[1].max {
            if store.degree_bwd(side1) as u32 >= max {
                return Err(MadError::CardinalityViolation {
                    link_type: def.name.clone(),
                    detail: format!(
                        "atom {side1} already has {} partner(s) on side 1 (max {max})",
                        store.degree_bwd(side1)
                    ),
                });
            }
        }
        // bump only when the insert actually adds a link (mirrors
        // `disconnect`): a no-op connect must not invalidate the cached
        // CSR snapshot
        let added = Arc::make_mut(&mut self.links[lt.0 as usize]).insert(side0, side1);
        if added {
            self.bump_link(lt);
        }
        Ok(added)
    }

    /// Connect two atoms, inferring the orientation from their atom types.
    /// Errors for reflexive link types (use [`Database::connect`]).
    pub fn connect_sym(&mut self, lt: LinkTypeId, a: AtomId, b: AtomId) -> Result<bool> {
        let def = self.schema.link_type(lt);
        if def.is_reflexive() {
            return Err(MadError::integrity(format!(
                "link type `{}` is reflexive; orientation must be explicit",
                def.name
            )));
        }
        if a.ty == def.ends[0] && b.ty == def.ends[1] {
            self.connect(lt, a, b)
        } else if a.ty == def.ends[1] && b.ty == def.ends[0] {
            self.connect(lt, b, a)
        } else {
            Err(MadError::integrity(format!(
                "atoms {a} and {b} do not match the endpoints of link type `{}`",
                def.name
            )))
        }
    }

    /// Remove an oriented link. Returns `false` if it did not exist.
    pub fn disconnect(&mut self, lt: LinkTypeId, side0: AtomId, side1: AtomId) -> Result<bool> {
        let def = self.schema.link_type(lt);
        if side0.ty != def.ends[0] || side1.ty != def.ends[1] {
            return Err(MadError::integrity(format!(
                "atoms {side0}, {side1} do not fit link type `{}`",
                def.name
            )));
        }
        if !self.links[lt.0 as usize].contains(side0, side1) {
            return Ok(false);
        }
        let removed = Arc::make_mut(&mut self.links[lt.0 as usize]).remove(side0, side1);
        if removed {
            self.bump_link(lt);
        }
        Ok(removed)
    }

    /// One link type's pair set changed: bump its stamp and the structural
    /// version.
    fn bump_link(&mut self, lt: LinkTypeId) {
        self.structural_version += 1;
        self.link_versions[lt.0 as usize] += 1;
    }

    // ------------------------------------------------------------------
    // Link access / navigation
    // ------------------------------------------------------------------

    /// Does the oriented link `(side0, side1)` exist?
    pub fn linked(&self, lt: LinkTypeId, side0: AtomId, side1: AtomId) -> bool {
        self.links[lt.0 as usize].contains(side0, side1)
    }

    /// Are `a` and `b` linked in either orientation?
    pub fn linked_sym(&self, lt: LinkTypeId, a: AtomId, b: AtomId) -> bool {
        let s = &self.links[lt.0 as usize];
        s.contains(a, b) || s.contains(b, a)
    }

    /// Partners of `atom` through link type `lt` in the given direction.
    /// `Fwd`/`Bwd` return the stored posting slice; `Sym` merges both.
    pub fn partners(&self, lt: LinkTypeId, atom: AtomId, dir: Direction) -> Vec<AtomId> {
        let s = &self.links[lt.0 as usize];
        match dir {
            Direction::Fwd => s.partners_fwd(atom).to_vec(),
            Direction::Bwd => s.partners_bwd(atom).to_vec(),
            Direction::Sym => s.partners_sym(atom),
        }
    }

    /// Allocation-free partner traversal.
    pub fn for_each_partner(
        &self,
        lt: LinkTypeId,
        atom: AtomId,
        dir: Direction,
        mut f: impl FnMut(AtomId),
    ) {
        let s = &self.links[lt.0 as usize];
        match dir {
            Direction::Fwd => s.partners_fwd(atom).iter().copied().for_each(&mut f),
            Direction::Bwd => s.partners_bwd(atom).iter().copied().for_each(&mut f),
            Direction::Sym => {
                // merged view without building the dedup vec when one side
                // is empty (the common, non-reflexive case)
                let fwd = s.partners_fwd(atom);
                let bwd = s.partners_bwd(atom);
                if bwd.is_empty() {
                    fwd.iter().copied().for_each(&mut f);
                } else if fwd.is_empty() {
                    bwd.iter().copied().for_each(&mut f);
                } else {
                    s.partners_sym(atom).into_iter().for_each(&mut f);
                }
            }
        }
    }

    /// The traversal direction that goes *from* atom type `from` through
    /// link type `lt`: `Fwd` if `from` is side 0, `Bwd` if side 1. Reflexive
    /// link types default to `Fwd` (callers that need the sub→super view or
    /// the symmetric view pass an explicit direction instead).
    pub fn direction_from(&self, lt: LinkTypeId, from: AtomTypeId) -> Result<Direction> {
        let def = self.schema.link_type(lt);
        match def.side_of(from) {
            Some(0) => Ok(Direction::Fwd),
            Some(_) => Ok(Direction::Bwd),
            None => Err(MadError::integrity(format!(
                "atom type `{}` is not an endpoint of link type `{}`",
                self.schema.atom_type(from).name,
                def.name
            ))),
        }
    }

    /// Iterate all oriented links of a link type.
    pub fn links_of(&self, lt: LinkTypeId) -> impl Iterator<Item = (AtomId, AtomId)> + '_ {
        self.links[lt.0 as usize].iter_oriented()
    }

    /// Number of links in a link-type occurrence.
    pub fn link_count(&self, lt: LinkTypeId) -> usize {
        self.links[lt.0 as usize].len()
    }

    /// Total number of links across all link types.
    pub fn total_links(&self) -> usize {
        self.links.iter().map(|s| s.len()).sum()
    }

    /// Raw access to a link store (used by the algebra's inheritance pass).
    pub fn link_store(&self, lt: LinkTypeId) -> &LinkStore {
        &self.links[lt.0 as usize]
    }

    // ------------------------------------------------------------------
    // CSR snapshots
    // ------------------------------------------------------------------

    /// Slot horizon of atom type `ty`: live atoms plus tombstones. Slot
    /// indexes below this bound are the dense key space of the type.
    pub fn atom_slot_count(&self, ty: AtomTypeId) -> usize {
        self.atoms.get(ty.0 as usize).map_or(0, |s| s.slots())
    }

    /// The structural version stamp (bumped by every adjacency- or
    /// slot-horizon-changing DML and by DDL; **not** by attribute updates).
    pub fn version(&self) -> u64 {
        self.structural_version
    }

    /// The attribute version stamp (bumped by `update_attr` only).
    /// Attribute-only DML cannot change adjacency, so it is deliberately
    /// excluded from the stamp that keys the CSR snapshot cache.
    pub fn attr_version(&self) -> u64 {
        self.attr_version
    }

    /// The per-link-type version stamp of `lt` (bumped only when that link
    /// type's pair set changes); keys the incremental CSR rebuild.
    pub fn link_version(&self, lt: LinkTypeId) -> u64 {
        self.link_versions[lt.0 as usize]
    }

    /// The read-optimized [`CsrSnapshot`] of the current database state.
    ///
    /// Built on first use and cached; any structural change invalidates the
    /// cache and the next call rebuilds **incrementally** — only link types
    /// whose per-link-type version moved are re-frozen, the rest share
    /// their CSR pair with the previous snapshot ([`CsrSnapshot::rebuild`]).
    /// The returned [`Arc`] stays valid — and frozen at its version — for
    /// as long as the caller holds it, so a whole derivation (including
    /// every worker of a parallel one) runs against one consistent
    /// adjacency image.
    pub fn csr_snapshot(&self) -> Arc<CsrSnapshot> {
        let mut guard = self.csr.0.lock().unwrap();
        if let Some((version, snap)) = guard.snap.as_ref() {
            if *version == self.structural_version {
                return Arc::clone(snap);
            }
        }
        let prev = guard.snap.take().map(|(_, s)| s);
        let (snap, rebuilt) = CsrSnapshot::rebuild(self, prev.as_deref());
        let snap = Arc::new(snap);
        guard.last_rebuild = Some((rebuilt, self.schema.link_type_count()));
        guard.snap = Some((self.structural_version, Arc::clone(&snap)));
        snap
    }

    /// Is a current (non-stale) CSR snapshot already built? EXPLAIN uses
    /// this to report whether bitset derivation starts warm.
    pub fn csr_is_warm(&self) -> bool {
        self.csr
            .0
            .lock()
            .unwrap()
            .snap
            .as_ref()
            .is_some_and(|(v, _)| *v == self.structural_version)
    }

    /// `(rebuilt, total)` link-type CSR pairs of the most recent snapshot
    /// (re)build, or `None` before the first build. EXPLAIN reports this to
    /// show the incremental invalidation at work: after one `connect`, only
    /// the touched pair is re-frozen.
    pub fn csr_rebuild_stats(&self) -> Option<(usize, usize)> {
        self.csr.0.lock().unwrap().last_rebuild
    }

    // ------------------------------------------------------------------
    // Indexes
    // ------------------------------------------------------------------

    /// Create a secondary index on `(ty, attr_name)`, backfilling it from
    /// the current occurrence.
    pub fn create_index(
        &mut self,
        ty: AtomTypeId,
        attr_name: &str,
        kind: IndexKind,
    ) -> Result<()> {
        let def = self.schema.atom_type(ty);
        let attr = def.attr_index(attr_name).ok_or_else(|| {
            MadError::unknown("attribute", format!("{attr_name} of `{}`", def.name))
        })?;
        if self.index_map.contains_key(&(ty, attr)) {
            return Err(MadError::duplicate(
                "index",
                format!("{}.{attr_name}", def.name),
            ));
        }
        let mut idx = AttrIndex::new(ty, attr, kind);
        for (id, tuple) in self.atoms[ty.0 as usize].iter_ids(ty) {
            idx.insert(&tuple[attr], id);
        }
        self.index_map.insert((ty, attr), self.indexes.len());
        self.indexes.push(Arc::new(idx));
        Ok(())
    }

    /// Does an index on `(ty, attr)` exist?
    pub fn has_index(&self, ty: AtomTypeId, attr: usize) -> bool {
        self.index_map.contains_key(&(ty, attr))
    }

    /// The kind of the index on `(ty, attr)`, if one exists. Planners use
    /// this to decide whether a range predicate can be index-served (a hash
    /// index cannot).
    pub fn index_kind(&self, ty: AtomTypeId, attr: usize) -> Option<IndexKind> {
        self.index_map
            .get(&(ty, attr))
            .map(|&pos| self.indexes[pos].kind())
    }

    /// Index-backed equality lookup; `None` when no index exists (caller
    /// falls back to a scan).
    pub fn lookup_eq(&self, ty: AtomTypeId, attr: usize, key: &Value) -> Option<&[AtomId]> {
        self.index_map
            .get(&(ty, attr))
            .map(|&pos| self.indexes[pos].lookup_eq(key))
    }

    /// Index-backed range lookup; `None` when no ordered index exists.
    pub fn lookup_range(
        &self,
        ty: AtomTypeId,
        attr: usize,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Option<Vec<AtomId>> {
        self.index_map
            .get(&(ty, attr))
            .and_then(|&pos| self.indexes[pos].lookup_range(lo, hi))
    }

    fn indexes_of_type(&self, ty: AtomTypeId) -> Vec<usize> {
        self.indexes
            .iter()
            .enumerate()
            .filter(|(_, idx)| idx.ty == ty)
            .map(|(i, _)| i)
            .collect()
    }

    // ------------------------------------------------------------------
    // Integrity
    // ------------------------------------------------------------------

    /// Check the `min` side of all extended link-type definitions. Intended
    /// to run after bulk loading; returns every violation found.
    pub fn check_min_cardinalities(&self) -> Vec<MinCardViolation> {
        let mut out = Vec::new();
        for (lt, def) in self.schema.link_types() {
            let store = &self.links[lt.0 as usize];
            if def.cards[0].min > 0 {
                for (atom, _) in self.atoms_of(def.ends[0]) {
                    let found = store.degree_fwd(atom) as u32;
                    if found < def.cards[0].min {
                        out.push(MinCardViolation {
                            link_type: lt,
                            atom,
                            side: 0,
                            found,
                            required: def.cards[0].min,
                        });
                    }
                }
            }
            if def.cards[1].min > 0 {
                for (atom, _) in self.atoms_of(def.ends[1]) {
                    let found = store.degree_bwd(atom) as u32;
                    if found < def.cards[1].min {
                        out.push(MinCardViolation {
                            link_type: lt,
                            atom,
                            side: 1,
                            found,
                            required: def.cards[1].min,
                        });
                    }
                }
            }
        }
        out
    }

    /// Full referential-integrity audit: every stored link endpoint must be
    /// a live atom of the right type. Always empty if the DML interface was
    /// used exclusively; exposed so property tests can verify the invariant.
    pub fn audit_referential_integrity(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (lt, def) in self.schema.link_types() {
            for (a, b) in self.links_of(lt) {
                if a.ty != def.ends[0] || b.ty != def.ends[1] {
                    problems.push(format!(
                        "link type `{}` holds pair ({a}, {b}) with wrong endpoint types",
                        def.name
                    ));
                }
                if !self.atom_exists(a) {
                    problems.push(format!("link type `{}` references dead atom {a}", def.name));
                }
                if !self.atom_exists(b) {
                    problems.push(format!("link type `{}` references dead atom {b}", def.name));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, Cardinality, SchemaBuilder};

    fn geo_db() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text), ("hectare", AttrType::Float)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .atom_type("edge", &[("eid", AttrType::Int)])
            .link_type_card(
                "state-area",
                "state",
                Cardinality::MANY,
                "area",
                Cardinality::AT_MOST_ONE,
            )
            .link_type("area-edge", "area", "edge")
            .build()
            .unwrap();
        Database::new(schema)
    }

    #[test]
    fn insert_and_read_atoms() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let id = db
            .insert_atom(state, vec![Value::from("MG"), Value::from(900)])
            .unwrap();
        assert_eq!(db.atom(id).unwrap()[0], Value::from("MG"));
        // Int 900 coerced into Float domain
        assert_eq!(db.atom(id).unwrap()[1], Value::Float(900.0));
        assert_eq!(db.atom_count(state), 1);
    }

    #[test]
    fn insert_rejects_bad_tuple() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        assert!(db.insert_atom(state, vec![Value::from(1)]).is_err());
        assert!(db
            .insert_atom(state, vec![Value::from(1), Value::from(2)])
            .is_err());
    }

    #[test]
    fn connect_requires_existing_atoms_of_right_type() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s = db.insert_atom(state, vec![Value::from("SP"), Value::from(1000)]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        // wrong orientation
        assert!(db.connect(sa, a, s).is_err());
        // dead atom
        let ghost = AtomId::new(area, 99);
        assert!(db.connect(sa, s, ghost).is_err());
        // ok
        assert!(db.connect(sa, s, a).unwrap());
        assert!(!db.connect(sa, s, a).unwrap(), "duplicate link is a no-op");
        assert!(db.linked(sa, s, a));
        assert!(db.linked_sym(sa, a, s));
    }

    #[test]
    fn connect_sym_infers_orientation() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s = db.insert_atom(state, vec![Value::from("SP"), Value::from(1000)]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        assert!(db.connect_sym(sa, a, s).unwrap());
        assert!(db.linked(sa, s, a), "stored in canonical orientation");
    }

    #[test]
    fn max_cardinality_enforced() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s1 = db.insert_atom(state, vec![Value::from("SP"), Value::from(1)]).unwrap();
        let s2 = db.insert_atom(state, vec![Value::from("MG"), Value::from(2)]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        // area side has max 1: second state for the same area must fail
        db.connect(sa, s1, a).unwrap();
        let err = db.connect(sa, s2, a).unwrap_err();
        assert!(matches!(err, MadError::CardinalityViolation { .. }));
    }

    #[test]
    fn min_cardinality_reported() {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type_card(
                "state-area",
                "state",
                Cardinality::AT_LEAST_ONE,
                "area",
                Cardinality::MANY,
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s1 = db.insert_atom(state, vec![Value::from("SP")]).unwrap();
        let s2 = db.insert_atom(state, vec![Value::from("MG")]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        db.connect(sa, s1, a).unwrap();
        let violations = db.check_min_cardinalities();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].atom, s2);
        assert_eq!(violations[0].required, 1);
    }

    #[test]
    fn delete_atom_cascades_links() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let edge = db.schema().atom_type_id("edge").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let ae = db.schema().link_type_id("area-edge").unwrap();
        let s = db.insert_atom(state, vec![Value::from("SP"), Value::from(1)]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        let e = db.insert_atom(edge, vec![Value::from(10)]).unwrap();
        db.connect(sa, s, a).unwrap();
        db.connect(ae, a, e).unwrap();
        assert_eq!(db.total_links(), 2);
        let removed = db.delete_atom(a).unwrap();
        assert_eq!(removed, 2, "both incident links cascade");
        assert!(!db.atom_exists(a));
        assert_eq!(db.total_links(), 0);
        assert!(db.audit_referential_integrity().is_empty());
    }

    #[test]
    fn delete_missing_atom_errors() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        assert!(db.delete_atom(AtomId::new(state, 3)).is_err());
    }

    #[test]
    fn reflexive_link_directions() {
        let schema = SchemaBuilder::new()
            .atom_type("parts", &[("pid", AttrType::Int)])
            .link_type("composition", "parts", "parts")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let parts = db.schema().atom_type_id("parts").unwrap();
        let comp = db.schema().link_type_id("composition").unwrap();
        let engine = db.insert_atom(parts, vec![Value::from(1)]).unwrap();
        let piston = db.insert_atom(parts, vec![Value::from(2)]).unwrap();
        let ring = db.insert_atom(parts, vec![Value::from(3)]).unwrap();
        db.connect(comp, engine, piston).unwrap(); // engine ⊃ piston
        db.connect(comp, piston, ring).unwrap();
        // sub-component view of piston
        assert_eq!(db.partners(comp, piston, Direction::Fwd), vec![ring]);
        // super-component view of piston
        assert_eq!(db.partners(comp, piston, Direction::Bwd), vec![engine]);
        // symmetric view merges both
        assert_eq!(
            db.partners(comp, piston, Direction::Sym),
            vec![engine, ring]
        );
        // connect_sym is ambiguous on reflexive types
        assert!(db.connect_sym(comp, engine, ring).is_err());
    }

    #[test]
    fn update_attr_checks_and_updates_index() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        db.create_index(state, "sname", IndexKind::Hash).unwrap();
        let s = db.insert_atom(state, vec![Value::from("SP"), Value::from(1)]).unwrap();
        assert_eq!(
            db.lookup_eq(state, 0, &Value::from("SP")).unwrap(),
            &[s]
        );
        db.update_attr(s, 0, Value::from("MG")).unwrap();
        assert!(db.lookup_eq(state, 0, &Value::from("SP")).unwrap().is_empty());
        assert_eq!(db.lookup_eq(state, 0, &Value::from("MG")).unwrap(), &[s]);
        // type error
        assert!(db.update_attr(s, 0, Value::from(3)).is_err());
        // unknown attr
        assert!(db.update_attr(s, 9, Value::Null).is_err());
    }

    #[test]
    fn index_backfills_and_tracks_deletes() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let s1 = db.insert_atom(state, vec![Value::from("SP"), Value::from(1)]).unwrap();
        let s2 = db.insert_atom(state, vec![Value::from("SP"), Value::from(2)]).unwrap();
        db.create_index(state, "sname", IndexKind::Ordered).unwrap();
        assert_eq!(
            db.lookup_eq(state, 0, &Value::from("SP")).unwrap(),
            &[s1, s2]
        );
        db.delete_atom(s1).unwrap();
        assert_eq!(db.lookup_eq(state, 0, &Value::from("SP")).unwrap(), &[s2]);
        // range over ordered index
        let hits = db
            .lookup_range(
                state,
                0,
                Bound::Included(&Value::from("SP")),
                Bound::Unbounded,
            )
            .unwrap();
        assert_eq!(hits, vec![s2]);
        // duplicate index rejected
        assert!(db.create_index(state, "sname", IndexKind::Hash).is_err());
    }

    #[test]
    fn direction_from_resolves_sides() {
        let db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let edge = db.schema().atom_type_id("edge").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        assert_eq!(db.direction_from(sa, state).unwrap(), Direction::Fwd);
        assert_eq!(db.direction_from(sa, area).unwrap(), Direction::Bwd);
        assert!(db.direction_from(sa, edge).is_err());
    }

    #[test]
    fn duplicate_connect_keeps_csr_snapshot_cached() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s = db.insert_atom(state, vec![Value::from("SP"), Value::from(1)]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        assert!(db.connect(sa, s, a).unwrap());
        let _ = db.csr_snapshot();
        assert!(db.csr_is_warm());
        let v = db.version();
        // regression: a duplicate (no-op) connect used to bump the version
        // before LinkStore::insert, invalidating the cache for nothing
        assert!(!db.connect(sa, s, a).unwrap());
        assert_eq!(db.version(), v, "no-op connect bumped the version");
        assert!(db.csr_is_warm(), "no-op connect invalidated the snapshot");
        // a no-op disconnect is equally invisible
        let ghost_area = db.insert_atom(area, vec![Value::from(2)]).unwrap();
        let _ = db.csr_snapshot();
        assert!(!db.disconnect(sa, s, ghost_area).unwrap());
        assert!(db.csr_is_warm(), "no-op disconnect invalidated the snapshot");
    }

    #[test]
    fn update_attr_keeps_csr_snapshot_cached() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let s = db.insert_atom(state, vec![Value::from("SP"), Value::from(1)]).unwrap();
        let _ = db.csr_snapshot();
        assert!(db.csr_is_warm());
        let (structural, attrs) = (db.version(), db.attr_version());
        // regression: attribute-only DML used to share the structural
        // stamp, rebuilding adjacency that cannot have changed
        db.update_attr(s, 1, Value::from(2.0)).unwrap();
        assert_eq!(db.version(), structural, "update_attr bumped the structural version");
        assert_eq!(db.attr_version(), attrs + 1, "update_attr must stamp the attr version");
        assert!(db.csr_is_warm(), "update_attr invalidated the CSR snapshot");
    }

    #[test]
    fn one_connect_rebuilds_only_the_touched_pair() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let edge = db.schema().atom_type_id("edge").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let ae = db.schema().link_type_id("area-edge").unwrap();
        let s = db.insert_atom(state, vec![Value::from("SP"), Value::from(1)]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        let e = db.insert_atom(edge, vec![Value::from(1)]).unwrap();
        db.connect(sa, s, a).unwrap();
        db.connect(ae, a, e).unwrap();
        let _ = db.csr_snapshot();
        assert_eq!(db.csr_rebuild_stats(), Some((2, 2)), "cold build freezes every pair");
        // one more link through `area-edge` only
        let e2 = db.insert_atom(edge, vec![Value::from(2)]).unwrap();
        db.connect(ae, a, e2).unwrap();
        let _ = db.csr_snapshot();
        assert_eq!(
            db.csr_rebuild_stats(),
            Some((1, 2)),
            "only the touched link type is re-frozen"
        );
        // plain atom inserts move the slot horizon but re-freeze nothing
        let _ = db.insert_atom(edge, vec![Value::from(3)]).unwrap();
        let _ = db.csr_snapshot();
        assert_eq!(db.csr_rebuild_stats(), Some((0, 2)));
        // the cascade of a delete re-freezes exactly the link types it hit
        db.delete_atom(a).unwrap();
        let _ = db.csr_snapshot();
        assert_eq!(db.csr_rebuild_stats(), Some((2, 2)), "cascade touched both link types");
    }

    #[test]
    fn delete_atom_never_serves_stale_csr_snapshot() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let edge = db.schema().atom_type_id("edge").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let ae = db.schema().link_type_id("area-edge").unwrap();
        let s = db.insert_atom(state, vec![Value::from("SP"), Value::from(1)]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        let e = db.insert_atom(edge, vec![Value::from(1)]).unwrap();
        db.connect(sa, s, a).unwrap();
        db.connect(ae, a, e).unwrap();
        let before = db.csr_snapshot();
        assert!(!before.adjacency(sa, Direction::Fwd).partners_of(s.slot).is_empty());
        let (v, sa_v, ae_v) = (db.version(), db.link_version(sa), db.link_version(ae));
        db.delete_atom(a).unwrap();
        // exactly one structural bump, one bump per touched link type
        assert_eq!(db.version(), v + 1, "delete must bump the structural version once");
        assert_eq!(db.link_version(sa), sa_v + 1);
        assert_eq!(db.link_version(ae), ae_v + 1);
        assert!(!db.csr_is_warm(), "stale snapshot left in the cache after delete");
        // the next snapshot must not carry the deleted atom's adjacency
        let after = db.csr_snapshot();
        assert!(after.adjacency(sa, Direction::Fwd).partners_of(s.slot).is_empty());
        assert!(after.adjacency(ae, Direction::Bwd).partners_of(e.slot).is_empty());
        // the old Arc the reader held is untouched (their snapshot, frozen)
        assert!(!before.adjacency(sa, Direction::Fwd).partners_of(s.slot).is_empty());
    }

    #[test]
    fn delete_reflexive_atom_bumps_link_version_once() {
        let schema = SchemaBuilder::new()
            .atom_type("parts", &[("pid", AttrType::Int)])
            .link_type("composition", "parts", "parts")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let parts = db.schema().atom_type_id("parts").unwrap();
        let comp = db.schema().link_type_id("composition").unwrap();
        let top = db.insert_atom(parts, vec![Value::from(1)]).unwrap();
        let mid = db.insert_atom(parts, vec![Value::from(2)]).unwrap();
        let bot = db.insert_atom(parts, vec![Value::from(3)]).unwrap();
        // `mid` has links on BOTH sides of the reflexive type
        db.connect(comp, top, mid).unwrap();
        db.connect(comp, mid, bot).unwrap();
        let (v, lv) = (db.version(), db.link_version(comp));
        let removed = db.delete_atom(mid).unwrap();
        assert_eq!(removed, 2, "both orientations cascade");
        assert_eq!(db.version(), v + 1, "one structural bump for the whole cascade");
        assert_eq!(db.link_version(comp), lv + 1, "one bump per touched link type");
        assert!(db.audit_referential_integrity().is_empty());
    }

    #[test]
    fn insert_atoms_bumps_structural_version_once_per_batch() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let _ = db.csr_snapshot();
        let v = db.version();
        let ids = db
            .insert_atoms(
                state,
                (0..100).map(|i| vec![Value::from(format!("s{i}")), Value::from(i)]),
            )
            .unwrap();
        assert_eq!(ids.len(), 100);
        assert_eq!(db.version(), v + 1, "a batch stamps the version exactly once");
        // the single bump still invalidates the cached snapshot…
        assert!(!db.csr_is_warm());
        // …and an empty batch stamps nothing
        let v = db.version();
        assert!(db.insert_atoms(state, std::iter::empty()).unwrap().is_empty());
        assert_eq!(db.version(), v);
        // a failing batch keeps the atoms inserted before the bad tuple and
        // still bumps (those atoms grew the slot horizon)
        let v = db.version();
        let err = db.insert_atoms(
            state,
            vec![
                vec![Value::from("ok"), Value::from(1)],
                vec![Value::from(1)], // wrong arity
            ],
        );
        assert!(err.is_err());
        assert_eq!(db.version(), v + 1);
    }

    #[test]
    fn insert_atoms_batch_maintains_indexes() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        db.create_index(state, "sname", IndexKind::Hash).unwrap();
        let ids = db
            .insert_atoms(
                state,
                vec![
                    vec![Value::from("SP"), Value::from(1)],
                    vec![Value::from("MG"), Value::from(2)],
                ],
            )
            .unwrap();
        assert_eq!(db.lookup_eq(state, 0, &Value::from("MG")).unwrap(), &[ids[1]]);
    }

    #[test]
    fn clone_is_a_copy_on_write_fork() {
        let mut db = geo_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s = db.insert_atom(state, vec![Value::from("SP"), Value::from(1)]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        db.connect(sa, s, a).unwrap();
        let _ = db.csr_snapshot();
        let mut fork = db.clone();
        // the fork starts warm: the cached snapshot Arc is shared
        assert!(fork.csr_is_warm(), "clone must inherit the warm CSR cache");
        // writes to the fork never show through to the origin
        let s2 = fork.insert_atom(state, vec![Value::from("MG"), Value::from(2)]).unwrap();
        fork.update_attr(s, 0, Value::from("XX")).unwrap();
        fork.disconnect(sa, s, a).unwrap();
        assert!(!db.atom_exists(s2));
        assert_eq!(db.atom(s).unwrap()[0], Value::from("SP"));
        assert!(db.linked(sa, s, a));
        assert!(db.csr_is_warm(), "fork DML must not disturb the origin's cache");
        // …and vice versa
        db.delete_atom(a).unwrap();
        assert!(fork.atom_exists(a));
    }

    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<std::sync::Arc<Database>>();
    }

    #[test]
    fn ddl_grows_occurrence_stores() {
        let mut db = geo_db();
        let city = db
            .add_atom_type(AtomTypeDef::new(
                "city",
                vec![mad_model::AttrDef::new("cname", AttrType::Text)],
            ))
            .unwrap();
        let id = db.insert_atom(city, vec![Value::from("Ouro Preto")]).unwrap();
        assert!(db.atom_exists(id));
        let state = db.schema().atom_type_id("state").unwrap();
        let cs = db
            .add_link_type(LinkTypeDef::new("city-state", city, state))
            .unwrap();
        assert_eq!(db.link_count(cs), 0);
    }
}
