//! Epoch-sequenced publication cell.
//!
//! `EpochCell<T>` is the safe-Rust equivalent of an arc-swap: a single
//! logical cell whose value is replaced atomically by writers and read
//! without blocking on the writer's critical section. It exists so the
//! transaction layer can publish a new `Arc<Database>` image without
//! readers ever queueing behind validation, WAL appends, or fsync stalls.
//!
//! # Protocol
//!
//! The cell keeps a monotonically increasing `epoch` counter and a fixed
//! ring of `SLOTS` value slots. Publication `e` stores its value into slot
//! `e % SLOTS` *before* bumping the epoch with `Release` ordering; readers
//! load the epoch with `Acquire` and clone out of the slot it names.
//! Because a writer for epoch `e` never touches slot `(e - 1) % SLOTS`,
//! a reader that observed epoch `e - 1` copies its value out of a slot no
//! in-flight publication is writing — readers are wait-free in practice
//! (the per-slot mutex is only ever contended if a writer laps the entire
//! ring while a reader is mid-clone, in which case the reader observes a
//! *newer* value, never an older or torn one).
//!
//! Writers are serialized by an internal ticket so the cell is safe to use
//! standalone; `mad_txn` additionally serializes publications under its
//! commit ticket, which is what assigns commit sequence numbers.
//!
//! # Invariants
//!
//! 1. The epoch only increases, and slot `e % SLOTS` holds the value of
//!    some epoch `>= e` whenever `epoch >= e`.
//! 2. A reader returns the value of an epoch `>=` the epoch it loaded:
//!    reads are monotone and never torn.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Number of slots in the publication ring. Large enough that a writer
/// lapping a mid-clone reader requires SLOTS full publications during one
/// `clone()` — effectively never for `Arc` values.
const SLOTS: usize = 64;

/// A wait-free-reader publication cell. See the module docs for the
/// protocol and its invariants.
pub struct EpochCell<T> {
    epoch: AtomicU64,
    slots: Vec<Mutex<Option<T>>>,
    /// Serializes writers; held only for the slot store + epoch bump.
    ticket: Mutex<()>,
}

impl<T: Clone> EpochCell<T> {
    /// Create a cell publishing `initial` at epoch 0.
    pub fn new(initial: T) -> Self {
        let mut slots = Vec::with_capacity(SLOTS);
        slots.push(Mutex::new(Some(initial)));
        for _ in 1..SLOTS {
            slots.push(Mutex::new(None));
        }
        EpochCell { epoch: AtomicU64::new(0), slots, ticket: Mutex::new(()) }
    }

    /// Current publication epoch. Monotone; `Acquire` so a caller that
    /// observes epoch `e` also observes the slot contents for `e`.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clone the current value. Never blocks on an in-flight publication
    /// of the *next* epoch; may return a newer value than the epoch loaded
    /// (reads are monotone).
    pub fn read(&self) -> T {
        let e = self.epoch.load(Ordering::Acquire);
        let slot = self
            .slots
            .get(e as usize % SLOTS)
            .expect("slot index is taken modulo the ring size") // check: allow(panic, "index is e % SLOTS, always in range")
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        slot.clone()
            .expect("published slot holds a value for every epoch <= current") // check: allow(panic, "invariant 1: slot e % SLOTS is populated before epoch reaches e")
    }

    /// Publish a new value, returning the epoch it was published at.
    /// Writers are serialized; the critical section is one slot store and
    /// one atomic bump — no I/O, no validation.
    pub fn publish(&self, value: T) -> u64 {
        let _t = self.ticket.lock().unwrap_or_else(PoisonError::into_inner);
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        {
            let mut slot = self
                .slots
                .get(next as usize % SLOTS)
                .expect("slot index is taken modulo the ring size") // check: allow(panic, "index is next % SLOTS, always in range")
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *slot = Some(value);
        }
        self.epoch.store(next, Ordering::Release);
        next
    }
}

impl<T: Clone + std::fmt::Debug> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell").field("epoch", &self.epoch()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn publishes_and_reads_round_trip() {
        let cell = EpochCell::new(0u64);
        assert_eq!(cell.epoch(), 0);
        assert_eq!(cell.read(), 0);
        for i in 1..=200u64 {
            let e = cell.publish(i);
            assert_eq!(e, i);
            assert_eq!(cell.read(), i);
        }
        assert_eq!(cell.epoch(), 200);
    }

    #[test]
    fn reads_are_monotone_under_concurrent_publication() {
        let cell = Arc::new(EpochCell::new(0u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = cell.read();
                    assert!(v >= last, "read went backwards: {v} < {last}");
                    last = v;
                }
                last
            }));
        }
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for i in 1..=10_000u64 {
                    cell.publish(i);
                }
            })
        };
        writer.join().expect("writer");
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let last = r.join().expect("reader");
            assert!(last <= 10_000);
        }
        assert_eq!(cell.read(), 10_000);
    }

    #[test]
    fn concurrent_writers_serialize_and_lose_no_epochs() {
        let cell = Arc::new(EpochCell::new(0u32));
        let mut writers = Vec::new();
        for _ in 0..8 {
            let cell = Arc::clone(&cell);
            writers.push(thread::spawn(move || {
                for _ in 0..1_000 {
                    cell.publish(1);
                }
            }));
        }
        for w in writers {
            w.join().expect("writer");
        }
        assert_eq!(cell.epoch(), 8_000);
    }
}
