#![forbid(unsafe_code)]

//! # mad-relational — the relational substrate and baseline
//!
//! The paper positions the MAD model *against* the flat relational model
//! (§1–2, Fig. 3): n:m relationships force auxiliary relations, queries turn
//! into join cascades, referential integrity is the application's problem.
//! To measure those claims rather than repeat them, this crate provides:
//!
//! * [`relation`] — set-semantics relations over the shared [`mad_model::Value`],
//! * [`algebra`] — the classical relational algebra (σ π × ⋈ ∪ − ∩ ρ),
//!   the baseline the atom-type algebra of Def. 4 degenerates to,
//! * [`mapping`] — the MAD→relational schema mapping: one relation per atom
//!   type (with a surrogate key), a foreign key for link types with a
//!   `max ≤ 1` side, and an **auxiliary relation** for every n:m link type
//!   — exactly the transformation §2 calls "quite cumbersome",
//! * [`derive_join`] — molecule derivation expressed as relational join
//!   cascades over that mapping (benchmark B1's comparator; tests assert it
//!   computes the very same molecule sets as `mad-core`),
//! * [`closure`] — semi-naive transitive closure (benchmark B5's comparator
//!   for recursive molecules).

pub mod algebra;
pub mod closure;
pub mod derive_join;
pub mod mapping;
pub mod relation;

pub use mapping::RelationalImage;
pub use relation::Relation;
