//! Relations with set semantics.
//!
//! A [`Relation`] is the classical `<name, schema, tuple set>` triple —
//! Fig. 3's left column. Tuples live in a `BTreeSet`, so relations are
//! canonical by construction: equality is set equality and iteration order
//! is deterministic (the figure-regeneration harness depends on that).

use mad_model::{AttrDef, AttrType, MadError, Result, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A named relation: schema plus tuple set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    /// Relation name.
    pub name: String,
    /// Attribute descriptions, in column order.
    pub schema: Vec<AttrDef>,
    /// The tuple set.
    pub tuples: BTreeSet<Vec<Value>>,
}

impl Relation {
    /// An empty relation.
    pub fn new(name: impl Into<String>, schema: Vec<AttrDef>) -> Self {
        Relation {
            name: name.into(),
            schema,
            tuples: BTreeSet::new(),
        }
    }

    /// Build from `(name, type)` pairs.
    pub fn with_attrs(name: impl Into<String>, attrs: &[(&str, AttrType)]) -> Self {
        Relation::new(
            name,
            attrs.iter().map(|(n, t)| AttrDef::new(*n, *t)).collect(),
        )
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Position of attribute `name`.
    pub fn attr_index(&self, name: &str) -> Result<usize> {
        self.schema
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| MadError::unknown("attribute", format!("{name} of `{}`", self.name)))
    }

    /// Insert a tuple (validated against the schema). Returns `false` if it
    /// was already present (set semantics).
    pub fn insert(&mut self, tuple: Vec<Value>) -> Result<bool> {
        if tuple.len() != self.schema.len() {
            return Err(MadError::ArityMismatch {
                context: format!("relation `{}`", self.name),
                expected: self.schema.len(),
                found: tuple.len(),
            });
        }
        let mut coerced = Vec::with_capacity(tuple.len());
        for (v, attr) in tuple.into_iter().zip(&self.schema) {
            if !v.conforms_to(attr.ty) {
                return Err(MadError::TypeMismatch {
                    context: format!("relation `{}`, attribute `{}`", self.name, attr.name),
                    expected: attr.ty.name().to_owned(),
                    found: v
                        .attr_type()
                        .map(|t| t.name().to_owned())
                        .unwrap_or_else(|| "NULL".to_owned()),
                });
            }
            coerced.push(v.coerce(attr.ty));
        }
        Ok(self.tuples.insert(coerced))
    }

    /// Insert many tuples.
    pub fn insert_all(&mut self, tuples: impl IntoIterator<Item = Vec<Value>>) -> Result<usize> {
        let mut added = 0;
        for t in tuples {
            if self.insert(t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Do the schemas (names and types, in order) match? Precondition of
    /// `∪`, `−`, `∩`.
    pub fn union_compatible(&self, other: &Relation) -> bool {
        self.schema == other.schema
    }

    /// Does `self` contain `tuple`?
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.tuples.contains(tuple)
    }

    /// Render as an aligned table (Fig. 4-style occurrence dumps).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.schema.iter().map(|a| a.name.len()).collect();
        let rows: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| t.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{} (", self.name));
        for (i, a) in self.schema.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&a.name);
        }
        out.push_str(")\n");
        for row in &rows {
            out.push_str("  ");
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$} ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} tuples]", self.name, self.tuples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city() -> Relation {
        Relation::with_attrs(
            "city",
            &[("name", AttrType::Text), ("pop", AttrType::Int)],
        )
    }

    #[test]
    fn insert_validates_and_dedups() {
        let mut r = city();
        assert!(r.insert(vec![Value::from("SP"), Value::from(12)]).unwrap());
        assert!(!r.insert(vec![Value::from("SP"), Value::from(12)]).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.insert(vec![Value::from("SP")]).is_err());
        assert!(r
            .insert(vec![Value::from(1), Value::from(2)])
            .is_err());
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut r = Relation::with_attrs("m", &[("x", AttrType::Float)]);
        r.insert(vec![Value::from(3)]).unwrap();
        assert!(r.contains(&[Value::Float(3.0)]));
    }

    #[test]
    fn union_compatibility() {
        let a = city();
        let b = city();
        let c = Relation::with_attrs("x", &[("name", AttrType::Text)]);
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
    }

    #[test]
    fn attr_index_lookup() {
        let r = city();
        assert_eq!(r.attr_index("pop").unwrap(), 1);
        assert!(r.attr_index("ghost").is_err());
    }

    #[test]
    fn render_contains_header_and_rows() {
        let mut r = city();
        r.insert(vec![Value::from("SP"), Value::from(12)]).unwrap();
        let s = r.render();
        assert!(s.contains("city (name, pop)"));
        assert!(s.contains("'SP'"));
    }

    #[test]
    fn deterministic_order() {
        let mut r = city();
        r.insert(vec![Value::from("SP"), Value::from(2)]).unwrap();
        r.insert(vec![Value::from("MG"), Value::from(1)]).unwrap();
        let names: Vec<String> = r
            .tuples
            .iter()
            .map(|t| t[0].as_text().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["MG", "SP"], "BTreeSet orders tuples");
    }
}
