//! Semi-naive transitive closure over a binary relation — the relational
//! way to answer the recursive queries of §5 (parts explosion), used as the
//! comparator for recursive molecule types in benchmark B5.

use crate::relation::Relation;
use mad_model::{AttrType, FxHashMap, MadError, Result, Value};

/// Compute the transitive closure of the binary relation `edges`
/// (attributes `(_from, _to)`), optionally bounded to paths of at most
/// `max_depth` steps. Returns a relation `closure(_from, _to)`.
///
/// Semi-naive evaluation: each round joins only the *delta* of the previous
/// round against the base relation, the classical fixpoint optimization.
pub fn transitive_closure(edges: &Relation, max_depth: Option<usize>) -> Result<Relation> {
    if edges.arity() != 2 {
        return Err(MadError::IncompatibleOperands {
            op: "closure",
            detail: format!("`{}` is not binary", edges.name),
        });
    }
    // adjacency index for the delta joins
    let mut adj: FxHashMap<Value, Vec<Value>> = FxHashMap::default();
    for t in &edges.tuples {
        adj.entry(t[0].clone()).or_default().push(t[1].clone());
    }
    let mut closure = Relation::with_attrs(
        format!("closure({})", edges.name),
        &[("_from", AttrType::Int), ("_to", AttrType::Int)],
    );
    closure.tuples = edges.tuples.clone();
    let mut delta: Vec<Vec<Value>> = edges.tuples.iter().cloned().collect();
    let mut depth = 1usize;
    while !delta.is_empty() {
        if let Some(max) = max_depth {
            if depth >= max {
                break;
            }
        }
        let mut next: Vec<Vec<Value>> = Vec::new();
        for t in &delta {
            if let Some(tos) = adj.get(&t[1]) {
                for to in tos {
                    let candidate = vec![t[0].clone(), to.clone()];
                    if closure.tuples.insert(candidate.clone()) {
                        next.push(candidate);
                    }
                }
            }
        }
        delta = next;
        depth += 1;
    }
    Ok(closure)
}

/// All nodes reachable from `start` through `edges` (including `start`).
pub fn reachable_from(edges: &Relation, start: &Value) -> Result<Vec<Value>> {
    if edges.arity() != 2 {
        return Err(MadError::IncompatibleOperands {
            op: "closure",
            detail: format!("`{}` is not binary", edges.name),
        });
    }
    let mut adj: FxHashMap<&Value, Vec<&Value>> = FxHashMap::default();
    for t in &edges.tuples {
        adj.entry(&t[0]).or_default().push(&t[1]);
    }
    let mut seen: std::collections::BTreeSet<Value> = std::collections::BTreeSet::new();
    seen.insert(start.clone());
    let mut frontier = vec![start.clone()];
    while let Some(v) = frontier.pop() {
        if let Some(next) = adj.get(&v) {
            for &n in next {
                if seen.insert(n.clone()) {
                    frontier.push(n.clone());
                }
            }
        }
    }
    Ok(seen.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(i64, i64)]) -> Relation {
        let mut r = Relation::with_attrs(
            "comp",
            &[("_from", AttrType::Int), ("_to", AttrType::Int)],
        );
        for (a, b) in pairs {
            r.insert(vec![Value::Int(*a), Value::Int(*b)]).unwrap();
        }
        r
    }

    #[test]
    fn chain_closure() {
        let e = edges(&[(1, 2), (2, 3), (3, 4)]);
        let c = transitive_closure(&e, None).unwrap();
        assert_eq!(c.len(), 6, "1→2,1→3,1→4,2→3,2→4,3→4");
        assert!(c.contains(&[Value::Int(1), Value::Int(4)]));
    }

    #[test]
    fn dag_with_sharing() {
        // engine→piston, engine→crank, piston→bolt, crank→bolt
        let e = edges(&[(1, 2), (1, 3), (2, 4), (3, 4)]);
        let c = transitive_closure(&e, None).unwrap();
        assert!(c.contains(&[Value::Int(1), Value::Int(4)]));
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn cyclic_terminates() {
        let e = edges(&[(1, 2), (2, 3), (3, 1)]);
        let c = transitive_closure(&e, None).unwrap();
        assert_eq!(c.len(), 9, "complete closure of a 3-cycle");
    }

    #[test]
    fn depth_bound() {
        let e = edges(&[(1, 2), (2, 3), (3, 4)]);
        let c = transitive_closure(&e, Some(2)).unwrap();
        assert!(c.contains(&[Value::Int(1), Value::Int(3)]));
        assert!(!c.contains(&[Value::Int(1), Value::Int(4)]), "3 steps > bound");
    }

    #[test]
    fn reachability() {
        let e = edges(&[(1, 2), (2, 3), (5, 6)]);
        let r = reachable_from(&e, &Value::Int(1)).unwrap();
        assert_eq!(r, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let r = reachable_from(&e, &Value::Int(4)).unwrap();
        assert_eq!(r, vec![Value::Int(4)], "isolated start reaches itself");
    }

    #[test]
    fn non_binary_rejected() {
        let r = Relation::with_attrs("x", &[("a", AttrType::Int)]);
        assert!(transitive_closure(&r, None).is_err());
        assert!(reachable_from(&r, &Value::Int(1)).is_err());
    }
}
