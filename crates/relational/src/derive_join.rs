//! Molecule derivation expressed over the relational image — the baseline
//! the paper argues against (§2: with auxiliary relations "the queries and
//! their processing obviously become more complicated and perhaps less
//! efficient").
//!
//! Two evaluators of the same hierarchical-join cascade:
//!
//! * [`derive_via_algebra`] — a literal composition of relational-algebra
//!   operators (rename → equi-join → project → intersect), the way a
//!   textbook translation of the molecule query would run;
//! * [`derive_via_hash_joins`] — a tuned physical plan: per-edge hash join
//!   indexes are built from the auxiliary/FK relations once, then the
//!   molecule set is assembled per root. This is the *fair* comparator for
//!   benchmark B1 (the algebra evaluator pays materialization costs a real
//!   system would optimize away).
//!
//! Both produce `mad_core::Molecule` values over the original atom ids
//! (surrogate keys are unpacked), so tests can assert bit-for-bit equality
//! with the MAD engine's derivation.

use crate::algebra::{self, Cmp, Pred};
use crate::mapping::{unpack, LinkMapping, RelationalImage};
use crate::relation::Relation;
use mad_core::molecule::Molecule;
use mad_core::structure::MoleculeStructure;
use mad_model::{AtomId, FxHashMap, MadError, Result, Value};
use mad_storage::database::Direction;
use std::collections::BTreeSet;

/// The oriented `(parent, child)` pair list of a structure edge, read from
/// the relational image (auxiliary relation or FK column).
fn edge_pairs(
    image: &RelationalImage,
    md: &MoleculeStructure,
    edge_idx: usize,
) -> Result<Vec<(AtomId, AtomId)>> {
    let e = &md.edges()[edge_idx];
    let (mapping, aux) = image.link_mapping(e.link);
    let mut pairs: Vec<(AtomId, AtomId)> = Vec::new();
    match mapping {
        LinkMapping::Auxiliary => {
            let rel = aux.as_ref().expect("auxiliary mapping carries relation");
            for t in &rel.tuples {
                let from = unpack(&t[0])?;
                let to = unpack(&t[1])?;
                push_oriented(&mut pairs, from, to, e.dir);
            }
        }
        LinkMapping::ForeignKey { side, column } => {
            // the FK column lives in the relation of ends[side]
            let holder_rel = image.atom_relation(match side {
                0 => md.nodes()[if e.dir == Direction::Bwd { e.to } else { e.from }].ty,
                _ => md.nodes()[if e.dir == Direction::Bwd { e.from } else { e.to }].ty,
            });
            let fk = holder_rel.attr_index(column)?;
            for t in &holder_rel.tuples {
                if t[fk].is_null() {
                    continue;
                }
                let holder = unpack(&t[0])?;
                let referenced = unpack(&t[fk])?;
                // (side0, side1) orientation
                let (s0, s1) = if *side == 0 {
                    (holder, referenced)
                } else {
                    (referenced, holder)
                };
                push_oriented(&mut pairs, s0, s1, e.dir);
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    Ok(pairs)
}

fn push_oriented(pairs: &mut Vec<(AtomId, AtomId)>, s0: AtomId, s1: AtomId, dir: Direction) {
    match dir {
        Direction::Fwd => pairs.push((s0, s1)),
        Direction::Bwd => pairs.push((s1, s0)),
        Direction::Sym => {
            pairs.push((s0, s1));
            pairs.push((s1, s0));
        }
    }
}

/// Derive the molecule set of `md` with per-edge hash joins over the
/// relational image.
pub fn derive_via_hash_joins(
    image: &RelationalImage,
    md: &MoleculeStructure,
) -> Result<Vec<Molecule>> {
    // build hash join indexes per edge
    let mut adj: Vec<FxHashMap<AtomId, Vec<AtomId>>> = Vec::with_capacity(md.edge_count());
    for ei in 0..md.edge_count() {
        let mut m: FxHashMap<AtomId, Vec<AtomId>> = FxHashMap::default();
        for (p, c) in edge_pairs(image, md, ei)? {
            m.entry(p).or_default().push(c);
        }
        adj.push(m);
    }
    // root scan
    let root_rel = image.atom_relation(md.root_node().ty);
    let mut roots: Vec<AtomId> = root_rel
        .tuples
        .iter()
        .map(|t| unpack(&t[0]))
        .collect::<Result<_>>()?;
    roots.sort_unstable();
    let empty: Vec<AtomId> = Vec::new();
    let molecules = roots
        .into_iter()
        .map(|root| {
            let mut atoms: Vec<Vec<AtomId>> = vec![Vec::new(); md.node_count()];
            atoms[md.root()] = vec![root];
            for &node in &md.topo_order()[1..] {
                let mut candidate: Option<Vec<AtomId>> = None;
                for &ei in md.incoming(node) {
                    let e = &md.edges()[ei];
                    let mut reached: Vec<AtomId> = Vec::new();
                    for p in &atoms[e.from] {
                        reached.extend(adj[ei].get(p).unwrap_or(&empty).iter().copied());
                    }
                    reached.sort_unstable();
                    reached.dedup();
                    candidate = Some(match candidate {
                        None => reached,
                        Some(prev) => prev
                            .into_iter()
                            .filter(|a| reached.binary_search(a).is_ok())
                            .collect(),
                    });
                }
                atoms[node] = candidate.unwrap_or_default();
            }
            let mut links: Vec<Vec<(AtomId, AtomId)>> = vec![Vec::new(); md.edge_count()];
            for (ei, e) in md.edges().iter().enumerate() {
                for p in &atoms[e.from] {
                    if let Some(cs) = adj[ei].get(p) {
                        for c in cs {
                            if atoms[e.to].binary_search(c).is_ok() {
                                links[ei].push((*p, *c));
                            }
                        }
                    }
                }
                links[ei].sort_unstable();
                links[ei].dedup();
            }
            Molecule { root, atoms, links }
        })
        .collect();
    Ok(molecules)
}

/// Derive the molecule set of `md` as a literal relational-algebra plan:
/// per node a relation `R(_root, _atom)`, advanced edge by edge through
/// rename/equi-join/project, with ∩ at multi-parent nodes.
pub fn derive_via_algebra(
    image: &RelationalImage,
    md: &MoleculeStructure,
) -> Result<Vec<Molecule>> {
    use mad_model::AttrType;
    // pair relations per edge
    let mut pair_rels: Vec<Relation> = Vec::with_capacity(md.edge_count());
    for ei in 0..md.edge_count() {
        let mut rel = Relation::with_attrs(
            format!("pairs{ei}"),
            &[("_parent", AttrType::Int), ("_child", AttrType::Int)],
        );
        for (p, c) in edge_pairs(image, md, ei)? {
            rel.insert(vec![
                Value::Int(p.pack() as i64),
                Value::Int(c.pack() as i64),
            ])?;
        }
        pair_rels.push(rel);
    }
    // R_root(_root, _atom)
    let root_rel = image.atom_relation(md.root_node().ty);
    let ids = algebra::project(root_rel, &["_id"])?;
    let mut r: Vec<Option<Relation>> = vec![None; md.node_count()];
    {
        let mut rr = Relation::with_attrs(
            "R_root",
            &[("_root", AttrType::Int), ("_atom", AttrType::Int)],
        );
        for t in &ids.tuples {
            rr.insert(vec![t[0].clone(), t[0].clone()])?;
        }
        r[md.root()] = Some(rr);
    }
    for &node in &md.topo_order()[1..] {
        let mut acc: Option<Relation> = None;
        for &ei in md.incoming(node) {
            let e = &md.edges()[ei];
            let from = r[e.from]
                .as_ref()
                .ok_or_else(|| MadError::structure("topological order violated"))?;
            // π_{_root, _child}(R_from ⋈_{_atom=_parent} pairs)
            let joined = algebra::equi_join(from, "_atom", &pair_rels[ei], "_parent")?;
            let stepped = algebra::project(&joined, &["_root", "_child"])?;
            let stepped = algebra::rename(&stepped, &[("_child", "_atom")])?;
            acc = Some(match acc {
                None => stepped,
                Some(prev) => algebra::intersect(&prev, &stepped)?,
            });
        }
        r[node] = Some(acc.unwrap_or_else(|| {
            Relation::with_attrs(
                "empty",
                &[("_root", AttrType::Int), ("_atom", AttrType::Int)],
            )
        }));
    }
    // link relations per edge: L(_root, _parent, _child)
    let mut link_rels: Vec<Relation> = Vec::with_capacity(md.edge_count());
    for (ei, e) in md.edges().iter().enumerate() {
        let from = r[e.from].as_ref().unwrap();
        let to = r[e.to].as_ref().unwrap();
        let from_r = algebra::rename(from, &[("_atom", "_parent")])?;
        let joined = algebra::equi_join(&from_r, "_parent", &pair_rels[ei], "_parent")?;
        // join against R_to on (_root, _child)
        let to_r = algebra::rename(to, &[("_root", "_root2"), ("_atom", "_child2")])?;
        let j2 = algebra::equi_join(&joined, "_child", &to_r, "_child2")?;
        let sel = algebra::select(
            &j2,
            &Pred::CmpAttr {
                left: "_root".into(),
                op: Cmp::Eq,
                right: "_root2".into(),
            },
        )?;
        link_rels.push(algebra::project(&sel, &["_root", "_parent", "_child"])?);
    }
    // assemble molecules, grouped by root
    let mut roots: BTreeSet<AtomId> = BTreeSet::new();
    for t in &r[md.root()].as_ref().unwrap().tuples {
        roots.insert(unpack(&t[0])?);
    }
    let mut by_root: FxHashMap<AtomId, Molecule> = FxHashMap::default();
    for &root in &roots {
        by_root.insert(
            root,
            Molecule::single(root, md.node_count(), md.edge_count(), md.root()),
        );
    }
    for (node, rel) in r.iter().enumerate() {
        if node == md.root() {
            continue;
        }
        for t in &rel.as_ref().unwrap().tuples {
            let root = unpack(&t[0])?;
            let atom = unpack(&t[1])?;
            if let Some(m) = by_root.get_mut(&root) {
                m.atoms[node].push(atom);
            }
        }
    }
    for (ei, rel) in link_rels.iter().enumerate() {
        for t in &rel.tuples {
            let root = unpack(&t[0])?;
            let p = unpack(&t[1])?;
            let c = unpack(&t[2])?;
            if let Some(m) = by_root.get_mut(&root) {
                m.links[ei].push((p, c));
            }
        }
    }
    let mut out: Vec<Molecule> = roots
        .into_iter()
        .map(|root| by_root.remove(&root).unwrap())
        .collect();
    for m in &mut out {
        for v in &mut m.atoms {
            v.sort_unstable();
            v.dedup();
        }
        for v in &mut m.links {
            v.sort_unstable();
            v.dedup();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_core::derive::{derive_molecules, DeriveOptions};
    use mad_core::structure::{path, StructureBuilder};
    use mad_model::{AttrType, Cardinality, SchemaBuilder};
    use mad_storage::Database;

    fn mini_geo() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("capital", &[("cname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .atom_type("edge", &[("eid", AttrType::Int)])
            .atom_type("point", &[("pname", AttrType::Text)])
            .link_type_card(
                "state-capital",
                "state",
                Cardinality::AT_MOST_ONE,
                "capital",
                Cardinality::AT_MOST_ONE,
            )
            .link_type("state-area", "state", "area")
            .link_type("area-edge", "area", "edge")
            .link_type("edge-point", "edge", "point")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let t = |db: &Database, n: &str| db.schema().atom_type_id(n).unwrap();
        let l = |db: &Database, n: &str| db.schema().link_type_id(n).unwrap();
        let state = t(&db, "state");
        let capital = t(&db, "capital");
        let area = t(&db, "area");
        let edge = t(&db, "edge");
        let point = t(&db, "point");
        let sp = db.insert_atom(state, vec![Value::from("SP")]).unwrap();
        let mg = db.insert_atom(state, vec![Value::from("MG")]).unwrap();
        let c1 = db
            .insert_atom(capital, vec![Value::from("Sao Paulo")])
            .unwrap();
        db.connect(l(&db, "state-capital"), sp, c1).unwrap();
        let a1 = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        let a2 = db.insert_atom(area, vec![Value::from(2)]).unwrap();
        db.connect(l(&db, "state-area"), sp, a1).unwrap();
        db.connect(l(&db, "state-area"), mg, a2).unwrap();
        let e1 = db.insert_atom(edge, vec![Value::from(1)]).unwrap();
        let e2 = db.insert_atom(edge, vec![Value::from(2)]).unwrap();
        db.connect(l(&db, "area-edge"), a1, e1).unwrap();
        db.connect(l(&db, "area-edge"), a1, e2).unwrap();
        db.connect(l(&db, "area-edge"), a2, e2).unwrap();
        let p1 = db.insert_atom(point, vec![Value::from("p1")]).unwrap();
        db.connect(l(&db, "edge-point"), e1, p1).unwrap();
        db.connect(l(&db, "edge-point"), e2, p1).unwrap();
        db
    }

    #[test]
    fn hash_join_derivation_matches_mad() {
        let db = mini_geo();
        let image = RelationalImage::from_database(&db).unwrap();
        for md in [
            path(db.schema(), &["state", "area", "edge", "point"]).unwrap(),
            path(db.schema(), &["point", "edge", "area", "state"]).unwrap(),
            path(db.schema(), &["state", "capital"]).unwrap(),
        ] {
            let mad = derive_molecules(&db, &md, &DeriveOptions::default()).unwrap();
            let rel = derive_via_hash_joins(&image, &md).unwrap();
            assert_eq!(mad, rel, "structure {}", md.render_compact(db.schema()));
        }
    }

    #[test]
    fn algebra_derivation_matches_mad() {
        let db = mini_geo();
        let image = RelationalImage::from_database(&db).unwrap();
        for md in [
            path(db.schema(), &["state", "area", "edge", "point"]).unwrap(),
            path(db.schema(), &["capital", "state", "area"]).unwrap(),
        ] {
            let mad = derive_molecules(&db, &md, &DeriveOptions::default()).unwrap();
            let rel = derive_via_algebra(&image, &md).unwrap();
            assert_eq!(mad, rel, "structure {}", md.render_compact(db.schema()));
        }
    }

    #[test]
    fn diamond_intersection_matches() {
        // multi-incoming node: the ∩ path of both evaluators
        let schema = SchemaBuilder::new()
            .atom_type("r", &[("x", AttrType::Int)])
            .atom_type("b", &[("y", AttrType::Int)])
            .atom_type("c", &[("z", AttrType::Int)])
            .atom_type("d", &[("w", AttrType::Int)])
            .link_type("rb", "r", "b")
            .link_type("rc", "r", "c")
            .link_type("bd", "b", "d")
            .link_type("cd", "c", "d")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let t = |db: &Database, n: &str| db.schema().atom_type_id(n).unwrap();
        let l = |db: &Database, n: &str| db.schema().link_type_id(n).unwrap();
        let r1 = db.insert_atom(t(&db, "r"), vec![Value::from(1)]).unwrap();
        let b1 = db.insert_atom(t(&db, "b"), vec![Value::from(1)]).unwrap();
        let c1 = db.insert_atom(t(&db, "c"), vec![Value::from(1)]).unwrap();
        let d1 = db.insert_atom(t(&db, "d"), vec![Value::from(1)]).unwrap();
        let d2 = db.insert_atom(t(&db, "d"), vec![Value::from(2)]).unwrap();
        db.connect(l(&db, "rb"), r1, b1).unwrap();
        db.connect(l(&db, "rc"), r1, c1).unwrap();
        db.connect(l(&db, "bd"), b1, d1).unwrap();
        db.connect(l(&db, "cd"), c1, d1).unwrap();
        db.connect(l(&db, "bd"), b1, d2).unwrap();
        let md = StructureBuilder::new(db.schema())
            .node("r")
            .node("b")
            .node("c")
            .node("d")
            .edge("r", "b")
            .edge("r", "c")
            .edge("b", "d")
            .edge("c", "d")
            .build()
            .unwrap();
        let image = RelationalImage::from_database(&db).unwrap();
        let mad = derive_molecules(&db, &md, &DeriveOptions::default()).unwrap();
        let h = derive_via_hash_joins(&image, &md).unwrap();
        let a = derive_via_algebra(&image, &md).unwrap();
        assert_eq!(mad, h);
        assert_eq!(mad, a);
        assert!(mad[0].contains_atom(d1));
        assert!(!mad[0].contains_atom(d2));
    }

    #[test]
    fn empty_database_yields_empty_set() {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let db = Database::new(schema);
        let image = RelationalImage::from_database(&db).unwrap();
        let md = path(db.schema(), &["state", "area"]).unwrap();
        assert!(derive_via_hash_joins(&image, &md).unwrap().is_empty());
        assert!(derive_via_algebra(&image, &md).unwrap().is_empty());
    }
}
