//! The classical relational algebra (\[Ul80\]) — the model the molecule
//! algebra extends and degenerates to.
//!
//! Operations take relations by reference and produce new relations (set
//! semantics throughout). Predicates reuse [`mad_core::atom_ops::AtomPred`]'s
//! shape via a local mirror to keep this crate independent of `mad-core`.

use crate::relation::Relation;
use mad_model::{AttrDef, MadError, Result, Value};
use std::cmp::Ordering;

/// Comparison operators (mirror of `mad_core::qual::CmpOp`, kept local so
/// the baseline crate has no dependency on the system under test).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cmp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            Cmp::Eq => ord == Ordering::Equal,
            Cmp::Ne => ord != Ordering::Equal,
            Cmp::Lt => ord == Ordering::Less,
            Cmp::Le => ord != Ordering::Greater,
            Cmp::Gt => ord == Ordering::Greater,
            Cmp::Ge => ord != Ordering::Less,
        }
    }
}

/// A tuple predicate for σ.
#[derive(Clone, Debug)]
pub enum Pred {
    /// Always true.
    True,
    /// `attr op const`.
    Cmp {
        /// Attribute name.
        attr: String,
        /// Operator.
        op: Cmp,
        /// Constant.
        value: Value,
    },
    /// `attr1 op attr2`.
    CmpAttr {
        /// Left attribute name.
        left: String,
        /// Operator.
        op: Cmp,
        /// Right attribute name.
        right: String,
    },
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// `attr op value` helper.
    pub fn cmp(attr: &str, op: Cmp, value: impl Into<Value>) -> Pred {
        Pred::Cmp {
            attr: attr.to_owned(),
            op,
            value: value.into(),
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }

    fn eval(&self, rel: &Relation, tuple: &[Value]) -> Result<Option<bool>> {
        Ok(match self {
            Pred::True => Some(true),
            Pred::Cmp { attr, op, value } => {
                let i = rel.attr_index(attr)?;
                tuple[i].sql_cmp(value).map(|o| op.test(o))
            }
            Pred::CmpAttr { left, op, right } => {
                let l = rel.attr_index(left)?;
                let r = rel.attr_index(right)?;
                tuple[l].sql_cmp(&tuple[r]).map(|o| op.test(o))
            }
            Pred::And(a, b) => match (a.eval(rel, tuple)?, b.eval(rel, tuple)?) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            Pred::Or(a, b) => match (a.eval(rel, tuple)?, b.eval(rel, tuple)?) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            Pred::Not(a) => a.eval(rel, tuple)?.map(|b| !b),
        })
    }
}

/// σ — selection.
pub fn select(rel: &Relation, pred: &Pred) -> Result<Relation> {
    let mut out = Relation::new(format!("σ({})", rel.name), rel.schema.clone());
    for t in &rel.tuples {
        if pred.eval(rel, t)? == Some(true) {
            out.tuples.insert(t.clone());
        }
    }
    Ok(out)
}

/// π — projection (with duplicate elimination).
pub fn project(rel: &Relation, attrs: &[&str]) -> Result<Relation> {
    let positions: Vec<usize> = attrs
        .iter()
        .map(|a| rel.attr_index(a))
        .collect::<Result<_>>()?;
    let schema: Vec<AttrDef> = positions.iter().map(|&p| rel.schema[p].clone()).collect();
    let mut out = Relation::new(format!("π({})", rel.name), schema);
    for t in &rel.tuples {
        out.tuples
            .insert(positions.iter().map(|&p| t[p].clone()).collect());
    }
    Ok(out)
}

/// ρ — rename attributes (`renames` maps old → new).
pub fn rename(rel: &Relation, renames: &[(&str, &str)]) -> Result<Relation> {
    let mut schema = rel.schema.clone();
    for (old, new) in renames {
        let i = rel.attr_index(old)?;
        schema[i].name = (*new).to_owned();
    }
    let mut out = Relation::new(format!("ρ({})", rel.name), schema);
    out.tuples = rel.tuples.clone();
    Ok(out)
}

/// × — cartesian product. Attribute names must be disjoint.
pub fn product(a: &Relation, b: &Relation) -> Result<Relation> {
    for attr in &a.schema {
        if b.schema.iter().any(|x| x.name == attr.name) {
            return Err(MadError::IncompatibleOperands {
                op: "×",
                detail: format!("attribute `{}` appears in both operands", attr.name),
            });
        }
    }
    let mut schema = a.schema.clone();
    schema.extend(b.schema.iter().cloned());
    let mut out = Relation::new(format!("{}×{}", a.name, b.name), schema);
    for ta in &a.tuples {
        for tb in &b.tuples {
            let mut t = ta.clone();
            t.extend(tb.iter().cloned());
            out.tuples.insert(t);
        }
    }
    Ok(out)
}

/// Equi-join on `a.left = b.right` (hash join). The right join column is
/// dropped from the result (it duplicates the left one); remaining name
/// clashes are an error.
pub fn equi_join(a: &Relation, left: &str, b: &Relation, right: &str) -> Result<Relation> {
    let li = a.attr_index(left)?;
    let ri = b.attr_index(right)?;
    let mut schema = a.schema.clone();
    for (i, attr) in b.schema.iter().enumerate() {
        if i == ri {
            continue;
        }
        if schema.iter().any(|x| x.name == attr.name) {
            return Err(MadError::IncompatibleOperands {
                op: "⋈",
                detail: format!("attribute `{}` appears in both operands", attr.name),
            });
        }
        schema.push(attr.clone());
    }
    let mut out = Relation::new(format!("{}⋈{}", a.name, b.name), schema);
    // hash build on the smaller side conceptually; here: build on b
    let mut table: mad_model::FxHashMap<&Value, Vec<&Vec<Value>>> =
        mad_model::FxHashMap::default();
    for tb in &b.tuples {
        table.entry(&tb[ri]).or_default().push(tb);
    }
    for ta in &a.tuples {
        if ta[li].is_null() {
            continue; // SQL: NULL joins with nothing
        }
        if let Some(matches) = table.get(&ta[li]) {
            for tb in matches {
                let mut t = ta.clone();
                for (i, v) in tb.iter().enumerate() {
                    if i != ri {
                        t.push(v.clone());
                    }
                }
                out.tuples.insert(t);
            }
        }
    }
    Ok(out)
}

/// Natural join over all shared attribute names.
pub fn natural_join(a: &Relation, b: &Relation) -> Result<Relation> {
    let shared: Vec<String> = a
        .schema
        .iter()
        .filter(|x| b.schema.iter().any(|y| y.name == x.name))
        .map(|x| x.name.clone())
        .collect();
    if shared.is_empty() {
        return product(a, b);
    }
    // reduce to a sequence of equi-joins by renaming, for simplicity join on
    // the first shared attribute then select equality on the rest
    let mut out = {
        let renamed: Vec<(String, String)> = shared
            .iter()
            .map(|s| (s.clone(), format!("__rhs_{s}")))
            .collect();
        let rb = rename(
            b,
            &renamed
                .iter()
                .map(|(o, n)| (o.as_str(), n.as_str()))
                .collect::<Vec<_>>(),
        )?;
        let mut joined = equi_join(a, &shared[0], &rb, &format!("__rhs_{}", shared[0]))?;
        for s in &shared[1..] {
            joined = select(
                &joined,
                &Pred::CmpAttr {
                    left: s.clone(),
                    op: Cmp::Eq,
                    right: format!("__rhs_{s}"),
                },
            )?;
        }
        // project away the remaining __rhs_ columns
        let keep: Vec<&str> = joined
            .schema
            .iter()
            .map(|x| x.name.as_str())
            .filter(|n| !n.starts_with("__rhs_"))
            .collect();
        project(&joined, &keep)?
    };
    out.name = format!("{}⋈{}", a.name, b.name);
    Ok(out)
}

/// ∪ — union (schemas must match).
pub fn union(a: &Relation, b: &Relation) -> Result<Relation> {
    if !a.union_compatible(b) {
        return Err(MadError::IncompatibleOperands {
            op: "∪",
            detail: format!("`{}` and `{}` have different schemas", a.name, b.name),
        });
    }
    let mut out = Relation::new(format!("{}∪{}", a.name, b.name), a.schema.clone());
    out.tuples = a.tuples.union(&b.tuples).cloned().collect();
    Ok(out)
}

/// − — difference (schemas must match).
pub fn difference(a: &Relation, b: &Relation) -> Result<Relation> {
    if !a.union_compatible(b) {
        return Err(MadError::IncompatibleOperands {
            op: "−",
            detail: format!("`{}` and `{}` have different schemas", a.name, b.name),
        });
    }
    let mut out = Relation::new(format!("{}−{}", a.name, b.name), a.schema.clone());
    out.tuples = a.tuples.difference(&b.tuples).cloned().collect();
    Ok(out)
}

/// ∩ — intersection, via double difference (mirroring Ψ of §3.2).
pub fn intersect(a: &Relation, b: &Relation) -> Result<Relation> {
    let d = difference(a, b)?;
    let mut out = difference(a, &d)?;
    out.name = format!("{}∩{}", a.name, b.name);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::AttrType;

    fn states() -> Relation {
        let mut r = Relation::with_attrs(
            "state",
            &[("sname", AttrType::Text), ("hectare", AttrType::Float)],
        );
        r.insert_all([
            vec![Value::from("SP"), Value::from(1000.0)],
            vec![Value::from("MG"), Value::from(900.0)],
            vec![Value::from("RJ"), Value::from(500.0)],
        ])
        .unwrap();
        r
    }

    fn state_area() -> Relation {
        // auxiliary relation for the n:m link type
        let mut r = Relation::with_attrs(
            "state_area",
            &[("sname", AttrType::Text), ("aid", AttrType::Int)],
        );
        r.insert_all([
            vec![Value::from("SP"), Value::from(1)],
            vec![Value::from("MG"), Value::from(2)],
            vec![Value::from("MG"), Value::from(3)],
        ])
        .unwrap();
        r
    }

    #[test]
    fn select_with_predicate() {
        let r = states();
        let big = select(&r, &Pred::cmp("hectare", Cmp::Gt, 600.0)).unwrap();
        assert_eq!(big.len(), 2);
        let none = select(&r, &Pred::cmp("hectare", Cmp::Gt, 9999.0)).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn select_attr_vs_attr() {
        let mut r = Relation::with_attrs("m", &[("a", AttrType::Int), ("b", AttrType::Int)]);
        r.insert_all([
            vec![Value::from(1), Value::from(2)],
            vec![Value::from(3), Value::from(3)],
        ])
        .unwrap();
        let eq = select(
            &r,
            &Pred::CmpAttr {
                left: "a".into(),
                op: Cmp::Eq,
                right: "b".into(),
            },
        )
        .unwrap();
        assert_eq!(eq.len(), 1);
    }

    #[test]
    fn project_dedups() {
        let mut r = Relation::with_attrs("m", &[("a", AttrType::Int), ("b", AttrType::Int)]);
        r.insert_all([
            vec![Value::from(1), Value::from(2)],
            vec![Value::from(1), Value::from(3)],
        ])
        .unwrap();
        let p = project(&r, &["a"]).unwrap();
        assert_eq!(p.len(), 1);
        assert!(project(&r, &["ghost"]).is_err());
    }

    #[test]
    fn product_disjointness() {
        let a = states();
        assert!(product(&a, &a).is_err());
        let b = Relation::with_attrs("x", &[("k", AttrType::Int)]);
        let p = product(&a, &b).unwrap();
        assert_eq!(p.arity(), 3);
        assert!(p.is_empty(), "empty × anything = empty");
    }

    #[test]
    fn equi_join_states_with_aux() {
        let s = states();
        let sa = state_area();
        let j = equi_join(&s, "sname", &sa, "sname").unwrap();
        assert_eq!(j.len(), 3, "SP×1, MG×2");
        assert_eq!(j.arity(), 3);
        // NULL never joins
        let mut s2 = states();
        s2.insert(vec![Value::Null, Value::from(1.0)]).unwrap();
        let j2 = equi_join(&s2, "sname", &sa, "sname").unwrap();
        assert_eq!(j2.len(), 3);
    }

    #[test]
    fn natural_join_on_shared_attr() {
        let s = states();
        let sa = state_area();
        let j = natural_join(&s, &sa).unwrap();
        assert_eq!(j.len(), 3);
        assert_eq!(j.arity(), 3, "shared column kept once");
        // no shared attrs → degenerates to product
        let b = Relation::with_attrs("x", &[("k", AttrType::Int)]);
        let p = natural_join(&s, &b).unwrap();
        assert_eq!(p.arity(), 3);
    }

    #[test]
    fn union_difference_intersect() {
        let s = states();
        let big = select(&s, &Pred::cmp("hectare", Cmp::Gt, 600.0)).unwrap();
        let small = select(&s, &Pred::cmp("hectare", Cmp::Le, 600.0)).unwrap();
        let u = union(&big, &small).unwrap();
        assert_eq!(u.len(), 3);
        let d = difference(&s, &big).unwrap();
        assert_eq!(d, small.clone_with_name(&d.name));
        let i = intersect(&s, &big).unwrap();
        assert_eq!(i.len(), 2);
        // incompatible schemas rejected
        let x = Relation::with_attrs("x", &[("k", AttrType::Int)]);
        assert!(union(&s, &x).is_err());
        assert!(difference(&s, &x).is_err());
    }

    #[test]
    fn rename_changes_schema_only() {
        let s = states();
        let r = rename(&s, &[("sname", "state_name")]).unwrap();
        assert!(r.attr_index("state_name").is_ok());
        assert_eq!(r.len(), s.len());
        assert!(rename(&s, &[("ghost", "x")]).is_err());
    }

    impl Relation {
        fn clone_with_name(&self, name: &str) -> Relation {
            let mut c = self.clone();
            c.name = name.to_owned();
            c
        }
    }
}
