//! The MAD → relational schema mapping.
//!
//! §2: "It is easy to imagine that a transformation to the relational model
//! becomes quite cumbersome, since all n:m relationship types have to be
//! modeled by some auxiliary relations." This module performs that
//! transformation faithfully — and fairly:
//!
//! * each atom type becomes a relation with a surrogate key column `_id`
//!   (the packed [`mad_model::AtomId`], so results remain comparable with
//!   the MAD side),
//! * a link type with a `max ≤ 1` cardinality on one side becomes a
//!   **foreign key** column on that side's relation (the relational model's
//!   native representation of 1:1 / 1:n),
//! * every other (n:m) link type becomes an **auxiliary relation**
//!   `lname(_from, _to)` — the transformation the paper complains about.

use crate::relation::Relation;
use mad_model::{AtomId, AttrDef, AttrType, LinkTypeId, MadError, Result, Value};
use mad_storage::Database;

/// How one link type was mapped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkMapping {
    /// Foreign-key column `fk_<lname>` embedded into the relation of
    /// `ends[side]` (that side has `max ≤ 1` partners).
    ForeignKey {
        /// The side holding the FK column (0 or 1).
        side: usize,
        /// Column name.
        column: String,
    },
    /// Auxiliary relation `lname(_from, _to)`.
    Auxiliary,
}

/// The relational image of a MAD database.
#[derive(Clone, Debug)]
pub struct RelationalImage {
    /// One relation per atom type, in schema order. Column 0 is `_id`.
    pub atom_relations: Vec<Relation>,
    /// One entry per link type describing its mapping; auxiliary relations
    /// are stored alongside.
    pub link_mappings: Vec<(LinkMapping, Option<Relation>)>,
}

fn pack(id: AtomId) -> Value {
    Value::Int(id.pack() as i64)
}

/// Unpack a surrogate key back into an [`AtomId`].
pub fn unpack(v: &Value) -> Result<AtomId> {
    v.as_int()
        .map(|i| AtomId::unpack(i as u64))
        .ok_or_else(|| MadError::integrity(format!("not a surrogate key: {v}")))
}

impl RelationalImage {
    /// Transform `db` into its relational image.
    pub fn from_database(db: &Database) -> Result<Self> {
        let schema = db.schema();
        // decide mappings first, because FK columns extend atom relations
        let mut link_mappings: Vec<LinkMapping> = Vec::new();
        for (_, lt) in schema.link_types() {
            // a side with max ≤ 1 can hold the FK; reflexive link types
            // also qualify (the FK then references the same relation)
            let fk_side = (0..2).find(|&s| matches!(lt.cards[s].max, Some(m) if m <= 1));
            match fk_side {
                Some(side) => link_mappings.push(LinkMapping::ForeignKey {
                    side,
                    column: format!("fk_{}", lt.name),
                }),
                None => link_mappings.push(LinkMapping::Auxiliary),
            }
        }
        // build atom relations (with FK columns appended)
        let mut atom_relations: Vec<Relation> = Vec::new();
        for (ty, def) in schema.atom_types() {
            let mut attrs = vec![AttrDef::new("_id", AttrType::Int)];
            attrs.extend(def.attrs.iter().cloned());
            for (li, (_, lt)) in schema.link_types().enumerate() {
                if let LinkMapping::ForeignKey { side, column } = &link_mappings[li] {
                    if lt.ends[*side] == ty {
                        attrs.push(AttrDef::new(column.clone(), AttrType::Int));
                    }
                }
            }
            let mut rel = Relation::new(def.name.clone(), attrs);
            for (id, tuple) in db.atoms_of(ty) {
                let mut row = vec![pack(id)];
                row.extend(tuple.iter().cloned());
                // FK columns
                for (li, (ltid, lt)) in schema.link_types().enumerate() {
                    if let LinkMapping::ForeignKey { side, .. } = &link_mappings[li] {
                        if lt.ends[*side] == ty {
                            let partners = if *side == 0 {
                                db.link_store(ltid).partners_fwd(id)
                            } else {
                                db.link_store(ltid).partners_bwd(id)
                            };
                            row.push(match partners.first() {
                                Some(&p) => pack(p),
                                None => Value::Null,
                            });
                        }
                    }
                }
                rel.insert(row)?;
            }
            atom_relations.push(rel);
        }
        // auxiliary relations for the n:m link types
        let mut mappings: Vec<(LinkMapping, Option<Relation>)> = Vec::new();
        for (li, (ltid, lt)) in schema.link_types().enumerate() {
            match &link_mappings[li] {
                fk @ LinkMapping::ForeignKey { .. } => mappings.push((fk.clone(), None)),
                LinkMapping::Auxiliary => {
                    let mut rel = Relation::with_attrs(
                        &lt.name,
                        &[("_from", AttrType::Int), ("_to", AttrType::Int)],
                    );
                    for (a, b) in db.links_of(ltid) {
                        rel.insert(vec![pack(a), pack(b)])?;
                    }
                    mappings.push((LinkMapping::Auxiliary, Some(rel)));
                }
            }
        }
        Ok(RelationalImage {
            atom_relations,
            link_mappings: mappings,
        })
    }

    /// The relation of an atom type.
    pub fn atom_relation(&self, ty: mad_model::AtomTypeId) -> &Relation {
        &self.atom_relations[ty.0 as usize]
    }

    /// The mapping of a link type.
    pub fn link_mapping(&self, lt: LinkTypeId) -> &(LinkMapping, Option<Relation>) {
        &self.link_mappings[lt.0 as usize]
    }

    /// Number of auxiliary relations the transformation needed — the §2
    /// "cumbersomeness" measure reported by the figure harness.
    pub fn auxiliary_count(&self) -> usize {
        self.link_mappings
            .iter()
            .filter(|(m, _)| matches!(m, LinkMapping::Auxiliary))
            .count()
    }

    /// Total number of relations in the image.
    pub fn relation_count(&self) -> usize {
        self.atom_relations.len() + self.auxiliary_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, Cardinality, SchemaBuilder};

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("capital", &[("cname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            // 1:1 → FK
            .link_type_card(
                "state-capital",
                "state",
                Cardinality::AT_MOST_ONE,
                "capital",
                Cardinality::AT_MOST_ONE,
            )
            // n:m → auxiliary
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        let capital = db.schema().atom_type_id("capital").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sc = db.schema().link_type_id("state-capital").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s1 = db.insert_atom(state, vec![Value::from("SP")]).unwrap();
        let s2 = db.insert_atom(state, vec![Value::from("MG")]).unwrap();
        let c1 = db
            .insert_atom(capital, vec![Value::from("Sao Paulo")])
            .unwrap();
        let a1 = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        db.connect(sc, s1, c1).unwrap();
        db.connect(sa, s1, a1).unwrap();
        db.connect(sa, s2, a1).unwrap();
        db
    }

    #[test]
    fn nm_becomes_auxiliary_11_becomes_fk() {
        let db = db();
        let img = RelationalImage::from_database(&db).unwrap();
        assert_eq!(img.auxiliary_count(), 1, "only state-area needs an aux");
        assert_eq!(img.relation_count(), 4, "3 atom relations + 1 aux");
        let sc = db.schema().link_type_id("state-capital").unwrap();
        assert!(matches!(
            img.link_mapping(sc).0,
            LinkMapping::ForeignKey { .. }
        ));
        // state relation has the FK column, filled for SP, null for MG
        let state = db.schema().atom_type_id("state").unwrap();
        let rel = img.atom_relation(state);
        let fk = rel.attr_index("fk_state-capital").unwrap();
        let mut fks: Vec<bool> = rel.tuples.iter().map(|t| t[fk].is_null()).collect();
        fks.sort_unstable();
        assert_eq!(fks, vec![false, true]);
    }

    #[test]
    fn aux_relation_holds_the_links() {
        let db = db();
        let img = RelationalImage::from_database(&db).unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let aux = img.link_mapping(sa).1.as_ref().unwrap();
        assert_eq!(aux.len(), 2);
    }

    #[test]
    fn surrogate_keys_roundtrip() {
        let db = db();
        let img = RelationalImage::from_database(&db).unwrap();
        let state = db.schema().atom_type_id("state").unwrap();
        let rel = img.atom_relation(state);
        for t in &rel.tuples {
            let id = unpack(&t[0]).unwrap();
            assert!(db.atom_exists(id));
            assert_eq!(db.atom(id).unwrap()[0], t[1]);
        }
        assert!(unpack(&Value::from("x")).is_err());
    }
}
