//! Deterministic network-level fault injection: a frame-aware TCP proxy
//! between a standby and its primary.
//!
//! [`FaultProxy`] listens on its own port and forwards to an upstream
//! replication listener. The standby→primary direction (magic, hello,
//! acks) passes through byte-for-byte; the primary→standby direction is
//! parsed at **frame** granularity so faults land on record boundaries
//! deterministically: the `at_frame`-th frame of a connection gets the
//! planned mutilation, a bounded number of times
//! ([`NetFaultPlan::max_fires`]), after which the proxy is transparent —
//! so every experiment has a convergence phase. The standby's own CRC,
//! sequence and protocol checks are the system under test: a mutilated
//! stream must end in reconnect-and-resync or a clean halt, never in
//! silently divergent state.

use mad_model::{MadError, Result};
use mad_net::frame::{read_frame, write_frame, FrameIn, FRAME_HEADER};
use mad_wal::crc32;
use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The kinds of stream mutilation the proxy can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// Deliver the frame twice (a retransmit duplicate).
    DuplicateFrame,
    /// Swap the frame with its successor (middlebox reordering).
    ReorderAdjacent,
    /// Deliver the header plus half the payload, then close — a torn
    /// frame, the wire analogue of a torn WAL tail.
    TornFrame,
    /// Close after 5 of the 8 header bytes — a mid-record disconnect.
    CloseMidFrame,
    /// Hold the frame back for the configured delay, then deliver it
    /// (stream stall / latency spike).
    DelayFrame {
        /// How long to stall.
        millis: u64,
    },
    /// Flip one payload byte and recompute nothing — the CRC must catch
    /// it on the receiving side.
    CorruptPayload,
}

/// Where and how often a [`FaultProxy`] fires.
#[derive(Clone, Copy, Debug)]
pub struct NetFaultPlan {
    /// What to do to the stream.
    pub kind: NetFault,
    /// Which primary→standby frame of a connection to hit (1-based; the
    /// hello is frame 1, the first record frame 2).
    pub at_frame: u64,
    /// Total firings across all connections, after which the proxy is
    /// transparent (so the standby can converge).
    pub max_fires: usize,
}

#[derive(Debug)]
struct Shared {
    upstream: String,
    plan: NetFaultPlan,
    stopping: AtomicBool,
    fired: AtomicUsize,
    conns: Mutex<HashMap<u64, (TcpStream, TcpStream)>>,
    next_conn: AtomicU64,
}

/// A fault-injecting TCP proxy for replication streams (see the module
/// docs). Point a [`crate::StandbyConfig`] at [`FaultProxy::local_addr`]
/// instead of the primary.
#[derive(Debug)]
pub struct FaultProxy {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl FaultProxy {
    /// Listen on `addr` (e.g. `"127.0.0.1:0"`), forwarding to the
    /// primary's replication listener at `upstream`, injecting per
    /// `plan`.
    pub fn start(addr: &str, upstream: impl Into<String>, plan: NetFaultPlan) -> Result<FaultProxy> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| MadError::io(format!("bind fault proxy on {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| MadError::io(format!("fault proxy address: {e}")))?;
        let shared = Arc::new(Shared {
            upstream: upstream.into(),
            plan,
            stopping: AtomicBool::new(false),
            fired: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        let threads = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let threads = Arc::clone(&threads);
            std::thread::spawn(move || accept_loop(listener, shared, threads))
        };
        Ok(FaultProxy {
            shared,
            addr: local,
            accept: Some(accept),
            threads,
        })
    }

    /// The proxy's listening address (give this to the standby).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many times the fault has fired so far.
    pub fn fires(&self) -> usize {
        self.shared.fired.load(Ordering::SeqCst)
    }

    /// Stop proxying, close all streams, join the threads. Idempotent;
    /// also run by `Drop`.
    pub fn shutdown(&mut self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for (_, (a, b)) in self.shared.conns.lock().unwrap().drain() {
            let _ = a.shutdown(std::net::Shutdown::Both);
            let _ = b.shutdown(std::net::Shutdown::Both);
        }
        let threads: Vec<_> = self.threads.lock().unwrap().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, threads: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        let client = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let upstream = match TcpStream::connect(&shared.upstream) {
            Ok(s) => s,
            Err(_) => continue, // primary gone; the standby will retry
        };
        // the proxy must not add latency of its own (beyond planned
        // DelayFrame faults) — forward every byte immediately
        let _ = client.set_nodelay(true);
        let _ = upstream.set_nodelay(true);
        let id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        if let (Ok(c), Ok(u)) = (client.try_clone(), upstream.try_clone()) {
            shared.conns.lock().unwrap().insert(id, (c, u));
        }
        let shared2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            pump_connection(&shared2, client, upstream);
            shared2.conns.lock().unwrap().remove(&id);
        });
        threads.lock().unwrap().push(t);
    }
}

/// Run one proxied connection until either side dies.
fn pump_connection(shared: &Shared, client: TcpStream, upstream: TcpStream) {
    // standby → primary: transparent byte pump (magic, hello, acks)
    let up_thread = {
        let (mut from, mut to) = match (client.try_clone(), upstream.try_clone()) {
            (Ok(f), Ok(t)) => (f, t),
            _ => return,
        };
        std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            let _ = to.shutdown(std::net::Shutdown::Write);
        })
    };
    // primary → standby: frame-aware, where the plan fires
    pump_frames(shared, upstream, client.try_clone());
    let _ = client.shutdown(std::net::Shutdown::Both);
    let _ = up_thread.join();
}

fn pump_frames(shared: &Shared, upstream: TcpStream, client: std::io::Result<TcpStream>) {
    let Ok(mut client) = client else { return };
    let mut reader = BufReader::new(upstream);
    let mut frame_no = 0u64;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(FrameIn::Payload(p)) => p,
            // clean close, or a close the upstream itself tore: propagate
            Ok(FrameIn::Closed) | Err(_) => return,
        };
        frame_no += 1;
        let fire = frame_no == shared.plan.at_frame && claim_fire(shared);
        if !fire {
            if forward(&mut client, &payload).is_err() {
                return;
            }
            continue;
        }
        match shared.plan.kind {
            NetFault::DuplicateFrame => {
                if forward(&mut client, &payload).is_err()
                    || forward(&mut client, &payload).is_err()
                {
                    return;
                }
            }
            NetFault::ReorderAdjacent => {
                // hold this frame, deliver the successor first
                match read_frame(&mut reader) {
                    Ok(FrameIn::Payload(next)) => {
                        frame_no += 1;
                        if forward(&mut client, &next).is_err()
                            || forward(&mut client, &payload).is_err()
                        {
                            return;
                        }
                    }
                    // stream ended under the held frame: deliver it alone
                    Ok(FrameIn::Closed) | Err(_) => {
                        let _ = forward(&mut client, &payload);
                        return;
                    }
                }
            }
            NetFault::TornFrame => {
                let mut bytes = framed(&payload);
                bytes.truncate(FRAME_HEADER + payload.len() / 2);
                let _ = client.write_all(&bytes);
                let _ = client.shutdown(std::net::Shutdown::Both);
                return;
            }
            NetFault::CloseMidFrame => {
                let bytes = framed(&payload);
                let _ = client.write_all(&bytes[..5.min(bytes.len())]);
                let _ = client.shutdown(std::net::Shutdown::Both);
                return;
            }
            NetFault::DelayFrame { millis } => {
                std::thread::sleep(Duration::from_millis(millis));
                if forward(&mut client, &payload).is_err() {
                    return;
                }
            }
            NetFault::CorruptPayload => {
                let mut bytes = framed(&payload);
                let last = bytes.len() - 1;
                bytes[last] ^= 0x01; // breaks the CRC on the receiver
                if client.write_all(&bytes).is_err() {
                    return;
                }
            }
        }
    }
}

/// Atomically claim one firing if the budget allows.
fn claim_fire(shared: &Shared) -> bool {
    shared
        .fired
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < shared.plan.max_fires).then_some(n + 1)
        })
        .is_ok()
}

fn forward(client: &mut TcpStream, payload: &[u8]) -> Result<()> {
    write_frame(client, payload)
}

/// Re-frame a payload exactly as [`write_frame`] would put it on the
/// wire, as mutable bytes the injectors can mutilate.
fn framed(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}
