//! The warm standby: continuous replay of the primary's commit stream
//! into a local WAL and a read-only serving handle, plus promotion.

use crate::proto::{recv_msg, send_msg, ReplMsg, REPL_MAGIC, REPL_PROTOCOL_VERSION};
use mad_model::{MadError, Result};
use mad_storage::Database;
use mad_txn::DbHandle;
use mad_wal::{apply_op, FaultPlan, FsyncPolicy, Wal, WalOp, WalRecord};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How a [`Standby`] reaches its primary and persists the stream.
#[derive(Clone, Debug)]
pub struct StandbyConfig {
    /// The primary's replication listener address.
    pub primary_addr: String,
    /// The standby's **own** write-ahead log (its durability; promotion
    /// recovers from exactly this file).
    pub wal_path: PathBuf,
    /// When the standby's appends reach stable storage — governs what
    /// its [`ReplMsg::Ack`]s promise.
    pub fsync: FsyncPolicy,
    /// First reconnect backoff; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Deterministic fault injection armed on the standby's **own** WAL
    /// (the failover scenario's storage-fault hook): a tripped append or
    /// fsync must end in a clean halt, never silent divergence.
    pub fault: Option<FaultPlan>,
}

impl StandbyConfig {
    /// A config with the default backoff (10 ms base, 500 ms ceiling).
    pub fn new(primary_addr: impl Into<String>, wal_path: impl Into<PathBuf>, fsync: FsyncPolicy) -> Self {
        StandbyConfig {
            primary_addr: primary_addr.into(),
            wal_path: wal_path.into(),
            fsync,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            fault: None,
        }
    }
}

#[derive(Debug, Default)]
struct Shared {
    /// The live connection, kept so `stop`/`promote` can unblock a read.
    conn: Mutex<Option<TcpStream>>,
    records_applied: AtomicU64,
    reconnects: AtomicU64,
    /// The commit sequence last published for reading (mirrors the
    /// serving handle's cursor; kept here so the `repl.standby.*` gauges
    /// need only a weak reference to this state, never to the handle —
    /// the handle owns the registry the gauges live in).
    replicated_seq: AtomicU64,
    /// A clean halt: the replayer refused to continue (local WAL fault,
    /// replay divergence) and recorded why, rather than serving state it
    /// cannot vouch for.
    halted: Mutex<Option<String>>,
}

/// A warm standby: one background thread receives the primary's record
/// stream, appends each commit to the standby's **own** WAL, waits for
/// it to be durable per the configured [`FsyncPolicy`], replays it
/// through the same integrity-checked [`apply_op`] path recovery uses,
/// publishes the new state on a read-only [`DbHandle`] (ordinary
/// sessions serve snapshot reads from it), and acknowledges the sequence
/// back to the primary.
///
/// Failure handling is two-tier:
/// * **Stream trouble** (disconnect, torn frame, out-of-order record) —
///   drop the connection and reconnect with bounded exponential backoff,
///   resuming from the durable cursor; duplicates are skipped by
///   sequence number, so redelivery is idempotent.
/// * **Local trouble** (WAL append/fsync failure, replay divergence) —
///   **halt cleanly**: record the reason ([`Standby::halt_reason`]), stop
///   ingesting, keep serving the last verified state. A standby never
///   silently diverges — it either converges on the primary's history or
///   stops with a diagnosis.
#[derive(Debug)]
pub struct Standby {
    handle: DbHandle,
    stop: Arc<AtomicBool>,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
    wal_path: PathBuf,
    fsync: FsyncPolicy,
}

/// What promotion found while turning the standby's log into a primary.
#[derive(Clone, Copy, Debug)]
pub struct PromotionReport {
    /// The promoted handle's commit sequence (last replicated commit).
    pub last_seq: u64,
    /// Commits replayed by the promotion recovery pass.
    pub commits_replayed: u64,
    /// Bytes of torn tail truncated (a mid-record disconnect's residue).
    pub truncated_bytes: u64,
}

impl Standby {
    /// Start a standby. If `wal_path` already holds a log, the standby
    /// recovers from it first and resumes replication at its cursor;
    /// otherwise the primary must be reachable now — `start` performs
    /// the initial handshake synchronously and waits for the bootstrap
    /// image, so the returned standby always has a serving handle.
    pub fn start(config: StandbyConfig) -> Result<Standby> {
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared::default());

        // establish the initial local state: recovered log, or a
        // synchronously fetched bootstrap image
        let (ingest, conn) = if config.wal_path.exists() {
            let (wal, db, info) = Wal::recover(&config.wal_path, config.fsync)?;
            (
                Ingest {
                    wal,
                    db,
                    have: info.last_seq,
                    fault: config.fault,
                },
                None,
            )
        } else {
            let mut conn = Conn::establish(&config, Some(&shared))?;
            conn.hello(None)?;
            let ingest = match conn.recv()? {
                Some(ReplMsg::Record(WalRecord::Bootstrap { base_seq, snapshot })) => {
                    let db = snapshot.restore()?;
                    let wal = Wal::create_at_seq(&config.wal_path, &db, base_seq, config.fsync)?;
                    Ingest {
                        wal,
                        db,
                        have: base_seq,
                        fault: config.fault,
                    }
                }
                Some(_) => {
                    return Err(MadError::protocol(
                        "primary did not open a fresh standby's stream with a bootstrap image",
                    ))
                }
                None => {
                    return Err(MadError::protocol(
                        "primary closed the stream before the bootstrap image",
                    ))
                }
            };
            conn.ack(ingest.have)?;
            (ingest, Some(conn))
        };
        ingest.wal.set_fault_plan(ingest.fault);

        let handle = DbHandle::new_read_only(ingest.db.clone(), ingest.have);
        shared.replicated_seq.store(ingest.have, Ordering::SeqCst);
        register_standby_gauges(&handle, &shared);
        let thread = {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::spawn(move || ingest_loop(ingest, conn, handle, stop, shared, config))
        };
        Ok(Standby {
            handle,
            stop,
            shared,
            thread: Some(thread),
            wal_path: config.wal_path,
            fsync: config.fsync,
        })
    }

    /// The read-only serving handle (clone it into sessions/servers).
    pub fn handle(&self) -> DbHandle {
        self.handle.clone()
    }

    /// The highest commit sequence published for reading.
    pub fn replicated_seq(&self) -> u64 {
        self.handle.commit_seq()
    }

    /// Commit records applied since start.
    pub fn records_applied(&self) -> u64 {
        self.shared.records_applied.load(Ordering::SeqCst)
    }

    /// Reconnection attempts since start.
    pub fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::SeqCst)
    }

    /// Why the replayer halted, if it did (see the type docs) — `None`
    /// while it is live.
    pub fn halt_reason(&self) -> Option<String> {
        self.shared.halted.lock().unwrap().clone()
    }

    /// **Promote** this standby to a writable primary:
    ///
    /// 1. seal the replication cursor — stop and join the ingest thread,
    ///    so nothing appends to the log after this point;
    /// 2. verify prefix consistency — reopen the log through
    ///    [`DbHandle::open_durable`], whose recovery pass re-checks every
    ///    frame's CRC, truncates any torn tail a mid-record disconnect
    ///    left behind, and replays each commit through the full storage
    ///    integrity machinery (slot verification included);
    /// 3. return the recovered handle, open for writes, its WAL
    ///    positioned for appending at the next sequence.
    ///
    /// The old read-only handle keeps serving its last state; readers
    /// should re-attach to the promoted handle. Errors if recovery lands
    /// *behind* the sequence the standby had already published for reads
    /// — that would mean acknowledged records were lost locally.
    pub fn promote(mut self) -> Result<(DbHandle, PromotionReport)> {
        self.stop_ingest();
        let published = self.handle.commit_seq();
        let promoted = DbHandle::open_durable(&self.wal_path, self.fsync)?;
        let info = promoted
            .recovery_info()
            .expect("open_durable always records recovery info");
        if info.last_seq < published {
            return Err(MadError::wal(format!(
                "promotion lost acknowledged history: log recovered to sequence {} \
                 but sequence {published} was already serving reads",
                info.last_seq
            )));
        }
        Ok((
            promoted,
            PromotionReport {
                last_seq: info.last_seq,
                commits_replayed: info.commits_replayed,
                truncated_bytes: info.truncated_bytes,
            },
        ))
    }

    /// Stop replicating without promoting (the handle keeps serving the
    /// last replicated state). Idempotent; also run by `Drop`.
    pub fn stop_ingest(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(conn) = self.shared.conn.lock().unwrap().take() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Standby {
    fn drop(&mut self) {
        self.stop_ingest();
    }
}

/// Register the standby's `repl.standby.*` poll-gauges in its serving
/// handle's registry, so sessions over the read-only handle can
/// `SHOW STATS repl` the replication cursor, apply counters, and — as a
/// text row — any clean-halt diagnosis. The gauges capture only a
/// [`std::sync::Weak`] of the ingest state; they vanish from snapshots
/// once the standby is dropped.
fn register_standby_gauges(handle: &DbHandle, shared: &Arc<Shared>) {
    let obs = handle.obs().clone();
    {
        let w = Arc::downgrade(shared);
        obs.gauge("repl.standby.replicated_seq", move || {
            w.upgrade().map(|s| s.replicated_seq.load(Ordering::SeqCst))
        });
    }
    {
        let w = Arc::downgrade(shared);
        obs.gauge("repl.standby.records_applied", move || {
            w.upgrade().map(|s| s.records_applied.load(Ordering::SeqCst))
        });
    }
    {
        let w = Arc::downgrade(shared);
        obs.gauge("repl.standby.reconnects", move || {
            w.upgrade().map(|s| s.reconnects.load(Ordering::SeqCst))
        });
    }
    {
        let w = Arc::downgrade(shared);
        obs.text("repl.standby.halt_reason", move || {
            w.upgrade().map(|s| {
                s.halted
                    .lock()
                    .map(|g| g.clone().unwrap_or_else(|| "none (live)".to_owned()))
                    .unwrap_or_else(|_| "unknown (poisoned)".to_owned())
            })
        });
    }
}

/// The replayer's working state: its own log, its working database image
/// (the serving handle publishes clones of it), and the durable cursor.
struct Ingest {
    wal: Wal,
    db: Database,
    have: u64,
    /// Re-armed on every log (re)creation, so a resync keeps the plan.
    fault: Option<FaultPlan>,
}

/// One established, handshaken connection to the primary.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    /// Connect and complete the handshake; on success the next message
    /// is the first catch-up record. Registers the stream in `shared`
    /// (when given) so stop/promote can unblock the read.
    fn establish(config: &StandbyConfig, shared: Option<&Shared>) -> Result<Conn> {
        let stream = TcpStream::connect(&config.primary_addr).map_err(|e| {
            MadError::io(format!("connect to primary {}: {e}", config.primary_addr))
        })?;
        // acks are tiny and latency-critical (sync-quorum commits wait
        // on them); never let Nagle batch them
        let _ = stream.set_nodelay(true);
        let mut writer = stream
            .try_clone()
            .map_err(|e| MadError::io(format!("clone replication stream: {e}")))?;
        if let Some(shared) = shared {
            if let Ok(clone) = stream.try_clone() {
                *shared.conn.lock().unwrap() = Some(clone);
            }
        }
        let reader = BufReader::new(stream);
        writer
            .write_all(REPL_MAGIC)
            .map_err(|e| MadError::io(format!("send replication preamble: {e}")))?;
        Ok(Conn { writer, reader })
    }

    fn hello(&mut self, have: Option<u64>) -> Result<u64> {
        send_msg(
            &mut self.writer,
            &ReplMsg::StandbyHello {
                protocol: REPL_PROTOCOL_VERSION,
                have,
            },
        )?;
        match recv_msg(&mut self.reader)? {
            Some(ReplMsg::PrimaryHello { protocol, last_seq }) => {
                if protocol != REPL_PROTOCOL_VERSION {
                    return Err(MadError::protocol(format!(
                        "primary speaks replication protocol {protocol}, standby speaks \
                         {REPL_PROTOCOL_VERSION}"
                    )));
                }
                Ok(last_seq)
            }
            Some(_) => Err(MadError::protocol("expected a primary hello")),
            None => Err(MadError::protocol("primary closed during the handshake")),
        }
    }

    fn recv(&mut self) -> Result<Option<ReplMsg>> {
        recv_msg(&mut self.reader)
    }

    fn ack(&mut self, seq: u64) -> Result<()> {
        send_msg(&mut self.writer, &ReplMsg::Ack { seq })
    }
}

impl Conn {
    /// Establish **and** greet in one step (the reconnect path).
    fn establish_and_hello(config: &StandbyConfig, shared: &Shared, have: u64) -> Result<Conn> {
        let mut conn = Conn::establish(config, Some(shared))?;
        conn.hello(Some(have))?;
        Ok(conn)
    }
}

/// Why the inner receive loop ended.
enum StreamEnd {
    /// Stream-level trouble: reconnect and resume from the cursor.
    Reconnect,
    /// Local trouble: stop for good, reason already recorded.
    Halt,
}

fn ingest_loop(
    mut ingest: Ingest,
    initial: Option<Conn>,
    handle: DbHandle,
    stop: Arc<AtomicBool>,
    shared: Arc<Shared>,
    config: StandbyConfig,
) {
    let mut conn = initial;
    let mut backoff = config.backoff_base;
    while !stop.load(Ordering::SeqCst) {
        let mut live = match conn.take() {
            Some(c) => c,
            None => match Conn::establish_and_hello(&config, &shared, ingest.have) {
                Ok(c) => {
                    backoff = config.backoff_base;
                    c
                }
                Err(_) => {
                    shared.reconnects.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(config.backoff_max);
                    continue;
                }
            },
        };
        match receive_stream(&mut ingest, &mut live, &handle, &stop, &shared) {
            StreamEnd::Reconnect => {
                shared.conn.lock().unwrap().take();
                shared.reconnects.fetch_add(1, Ordering::SeqCst);
            }
            StreamEnd::Halt => return,
        }
    }
}

/// Drain one connection's records into the local log and serving handle.
fn receive_stream(
    ingest: &mut Ingest,
    conn: &mut Conn,
    handle: &DbHandle,
    stop: &AtomicBool,
    shared: &Shared,
) -> StreamEnd {
    loop {
        if stop.load(Ordering::SeqCst) {
            return StreamEnd::Halt;
        }
        let msg = match conn.recv() {
            Ok(Some(msg)) => msg,
            // clean close, torn frame, checksum mismatch, socket error —
            // all stream trouble: the cursor is durable, reconnect
            Ok(None) | Err(_) => return StreamEnd::Reconnect,
        };
        match msg {
            ReplMsg::Record(WalRecord::Commit { seq, ops }) => {
                if seq <= ingest.have {
                    continue; // duplicate delivery (reconnect overlap)
                }
                if seq != ingest.have + 1 {
                    // a gap is stream corruption (e.g. a reordering
                    // middlebox); the records still exist on the primary,
                    // so resync rather than diverge
                    return StreamEnd::Reconnect;
                }
                match apply_commit(ingest, handle, seq, &ops) {
                    Ok(()) => {}
                    Err(e) => {
                        // local log or replay failure: serving unverified
                        // state would be silent divergence — halt instead
                        *shared.halted.lock().unwrap() = Some(format!(
                            "standby halted at sequence {seq}: {e}"
                        ));
                        return StreamEnd::Halt;
                    }
                }
                shared.records_applied.fetch_add(1, Ordering::SeqCst);
                shared.replicated_seq.store(seq, Ordering::SeqCst);
                if conn.ack(seq).is_err() {
                    return StreamEnd::Reconnect;
                }
            }
            ReplMsg::Record(WalRecord::Bootstrap { base_seq, snapshot }) => {
                // resync: the primary's log no longer reaches our cursor
                // (checkpoint horizon); replace everything
                if base_seq < ingest.have {
                    return StreamEnd::Reconnect; // never go backwards
                }
                let outcome = (|| -> mad_model::Result<()> {
                    let db = snapshot.restore()?;
                    replace_local_log(ingest, db, base_seq)?;
                    handle.install_snapshot(ingest.db.clone(), base_seq)
                })();
                match outcome {
                    Ok(()) => {
                        shared.replicated_seq.store(base_seq, Ordering::SeqCst);
                        if conn.ack(base_seq).is_err() {
                            return StreamEnd::Reconnect;
                        }
                    }
                    Err(e) => {
                        *shared.halted.lock().unwrap() = Some(format!(
                            "standby halted during resync at sequence {base_seq}: {e}"
                        ));
                        return StreamEnd::Halt;
                    }
                }
            }
            // hellos mid-stream or acks toward a standby are nonsense
            ReplMsg::StandbyHello { .. } | ReplMsg::PrimaryHello { .. } | ReplMsg::Ack { .. } => {
                return StreamEnd::Reconnect;
            }
        }
    }
}

/// The per-commit replay pipeline: local WAL append → durable wait →
/// integrity-checked apply → publish for readers. Exactly the recovery
/// path, run continuously.
fn apply_commit(ingest: &mut Ingest, handle: &DbHandle, seq: u64, ops: &[WalOp]) -> Result<()> {
    let lsn = ingest.wal.append_commit(seq, ops)?;
    ingest.wal.wait_durable(lsn)?;
    for op in ops {
        apply_op(&mut ingest.db, op)?;
    }
    handle.install_replicated(ingest.db.clone(), seq)?;
    ingest.have = seq;
    Ok(())
}

/// Swap the local log for a fresh one bootstrapped at `base_seq`.
fn replace_local_log(ingest: &mut Ingest, db: Database, base_seq: u64) -> Result<()> {
    let path = ingest.wal.path().to_path_buf();
    let policy = ingest.wal.policy();
    // the old Wal still owns a handle to its active segment; the
    // reinitialize writes the new bootstrap into the next segment number
    // and the manifest swap is the atomic commit point, so a crash
    // mid-resync leaves either log intact. `db` came through
    // `DatabaseSnapshot::restore`, which already ran the full integrity
    // checks recovery would.
    ingest.wal = Wal::reinitialize(&path, &db, base_seq, policy)?;
    ingest.wal.set_fault_plan(ingest.fault);
    ingest.db = db;
    ingest.have = base_seq;
    Ok(())
}
