//! The primary's replication front-end: accept standbys, bring each one
//! to the current commit, then stream live commits.

use crate::proto::{recv_msg, send_msg, ReplMsg, REPL_MAGIC, REPL_PROTOCOL_VERSION};
use mad_model::{MadError, Result};
use mad_storage::DatabaseSnapshot;
use mad_txn::{DbHandle, TailRead};
use mad_wal::WalRecord;
use std::collections::HashMap;
use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Register the primary's `repl.primary.*` poll-gauges in the served
/// handle's registry. Only a [`Weak`] of the shared state is captured, so
/// a shut-down primary's rows disappear at the next snapshot.
fn register_primary_gauges(shared: &Arc<Shared>) {
    let obs = shared.handle.obs().clone();
    {
        let w: Weak<Shared> = Arc::downgrade(shared);
        obs.gauge("repl.primary.attached", move || {
            w.upgrade()
                .map(|s| mad_model::bin::u64_of_usize(s.attached.load(Ordering::SeqCst)))
        });
    }
    {
        let w: Weak<Shared> = Arc::downgrade(shared);
        obs.gauge("repl.primary.streamed", move || {
            w.upgrade().map(|s| s.streamed.load(Ordering::SeqCst))
        });
    }
}

/// How long the live-stream sender waits on the commit feed before
/// re-checking the stop flag.
const FEED_POLL: Duration = Duration::from_millis(50);

#[derive(Debug)]
struct Shared {
    handle: DbHandle,
    stopping: AtomicBool,
    /// Open standby connections by id, so shutdown can unblock them.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// Standbys currently past the handshake (monitoring/tests).
    attached: AtomicUsize,
    /// Records streamed over all connections since start.
    streamed: AtomicU64,
}

/// The replication listener of a durable primary.
///
/// Each accepted standby is served by its own sender thread: it
/// subscribes to the handle's commit feed **before** reading the
/// catch-up state, so the union of (catch-up records, live feed) covers
/// every commit with no gap — duplicates across the seam are filtered by
/// sequence number. Catch-up is either the logged commits after the
/// standby's cursor ([`DbHandle::wal_tail_commits`]) or, when the cursor
/// predates the log's checkpoint horizon (or the standby is fresh), one
/// full bootstrap snapshot. A paired reader thread consumes the
/// standby's [`ReplMsg::Ack`]s into [`DbHandle::standby_ack`], the
/// currency of [`mad_txn::ReplAck::SyncQuorum`] commit waits.
///
/// [`ReplPrimary::shutdown`] stops the listener, closes every stream and
/// seals the handle's replication state so quorum waiters error instead
/// of hanging.
#[derive(Debug)]
pub struct ReplPrimary {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ReplPrimary {
    /// Start streaming `handle`'s commits on `addr` (e.g.
    /// `"127.0.0.1:0"` for an ephemeral test port). The handle must be
    /// durable — the stream *is* the WAL record stream.
    pub fn start(handle: DbHandle, addr: &str) -> Result<ReplPrimary> {
        if !handle.is_durable() {
            return Err(MadError::wal(
                "replication requires a durable primary (the stream is the WAL \
                 record stream); open the handle with a write-ahead log",
            ));
        }
        let listener = TcpListener::bind(addr)
            .map_err(|e| MadError::io(format!("bind replication listener on {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| MadError::io(format!("replication listener address: {e}")))?;
        let shared = Arc::new(Shared {
            handle,
            stopping: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            attached: AtomicUsize::new(0),
            streamed: AtomicU64::new(0),
        });
        register_primary_gauges(&shared);
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let threads = Arc::clone(&conn_threads);
            std::thread::spawn(move || accept_loop(listener, shared, threads))
        };
        Ok(ReplPrimary {
            shared,
            addr: local,
            accept: Some(accept),
            conn_threads,
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Standbys currently attached (past the handshake).
    pub fn standby_count(&self) -> usize {
        self.shared.attached.load(Ordering::SeqCst)
    }

    /// Records streamed to standbys since start (catch-up + live).
    pub fn records_streamed(&self) -> u64 {
        self.shared.streamed.load(Ordering::SeqCst)
    }

    /// Stop accepting, close every standby stream, join the threads and
    /// seal the handle's replication state (quorum waiters error rather
    /// than hang). Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // poke the blocking accept with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for (_, conn) in self.shared.conns.lock().unwrap().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let threads: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
        self.shared.handle.seal_replication();
    }
}

impl Drop for ReplPrimary {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, threads: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        // commit records and acks are small; never let Nagle batch them
        let _ = stream.set_nodelay(true);
        let id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().insert(id, clone);
        }
        let shared2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let _ = serve_standby(&shared2, stream);
            shared2.conns.lock().unwrap().remove(&id);
        });
        threads.lock().unwrap().push(t);
    }
}

/// Serve one standby connection to completion (disconnect or shutdown).
fn serve_standby(shared: &Shared, stream: TcpStream) -> Result<()> {
    let mut writer = stream
        .try_clone()
        .map_err(|e| MadError::io(format!("clone replication stream: {e}")))?;
    let mut reader = BufReader::new(stream);

    // handshake: magic, standby hello
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|e| MadError::protocol(format!("replication preamble: {e}")))?;
    if &magic != REPL_MAGIC {
        return Err(MadError::protocol(
            "connection does not speak the MAD replication protocol",
        ));
    }
    let have = match recv_msg(&mut reader)? {
        Some(ReplMsg::StandbyHello { protocol, have }) => {
            if protocol != REPL_PROTOCOL_VERSION {
                return Err(MadError::protocol(format!(
                    "standby speaks replication protocol {protocol}, primary speaks \
                     {REPL_PROTOCOL_VERSION}"
                )));
            }
            have
        }
        Some(_) => return Err(MadError::protocol("expected a standby hello")),
        None => return Ok(()),
    };

    // subscribe BEFORE reading the catch-up state: every commit is then
    // either in the log/snapshot we read next or in the feed — no gap
    let feed = shared.handle.subscribe_commits();
    let token = shared.handle.register_standby();
    shared.attached.fetch_add(1, Ordering::SeqCst);
    let result = stream_to_standby(shared, &mut writer, reader, have, &feed, token);
    shared.handle.standby_gone(token);
    shared.attached.fetch_sub(1, Ordering::SeqCst);
    result
}

fn stream_to_standby(
    shared: &Shared,
    writer: &mut TcpStream,
    reader: BufReader<TcpStream>,
    have: Option<u64>,
    feed: &std::sync::mpsc::Receiver<mad_txn::FeedCommit>,
    token: u64,
) -> Result<()> {
    send_msg(
        writer,
        &ReplMsg::PrimaryHello {
            protocol: REPL_PROTOCOL_VERSION,
            last_seq: shared.handle.commit_seq(),
        },
    )?;

    // ack reader: standby acks flow into quorum accounting until the
    // connection dies (its exit also signals the sender loop to stop)
    let reader_done = Arc::new(AtomicBool::new(false));
    let ack_thread = {
        let handle = shared.handle.clone();
        let done = Arc::clone(&reader_done);
        std::thread::spawn(move || {
            let mut reader = reader;
            // anything other than an ack (stray message, EOF, transport
            // error) ends the connection's quorum accounting
            while let Ok(Some(ReplMsg::Ack { seq })) = recv_msg(&mut reader) {
                handle.standby_ack(token, seq);
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    let sent = catch_up(shared, writer, have);
    let mut last_sent = match &sent {
        Ok(seq) => *seq,
        Err(_) => 0,
    };
    // live stream: forward feed commits the catch-up did not already cover
    let live = sent.and_then(|_| loop {
        if shared.stopping.load(Ordering::SeqCst) || reader_done.load(Ordering::SeqCst) {
            break Ok(());
        }
        match feed.recv_timeout(FEED_POLL) {
            Ok(commit) => {
                if commit.seq <= last_sent {
                    continue; // already covered by catch-up
                }
                // the publisher pushes the feed under its commit ticket, in
                // publication order — so past the catch-up seam every commit
                // is the exact successor. A gap here means the pipeline
                // published out of order; streaming it would hand the
                // standby a hole it can never fill, so fail the connection
                // loudly instead.
                if commit.seq != last_sent + 1 {
                    debug_assert_eq!(
                        commit.seq,
                        last_sent + 1,
                        "commit feed must be gap-free in publication order"
                    );
                    return Err(MadError::wal(format!(
                        "commit feed gap on the live stream: expected sequence {}, got {}",
                        last_sent + 1,
                        commit.seq
                    )));
                }
                send_msg(
                    writer,
                    &ReplMsg::Record(WalRecord::Commit {
                        seq: commit.seq,
                        ops: commit.ops,
                    }),
                )?;
                shared.streamed.fetch_add(1, Ordering::SeqCst);
                last_sent = commit.seq;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break Ok(()),
        }
    });
    // unblock and collect the ack reader
    let _ = writer.shutdown(std::net::Shutdown::Both);
    let _ = ack_thread.join();
    live
}

/// Bring the standby to the primary's current commit; returns the last
/// sequence covered (everything later comes from the live feed).
fn catch_up(shared: &Shared, writer: &mut TcpStream, have: Option<u64>) -> Result<u64> {
    let tail = match have {
        Some(cursor) => shared.handle.wal_tail_commits(cursor)?.expect(
            "ReplPrimary::start checked the handle is durable",
        ),
        None => TailRead::SnapshotNeeded { base_seq: 0 },
    };
    match tail {
        TailRead::Commits(records) => {
            let mut last = have.unwrap_or(0);
            for (seq, ops) in records {
                send_msg(writer, &ReplMsg::Record(WalRecord::Commit { seq, ops }))?;
                shared.streamed.fetch_add(1, Ordering::SeqCst);
                last = seq;
            }
            Ok(last)
        }
        TailRead::SnapshotNeeded { .. } => {
            // the log cannot replay the standby's cursor forward (fresh
            // standby, or a checkpoint folded those records away): ship a
            // full image of the current committed state
            let (db, seq) = shared.handle.fork();
            let snapshot = Box::new(DatabaseSnapshot::capture(&db));
            send_msg(
                writer,
                &ReplMsg::Record(WalRecord::Bootstrap {
                    base_seq: seq,
                    snapshot,
                }),
            )?;
            shared.streamed.fetch_add(1, Ordering::SeqCst);
            Ok(seq)
        }
    }
}
