#![forbid(unsafe_code)]

//! # mad-repl — streaming WAL replication, standby promotion, fault injection
//!
//! PR 4 made commits durable (one node, one log); PR 5 put the database
//! on the network. This crate combines the two into **availability**: a
//! primary streams its resolved commit records to warm standbys that
//! replay them continuously and can take over when the primary dies.
//!
//! * [`proto`] — the wire format. The stream transports
//!   [`mad_wal::WalRecord`]s verbatim over `mad_net`-style CRC-framed
//!   connections: what a standby receives **is** what it appends to its
//!   own log, so the byte format and the integrity discipline are the
//!   WAL's, not a second spec.
//! * [`ReplPrimary`] ([`primary`]) — the primary's listener. Each standby
//!   gets a catch-up phase (logged commits after its cursor, or one full
//!   bootstrap snapshot when a checkpoint folded those away) spliced
//!   gap-free onto the live commit feed, which `mad_txn` pushes under the
//!   publication lock — stream order *is* commit order. Standby
//!   acknowledgments flow back into the handle's quorum accounting,
//!   giving [`mad_txn::ReplAck::SyncQuorum`] commits their semantics: the
//!   client's `COMMIT` returns only once `n` standbys hold the record
//!   durably.
//! * [`Standby`] ([`standby`]) — the warm standby: append to own WAL →
//!   fsync per policy → integrity-checked replay ([`mad_wal::apply_op`],
//!   slot verification included) → publish on a read-only
//!   [`mad_txn::DbHandle`] serving ordinary snapshot reads → ack.
//!   Stream trouble reconnects with bounded backoff and resumes from the
//!   durable cursor; local trouble **halts cleanly** with a recorded
//!   reason. A standby never silently diverges.
//! * [`Standby::promote`] — failover: seal the replication cursor, then
//!   reopen the local log through the full crash-recovery path (CRC
//!   verification, torn-tail truncation, deterministic replay) — recovery
//!   *is* the prefix-consistency check — yielding a writable primary that
//!   continues the sequence numbering.
//! * [`FaultProxy`] ([`fault`]) — deterministic network fault injection
//!   (duplicated, reordered, torn, delayed, corrupted frames; mid-record
//!   disconnects) between standby and primary, complementing
//!   [`mad_wal::FaultPlan`]'s injected append/fsync failures. The
//!   failover scenario in `mad_workload` drives both.
//!
//! ## Replication invariants
//!
//! 1. **Gap-free prefix** — a standby's state is always the primary's
//!    commit history up to its cursor: exact, in order, no holes.
//!    Catch-up and live feed are spliced under subscription-before-read;
//!    duplicates are skipped by sequence; a sequence gap on the wire
//!    forces a resync instead of an apply.
//! 2. **Ack = standby durability** — a standby acknowledges a sequence
//!    only after its *own* log holds the record per its fsync policy, so
//!    a quorum-acked commit survives the primary's disk dying.
//! 3. **Converge or halt** — injected faults (network or storage) end in
//!    a reconnect-and-catch-up or a cleanly reported halt, never in a
//!    standby serving state that differs from some primary prefix.
//! 4. **Promotion preserves acked history** — the promoted handle
//!    recovers at least every sequence the standby ever served to
//!    readers; promotion errors rather than losing acknowledged commits.
//!
//! The layering stays `model → storage → wal → txn → {mql, net} → repl`
//! (see `ARCHITECTURE.md`).

#![warn(missing_docs)]

pub mod fault;
pub mod primary;
pub mod proto;
pub mod standby;

pub use fault::{FaultProxy, NetFault, NetFaultPlan};
pub use primary::ReplPrimary;
pub use proto::{ReplMsg, REPL_MAGIC, REPL_PROTOCOL_VERSION};
pub use standby::{PromotionReport, Standby, StandbyConfig};

// the replication vocabulary of the txn layer, re-exported so harnesses
// need no direct txn import for the ack knob
pub use mad_txn::ReplAck;
