//! The replication wire format.
//!
//! This module is the **normative spec** of what crosses a replication
//! connection (see `ARCHITECTURE.md` for the prose version):
//!
//! ```text
//! connection := standby-magic standby-hello primary-hello catchup live*
//! standby-magic := "MADREPL1"                  (8 bytes, standby → primary)
//! frame  := len:u32le crc:u32le payload[len]   (crc = CRC-32/IEEE, as mad_net)
//! msg    := 0x00 standby-hello
//!         | 0x01 primary-hello
//!         | 0x02 record                        (primary → standby)
//!         | 0x03 ack                           (standby → primary)
//! standby-hello := protocol:u32le flag:u8 [have:u64le]  (flag 1 = cursor present)
//! primary-hello := protocol:u32le last_seq:u64le
//! record := WalRecord                          (mad_wal encoding: bootstrap | commit)
//! ack    := seq:u64le
//! catchup := one bootstrap record, or the logged commits after `have`
//! live   := commit records in publication order, gap-free
//! ```
//!
//! The stream deliberately transports [`mad_wal::WalRecord`]s verbatim:
//! what the standby receives **is** what it appends to its own log, so
//! the byte format, the CRC discipline and the recovery machinery are
//! shared with the WAL rather than re-specified. Framing reuses
//! [`mad_net::frame`], inheriting its allocation bound and truncation
//! handling; decode never panics on arbitrary bytes.

use mad_model::bin::{put_u32, put_u64, BinDecode, BinEncode, Reader};
use mad_model::{MadError, Result};
use mad_net::frame::{read_frame, write_frame, FrameIn};
use mad_wal::WalRecord;
use std::io::{Read, Write};

/// The 8-byte connection preamble a standby must send first ("MADREPL" +
/// protocol generation 1).
pub const REPL_MAGIC: &[u8; 8] = b"MADREPL1";

/// Protocol version carried in both hellos; bumped on any incompatible
/// change to the message format.
pub const REPL_PROTOCOL_VERSION: u32 = 1;

/// One replication message.
#[derive(Clone, Debug)]
pub enum ReplMsg {
    /// First message of every connection, standby → primary: the
    /// standby's protocol version and its replication cursor — the
    /// highest commit sequence durably in its local log, or `None` for a
    /// fresh standby that needs a bootstrap image.
    StandbyHello {
        /// The standby's [`REPL_PROTOCOL_VERSION`].
        protocol: u32,
        /// The standby's durable cursor (`None` = bootstrap me).
        have: Option<u64>,
    },
    /// The primary's answer: its protocol version and current commit
    /// sequence (how far behind the standby starts).
    PrimaryHello {
        /// The primary's [`REPL_PROTOCOL_VERSION`].
        protocol: u32,
        /// The primary's commit sequence at connect time.
        last_seq: u64,
    },
    /// One WAL record, primary → standby: a bootstrap image (catch-up
    /// from scratch) or one committed transaction's resolved op log —
    /// byte-identical to what the primary's own log holds.
    Record(WalRecord),
    /// Standby → primary: every record up to and including `seq` is
    /// durably appended to the standby's local log (quorum currency).
    Ack {
        /// The standby's new durable cursor.
        seq: u64,
    },
}

/// Encode a message payload.
pub fn encode_msg(msg: &ReplMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        ReplMsg::StandbyHello { protocol, have } => {
            out.push(0);
            put_u32(&mut out, *protocol);
            match have {
                Some(seq) => {
                    out.push(1);
                    put_u64(&mut out, *seq);
                }
                None => out.push(0),
            }
        }
        ReplMsg::PrimaryHello { protocol, last_seq } => {
            out.push(1);
            put_u32(&mut out, *protocol);
            put_u64(&mut out, *last_seq);
        }
        ReplMsg::Record(rec) => {
            out.push(2);
            rec.encode(&mut out);
        }
        ReplMsg::Ack { seq } => {
            out.push(3);
            put_u64(&mut out, *seq);
        }
    }
    out
}

/// Decode a message payload. Never panics; any malformed input — unknown
/// tag, truncation, trailing garbage — is a [`MadError::Protocol`].
pub fn decode_msg(payload: &[u8]) -> Result<ReplMsg> {
    let mut r = Reader::new(payload);
    let msg = match r.u8().map_err(bad_payload)? {
        0 => {
            let protocol = r.u32().map_err(bad_payload)?;
            let have = match r.u8().map_err(bad_payload)? {
                0 => None,
                1 => Some(r.u64().map_err(bad_payload)?),
                f => {
                    return Err(MadError::protocol(format!(
                        "unknown cursor flag {f} in standby hello"
                    )))
                }
            };
            ReplMsg::StandbyHello { protocol, have }
        }
        1 => ReplMsg::PrimaryHello {
            protocol: r.u32().map_err(bad_payload)?,
            last_seq: r.u64().map_err(bad_payload)?,
        },
        2 => ReplMsg::Record(WalRecord::decode(&mut r).map_err(bad_payload)?),
        3 => ReplMsg::Ack {
            seq: r.u64().map_err(bad_payload)?,
        },
        t => return Err(MadError::protocol(format!("unknown replication message tag {t}"))),
    };
    r.expect_end().map_err(bad_payload)?;
    Ok(msg)
}

fn bad_payload(e: MadError) -> MadError {
    MadError::protocol(format!("malformed replication payload: {e}"))
}

/// Write one message as a frame.
pub fn send_msg(w: &mut impl Write, msg: &ReplMsg) -> Result<()> {
    write_frame(w, &encode_msg(msg))
}

/// Read one message. `Ok(None)` is a clean close at a frame boundary.
pub fn recv_msg(r: &mut impl Read) -> Result<Option<ReplMsg>> {
    match read_frame(r)? {
        FrameIn::Payload(payload) => decode_msg(&payload).map(Some),
        FrameIn::Closed => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_and_ack_roundtrip() {
        for msg in [
            ReplMsg::StandbyHello {
                protocol: REPL_PROTOCOL_VERSION,
                have: None,
            },
            ReplMsg::StandbyHello {
                protocol: REPL_PROTOCOL_VERSION,
                have: Some(42),
            },
            ReplMsg::PrimaryHello {
                protocol: REPL_PROTOCOL_VERSION,
                last_seq: 7,
            },
            ReplMsg::Ack { seq: 99 },
        ] {
            let bytes = encode_msg(&msg);
            let back = decode_msg(&bytes).unwrap();
            // WalRecord carries no PartialEq; byte equality is the spec
            assert_eq!(encode_msg(&back), bytes, "{msg:?}");
        }
    }

    #[test]
    fn commit_record_roundtrips() {
        let msg = ReplMsg::Record(WalRecord::Commit {
            seq: 12,
            ops: Vec::new(),
        });
        let bytes = encode_msg(&msg);
        match decode_msg(&bytes).unwrap() {
            ReplMsg::Record(WalRecord::Commit { seq, ops }) => {
                assert_eq!(seq, 12);
                assert!(ops.is_empty());
            }
            other => panic!("mis-decoded: {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_error_instead_of_panicking() {
        assert!(decode_msg(&[]).is_err());
        assert!(decode_msg(&[9]).is_err()); // unknown tag
        assert!(decode_msg(&[0, 1, 0, 0, 0, 7]).is_err()); // bad cursor flag
        let good = encode_msg(&ReplMsg::Ack { seq: 5 });
        for cut in 0..good.len() {
            assert!(decode_msg(&good[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_msg(&trailing).is_err(), "trailing garbage accepted");
    }
}
