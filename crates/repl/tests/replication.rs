//! End-to-end replication tests: stream, catch-up, quorum, promotion,
//! resync across a checkpoint horizon.

use mad_model::{AttrType, SchemaBuilder, Value};
use mad_repl::{ReplAck, ReplPrimary, Standby, StandbyConfig};
use mad_storage::{Database, DatabaseSnapshot};
use mad_txn::{DbHandle, FsyncPolicy, Transaction};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mad-repl-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_db() -> Database {
    let schema = SchemaBuilder::new()
        .atom_type("item", &[("label", AttrType::Text), ("rank", AttrType::Int)])
        .build()
        .unwrap();
    Database::new(schema)
}

fn commit_item(handle: &DbHandle, label: &str, rank: i64) {
    let item = handle.committed().schema().atom_type_id("item").unwrap();
    let mut t = Transaction::begin(handle);
    t.insert_atom(item, vec![Value::from(label), Value::from(rank)])
        .unwrap();
    t.commit().unwrap();
}

fn image(handle: &DbHandle) -> String {
    DatabaseSnapshot::capture(&handle.committed()).to_json_string()
}

/// Spin until the standby's published sequence reaches `seq`.
fn await_seq(standby: &Standby, seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while standby.replicated_seq() < seq {
        assert!(
            Instant::now() < deadline,
            "standby stuck at sequence {} waiting for {seq} (halt: {:?})",
            standby.replicated_seq(),
            standby.halt_reason()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn fresh_standby_bootstraps_and_follows_live_commits() {
    let dir = tmpdir("follow");
    let primary =
        DbHandle::create_durable(small_db(), dir.join("primary.wal"), FsyncPolicy::Group).unwrap();
    commit_item(&primary, "before", 1); // history before the standby exists
    let mut repl = ReplPrimary::start(primary.clone(), "127.0.0.1:0").unwrap();

    let standby = Standby::start(StandbyConfig::new(
        repl.local_addr().to_string(),
        dir.join("standby.wal"),
        FsyncPolicy::Group,
    ))
    .unwrap();
    assert_eq!(standby.replicated_seq(), 1, "bootstrap image carries commit 1");
    assert!(standby.handle().is_read_only());

    for i in 2..=6 {
        commit_item(&primary, &format!("live{i}"), i);
    }
    await_seq(&standby, 6);
    assert_eq!(image(&standby.handle()), image(&primary));
    assert!(standby.halt_reason().is_none());
    repl.shutdown();
}

#[test]
fn replication_metrics_report_cursor_lag_and_halt_state() {
    let dir = tmpdir("obs");
    let primary =
        DbHandle::create_durable(small_db(), dir.join("primary.wal"), FsyncPolicy::Group).unwrap();
    commit_item(&primary, "a", 1);
    let mut repl = ReplPrimary::start(primary.clone(), "127.0.0.1:0").unwrap();
    let standby = Standby::start(StandbyConfig::new(
        repl.local_addr().to_string(),
        dir.join("standby.wal"),
        FsyncPolicy::Group,
    ))
    .unwrap();
    commit_item(&primary, "b", 2);
    await_seq(&standby, 2);

    // primary side: attachment, stream volume, and the per-standby
    // cursor/lag rows of the deployment registry
    let find = |snap: &[(String, mad_obs::MetricValue)], name: &str| {
        snap.iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from {snap:?}"))
            .1
            .as_u64()
            .unwrap()
    };
    let snap = primary.obs().snapshot(Some("repl"));
    assert_eq!(find(&snap, "repl.primary.attached"), 1);
    assert!(find(&snap, "repl.primary.streamed") >= 2);
    assert_eq!(find(&snap, "repl.standbys"), 1);
    let acked: Vec<&String> = snap
        .iter()
        .map(|(n, _)| n)
        .filter(|n| n.starts_with("repl.standby.") && n.ends_with(".acked_seq"))
        .collect();
    assert_eq!(acked.len(), 1, "one cursor row per standby: {snap:?}");
    // the standby acknowledged everything: its lag row reads zero. (The
    // ack is sent after publish, so poll briefly.)
    let lag_name = acked[0].replace(".acked_seq", ".lag");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = primary.obs().snapshot(Some("repl"));
        if find(&snap, &lag_name) == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "lag never drained: {snap:?}");
        std::thread::sleep(Duration::from_millis(5));
    }

    // standby side: its serving handle's registry reports the replication
    // cursor, apply counters, and a live halt_reason text row
    let snap = standby.handle().obs().snapshot(Some("repl.standby"));
    assert_eq!(find(&snap, "repl.standby.replicated_seq"), 2);
    assert_eq!(find(&snap, "repl.standby.records_applied"), 1, "bootstrap + 1 live");
    assert_eq!(find(&snap, "repl.standby.reconnects"), 0);
    let halt = snap
        .iter()
        .find(|(n, _)| n == "repl.standby.halt_reason")
        .expect("halt_reason registered");
    assert!(
        matches!(&halt.1, mad_obs::MetricValue::Text(t) if t.contains("live")),
        "got {halt:?}"
    );

    // a detached standby disappears from the primary's rows, and its own
    // gauges go with it once it is dropped
    drop(standby);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = primary.obs().snapshot(Some("repl"));
        if find(&snap, "repl.primary.attached") == 0 && find(&snap, "repl.standbys") == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "standby rows never cleared: {snap:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
    repl.shutdown();
}

#[test]
fn standby_with_a_log_catches_up_from_its_cursor() {
    let dir = tmpdir("catchup");
    let primary =
        DbHandle::create_durable(small_db(), dir.join("primary.wal"), FsyncPolicy::Group).unwrap();
    let mut repl = ReplPrimary::start(primary.clone(), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().to_string();
    let standby_wal = dir.join("standby.wal");

    // phase 1: replicate two commits, then stop the standby entirely
    commit_item(&primary, "a", 1);
    commit_item(&primary, "b", 2);
    let standby = Standby::start(StandbyConfig::new(
        &addr,
        &standby_wal,
        FsyncPolicy::Group,
    ))
    .unwrap();
    await_seq(&standby, 2);
    drop(standby);

    // phase 2: the primary advances while the standby is down
    for i in 3..=5 {
        commit_item(&primary, &format!("c{i}"), i);
    }

    // phase 3: restart from the same log — must resume at cursor 2 via
    // the log tail, not a bootstrap, and land on the primary's image
    let standby = Standby::start(StandbyConfig::new(
        &addr,
        &standby_wal,
        FsyncPolicy::Group,
    ))
    .unwrap();
    assert_eq!(standby.replicated_seq(), 2, "local recovery first");
    await_seq(&standby, 5);
    assert_eq!(image(&standby.handle()), image(&primary));
    repl.shutdown();
}

#[test]
fn checkpointed_primary_resyncs_a_stale_standby_with_a_snapshot() {
    let dir = tmpdir("resync");
    let primary =
        DbHandle::create_durable(small_db(), dir.join("primary.wal"), FsyncPolicy::Group).unwrap();
    let mut repl = ReplPrimary::start(primary.clone(), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().to_string();
    let standby_wal = dir.join("standby.wal");

    commit_item(&primary, "a", 1);
    let standby = Standby::start(StandbyConfig::new(
        &addr,
        &standby_wal,
        FsyncPolicy::Group,
    ))
    .unwrap();
    await_seq(&standby, 1);
    drop(standby);

    // advance and CHECKPOINT: the log now starts at a bootstrap image
    // past the standby's cursor — its tail request cannot be served
    for i in 2..=4 {
        commit_item(&primary, &format!("b{i}"), i);
    }
    primary.checkpoint().unwrap();
    commit_item(&primary, "after-ckpt", 5);

    let standby = Standby::start(StandbyConfig::new(
        &addr,
        &standby_wal,
        FsyncPolicy::Group,
    ))
    .unwrap();
    await_seq(&standby, 5);
    assert_eq!(image(&standby.handle()), image(&primary));
    assert!(standby.halt_reason().is_none(), "{:?}", standby.halt_reason());
    repl.shutdown();
}

#[test]
fn sync_quorum_blocks_until_a_standby_acknowledges() {
    let dir = tmpdir("quorum");
    let primary =
        DbHandle::create_durable(small_db(), dir.join("primary.wal"), FsyncPolicy::Group).unwrap();
    let mut repl = ReplPrimary::start(primary.clone(), "127.0.0.1:0").unwrap();
    primary.set_repl_ack(ReplAck::SyncQuorum(1));

    // with no standby attached, a commit must block — run it in a thread
    let p2 = primary.clone();
    let committer = std::thread::spawn(move || {
        commit_item(&p2, "quorum", 1);
    });
    std::thread::sleep(Duration::from_millis(100));
    assert!(!committer.is_finished(), "commit acked without any standby");

    // attaching a standby releases it: the standby bootstraps (or tails)
    // to the published commit and acks it
    let standby = Standby::start(StandbyConfig::new(
        repl.local_addr().to_string(),
        dir.join("standby.wal"),
        FsyncPolicy::Group,
    ))
    .unwrap();
    committer.join().unwrap();
    await_seq(&standby, 1);

    // and a commit with the standby attached acks promptly
    commit_item(&primary, "quorum2", 2);
    assert_eq!(primary.commit_seq(), 2);
    repl.shutdown();
}

#[test]
fn sealing_replication_errors_quorum_waiters_instead_of_hanging() {
    let dir = tmpdir("seal");
    let primary =
        DbHandle::create_durable(small_db(), dir.join("primary.wal"), FsyncPolicy::Group).unwrap();
    let repl = ReplPrimary::start(primary.clone(), "127.0.0.1:0").unwrap();
    primary.set_repl_ack(ReplAck::SyncQuorum(1));

    let p2 = primary.clone();
    let committer = std::thread::spawn(move || {
        let item = p2.committed().schema().atom_type_id("item").unwrap();
        let mut t = Transaction::begin(&p2);
        t.insert_atom(item, vec![Value::from("sealed"), Value::from(1)])
            .unwrap();
        t.commit()
    });
    std::thread::sleep(Duration::from_millis(100));
    drop(repl); // shutdown seals replication
    let err = committer.join().unwrap().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("sealed"), "unexpected error: {msg}");
    // the commit IS published and locally durable — only its replication
    // is unknown
    assert_eq!(primary.commit_seq(), 1);
}

#[test]
fn promotion_yields_a_writable_primary_that_continues_the_sequence() {
    let dir = tmpdir("promote");
    let primary =
        DbHandle::create_durable(small_db(), dir.join("primary.wal"), FsyncPolicy::Group).unwrap();
    let mut repl = ReplPrimary::start(primary.clone(), "127.0.0.1:0").unwrap();
    for i in 1..=4 {
        commit_item(&primary, &format!("p{i}"), i);
    }
    let standby = Standby::start(StandbyConfig::new(
        repl.local_addr().to_string(),
        dir.join("standby.wal"),
        FsyncPolicy::Group,
    ))
    .unwrap();
    await_seq(&standby, 4);
    let old_image = image(&primary);

    // primary dies
    repl.shutdown();
    drop(primary);

    let (promoted, report) = standby.promote().unwrap();
    assert_eq!(report.last_seq, 4);
    assert!(!promoted.is_read_only());
    assert_eq!(promoted.commit_seq(), 4);
    assert_eq!(image(&promoted), old_image, "promoted state = acked prefix");

    // the promoted node takes writes and continues the numbering
    commit_item(&promoted, "after-failover", 99);
    assert_eq!(promoted.commit_seq(), 5);

    // and its log recovers including the post-failover commit
    drop(promoted);
    let reopened = DbHandle::open_durable(dir.join("standby.wal"), FsyncPolicy::Group).unwrap();
    assert_eq!(reopened.commit_seq(), 5);
}

#[test]
fn writes_to_a_standby_handle_are_refused() {
    let dir = tmpdir("readonly");
    let primary =
        DbHandle::create_durable(small_db(), dir.join("primary.wal"), FsyncPolicy::Group).unwrap();
    commit_item(&primary, "a", 1);
    let mut repl = ReplPrimary::start(primary.clone(), "127.0.0.1:0").unwrap();
    let standby = Standby::start(StandbyConfig::new(
        repl.local_addr().to_string(),
        dir.join("standby.wal"),
        FsyncPolicy::Group,
    ))
    .unwrap();

    let handle = standby.handle();
    let item = handle.committed().schema().atom_type_id("item").unwrap();
    let mut t = Transaction::begin(&handle);
    t.insert_atom(item, vec![Value::from("nope"), Value::from(0)])
        .unwrap();
    let err = t.commit().unwrap_err();
    assert!(err.to_string().contains("read-only"), "got: {err}");
    repl.shutdown();
}

#[test]
fn two_standbys_replicate_independently() {
    let dir = tmpdir("two");
    let primary =
        DbHandle::create_durable(small_db(), dir.join("primary.wal"), FsyncPolicy::Group).unwrap();
    let mut repl = ReplPrimary::start(primary.clone(), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().to_string();
    let s1 = Standby::start(StandbyConfig::new(&addr, dir.join("s1.wal"), FsyncPolicy::Group))
        .unwrap();
    let s2 = Standby::start(StandbyConfig::new(&addr, dir.join("s2.wal"), FsyncPolicy::Group))
        .unwrap();
    primary.set_repl_ack(ReplAck::SyncQuorum(2));
    for i in 1..=3 {
        commit_item(&primary, &format!("x{i}"), i);
    }
    // SyncQuorum(2) means both standbys hold every acked commit durably
    await_seq(&s1, 3);
    await_seq(&s2, 3);
    assert_eq!(image(&s1.handle()), image(&primary));
    assert_eq!(image(&s2.handle()), image(&primary));
    assert_eq!(repl.standby_count(), 2);
    repl.shutdown();
}
