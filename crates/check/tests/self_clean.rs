//! The analyzer, run end to end against the workspace it lives in.
//!
//! This is the integration contract behind the ci.sh step: the real
//! crate graph, the real guard scopes and the committed
//! `check_ratchet.toml` must come back clean. A regression in either
//! direction — new violations in the workspace, or an analyzer change
//! that starts misreading real code — fails here first.

use mad_check::{run_workspace, RatchetMode};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_workspace_passes_its_own_analyzer() {
    let diags = run_workspace(&workspace_root(), RatchetMode::Enforce)
        .expect("the analyzer must be able to load the workspace");
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        diags.is_empty(),
        "the workspace must be clean under its own analyzer:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn the_real_lock_tables_are_loaded() {
    // guard against the failure mode where the normative tables go
    // missing from ARCHITECTURE.md and every lint silently checks
    // nothing: the spec must rank the known locks and layer the crates
    let arch = std::fs::read_to_string(workspace_root().join("ARCHITECTURE.md")).unwrap();
    assert!(arch.contains("Lock hierarchy (normative)"));
    assert!(arch.contains("Crate layering (normative)"));
}
