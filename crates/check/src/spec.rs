//! Parser for the normative tables in `ARCHITECTURE.md`.
//!
//! The analyzer does not hard-code policy: the lock hierarchy and the
//! crate layering are declared as markdown tables under anchored
//! headings in `ARCHITECTURE.md`, and *those tables are the spec* —
//! editing the document changes what the lints enforce. This module
//! extracts them with a small line-oriented scan (first cell = rank,
//! second cell = name, backticks stripped; separator rows and trailing
//! columns ignored).

/// Heading that anchors the lock-hierarchy table.
pub const LOCK_HEADING: &str = "Lock hierarchy (normative)";
/// Heading that anchors the crate-layering table.
pub const LAYER_HEADING: &str = "Crate layering (normative)";

/// The machine-readable policy extracted from ARCHITECTURE.md.
#[derive(Clone, Debug, Default)]
pub struct Spec {
    /// Lock name → hierarchy rank (lower acquires first).
    pub lock_ranks: Vec<(String, u32)>,
    /// Crate name → layer (deps must point strictly downward).
    pub layers: Vec<(String, u32)>,
}

impl Spec {
    /// Rank of a lock name, if it is governed by the hierarchy.
    pub fn lock_rank(&self, name: &str) -> Option<u32> {
        self.lock_ranks.iter().find(|(n, _)| n == name).map(|&(_, r)| r)
    }

    /// Layer of a crate, if declared.
    pub fn layer(&self, krate: &str) -> Option<u32> {
        self.layers.iter().find(|(n, _)| n == krate).map(|&(_, r)| r)
    }
}

/// Parse the two normative tables out of the architecture document.
/// Returns `Err` with a description when either table is missing or
/// malformed — the analyzer refuses to run without its spec.
pub fn parse(doc: &str) -> Result<Spec, String> {
    let lock_ranks = parse_table(doc, LOCK_HEADING)?;
    let layers = parse_table(doc, LAYER_HEADING)?;
    if lock_ranks.is_empty() {
        return Err(format!("table under `{LOCK_HEADING}` has no rows"));
    }
    if layers.is_empty() {
        return Err(format!("table under `{LAYER_HEADING}` has no rows"));
    }
    for (name, _) in &lock_ranks {
        if lock_ranks.iter().filter(|(n, _)| n == name).count() > 1 {
            return Err(format!("duplicate lock `{name}` in hierarchy table"));
        }
    }
    for (name, _) in &layers {
        if layers.iter().filter(|(n, _)| n == name).count() > 1 {
            return Err(format!("duplicate crate `{name}` in layering table"));
        }
    }
    Ok(Spec { lock_ranks, layers })
}

/// Find `heading`, then collect `(name, rank)` from the first table
/// after it: rank from column 1, name from column 2.
fn parse_table(doc: &str, heading: &str) -> Result<Vec<(String, u32)>, String> {
    let mut lines = doc.lines();
    lines
        .by_ref()
        .find(|l| l.starts_with('#') && l.contains(heading))
        .ok_or_else(|| format!("ARCHITECTURE.md: heading `{heading}` not found"))?;
    let mut rows = Vec::new();
    let mut in_table = false;
    for line in lines {
        let t = line.trim();
        if !t.starts_with('|') {
            if in_table {
                break; // table ended
            }
            if t.starts_with('#') {
                return Err(format!(
                    "ARCHITECTURE.md: no table between `{heading}` and the next heading"
                ));
            }
            continue; // prose before the table
        }
        in_table = true;
        let cells: Vec<String> = t
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim().trim_matches('`').to_string())
            .collect();
        if cells.len() < 2 {
            continue;
        }
        // skip the header row and the |---|---| separator
        if cells[0].chars().all(|c| matches!(c, '-' | ':' | ' ')) {
            continue;
        }
        let Ok(rank) = cells[0].parse::<u32>() else {
            continue; // header row ("Rank", "Layer")
        };
        if cells[1].is_empty() {
            return Err(format!(
                "ARCHITECTURE.md: `{heading}` row with rank {rank} has an empty name cell"
            ));
        }
        rows.push((cells[1].clone(), rank));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
# Architecture

### Lock hierarchy (normative)

Prose before the table.

| Rank | Lock | Owner |
|-----:|------|-------|
| 1 | `state` | `mad-txn` |
| 2 | `published` | `mad-txn` |

### Crate layering (normative)

| Layer | Crate |
|------:|-------|
| 0 | `mad-model` |
| 1 | `mad-storage` |

More prose.
";

    #[test]
    fn parses_both_tables() {
        let spec = parse(DOC).unwrap();
        assert_eq!(spec.lock_rank("state"), Some(1));
        assert_eq!(spec.lock_rank("published"), Some(2));
        assert_eq!(spec.lock_rank("nope"), None);
        assert_eq!(spec.layer("mad-model"), Some(0));
        assert_eq!(spec.layer("mad-storage"), Some(1));
    }

    #[test]
    fn missing_heading_is_an_error() {
        let err = parse("# nothing here\n").unwrap_err();
        assert!(err.contains("Lock hierarchy"), "{err}");
    }

    #[test]
    fn heading_without_table_is_an_error() {
        let doc = "### Lock hierarchy (normative)\n\n### next\n";
        let err = parse(doc).unwrap_err();
        assert!(err.contains("no table"), "{err}");
    }

    #[test]
    fn duplicate_rows_are_rejected() {
        let doc = DOC.replace("`published`", "`state`");
        let err = parse(&doc).unwrap_err();
        assert!(err.contains("duplicate lock"), "{err}");
    }
}
