//! Structural check: every crate root (lib root and every `[[bin]]`
//! root, vendor shims included) carries `#![forbid(unsafe_code)]`.
//! The tree is unsafe-free today; this locks the property in at the
//! compiler level and the lint keeps the attribute from quietly
//! disappearing in a refactor.

use crate::tree::{flatten, Node};
use crate::workspace::CrateInfo;
use crate::{Diagnostic, ParsedFile};

/// Run the check.
pub fn check(files: &[ParsedFile], crates: &[CrateInfo], diags: &mut Vec<Diagnostic>) {
    for info in crates {
        for root in &info.roots {
            let Some(f) = files.iter().find(|f| &f.rel_path == root) else {
                diags.push(Diagnostic {
                    file: root.clone(),
                    line: 0,
                    lint: "forbid-unsafe",
                    message: format!("crate root of `{}` not found on disk", info.name),
                });
                continue;
            };
            if !has_forbid(&f.tree) {
                diags.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: 1,
                    lint: "forbid-unsafe",
                    message: format!(
                        "crate root of `{}` is missing `#![forbid(unsafe_code)]`",
                        info.name
                    ),
                });
            }
        }
    }
}

/// Does the file carry an inner `#![forbid(unsafe_code)]` attribute at
/// its top level?
fn has_forbid(tree: &[Node]) -> bool {
    let mut i = 0usize;
    while i + 2 < tree.len() {
        if tree[i].is_punct('#') && tree[i + 1].is_punct('!') {
            if let Node::Group { delim: '[', children, .. } = &tree[i + 2] {
                let text = flatten(children);
                if text.replace(' ', "") == "forbid(unsafe_code)" {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_file, SrcFile};

    fn info(root: &str) -> CrateInfo {
        CrateInfo {
            name: "mad-model".into(),
            dir: "crates/model".into(),
            manifest: "crates/model/Cargo.toml".into(),
            deps: vec![],
            roots: vec![root.into()],
            is_vendor: false,
        }
    }

    fn parsed(src: &str) -> ParsedFile {
        let mut sink = Vec::new();
        parse_file(
            &SrcFile {
                crate_name: "mad-model".into(),
                rel_path: "crates/model/src/lib.rs".into(),
                is_crate_root: true,
                assume_test: false,
                text: src.into(),
            },
            &mut sink,
        )
    }

    #[test]
    fn present_attribute_is_clean() {
        let f = parsed("#![forbid(unsafe_code)]\n//! docs\npub mod error;\n");
        let mut d = Vec::new();
        check(&[f], &[info("crates/model/src/lib.rs")], &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_attribute_is_flagged() {
        let f = parsed("pub mod error;\n");
        let mut d = Vec::new();
        check(&[f], &[info("crates/model/src/lib.rs")], &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, "forbid-unsafe");
        assert!(d[0].message.contains("missing `#![forbid(unsafe_code)]`"));
    }

    #[test]
    fn outer_attribute_does_not_satisfy() {
        let f = parsed("#[forbid(unsafe_code)]\npub mod error;\n");
        let mut d = Vec::new();
        check(&[f], &[info("crates/model/src/lib.rs")], &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
