//! The panic ratchet: a committed per-crate budget of unannotated
//! panic sites that may only move downward.
//!
//! `check_ratchet.toml` is the flag-day escape hatch: the existing
//! sites become a monotone budget instead of a thousand diagnostics.
//! The enforcement is exact-match in both directions — a count *above*
//! budget is a regression, and a count *below* budget is a stale file
//! (run `mad-check --ratchet-update` to bank the improvement so it can
//! never be spent again).

use std::collections::BTreeMap;

use crate::Diagnostic;

/// The committed ratchet file name, relative to the workspace root.
pub const RATCHET_FILE: &str = "check_ratchet.toml";

/// Parse the ratchet file: a `[panics]` table of `"crate" = count`
/// entries. Returns crate → (budget, line).
pub fn parse(text: &str) -> Result<BTreeMap<String, (usize, u32)>, String> {
    let mut out = BTreeMap::new();
    let mut in_panics = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if t.starts_with('[') {
            in_panics = t == "[panics]";
            continue;
        }
        if !in_panics {
            continue;
        }
        let Some((key, val)) = t.split_once('=') else {
            return Err(format!("{RATCHET_FILE}:{lineno}: expected `\"crate\" = count`"));
        };
        let key = key.trim().trim_matches('"').to_string();
        let count: usize = val
            .trim()
            .parse()
            .map_err(|_| format!("{RATCHET_FILE}:{lineno}: `{}` is not a count", val.trim()))?;
        if out.insert(key.clone(), (count, lineno)).is_some() {
            return Err(format!("{RATCHET_FILE}:{lineno}: duplicate entry for `{key}`"));
        }
    }
    Ok(out)
}

/// Compare measured counts against the committed budget.
pub fn compare(
    budget: &BTreeMap<String, (usize, u32)>,
    counts: &BTreeMap<String, usize>,
    diags: &mut Vec<Diagnostic>,
) {
    for (krate, &n) in counts {
        match budget.get(krate) {
            None => diags.push(Diagnostic {
                file: RATCHET_FILE.to_string(),
                line: 0,
                lint: "panic-ratchet",
                message: format!(
                    "no budget entry for `{krate}` ({n} unannotated panic site(s)) — \
                     run `mad-check --ratchet-update`"
                ),
            }),
            Some(&(b, line)) if n > b => diags.push(Diagnostic {
                file: RATCHET_FILE.to_string(),
                line,
                lint: "panic-ratchet",
                message: format!(
                    "`{krate}` has {n} unannotated panic site(s), budget is {b} — the \
                     ratchet only goes down; remove the new unwrap/expect/panic/index \
                     or annotate it with `check: allow(panic, \"…\")`"
                ),
            }),
            Some(&(b, line)) if n < b => diags.push(Diagnostic {
                file: RATCHET_FILE.to_string(),
                line,
                lint: "panic-ratchet",
                message: format!(
                    "`{krate}` has {n} unannotated panic site(s), budget is {b} — \
                     bank the improvement: run `mad-check --ratchet-update`"
                ),
            }),
            Some(_) => {}
        }
    }
    for (krate, &(b, line)) in budget {
        if !counts.contains_key(krate) {
            diags.push(Diagnostic {
                file: RATCHET_FILE.to_string(),
                line,
                lint: "panic-ratchet",
                message: format!(
                    "stale budget entry for `{krate}` (budget {b}, crate not found) — \
                     run `mad-check --ratchet-update`"
                ),
            });
        }
    }
}

/// Render a fresh ratchet file from measured counts.
pub fn render(counts: &BTreeMap<String, usize>) -> String {
    let mut s = String::from(
        "# Panic ratchet for the MAD workspace, maintained by `mad-check`.\n\
         #\n\
         # Each entry is the number of unannotated panic sites (unwrap/expect/\n\
         # panic!/unreachable!/slice-index in non-test code) the crate is allowed.\n\
         # The counts may ONLY DECREASE: mad-check fails CI if a crate exceeds its\n\
         # budget, and also fails if a crate is below budget until the improvement\n\
         # is banked here with `mad-check --ratchet-update` — so a freed-up budget\n\
         # can never be silently spent on a new panic path.\n\n\
         [panics]\n",
    );
    for (krate, n) in counts {
        s.push_str(&format!("\"{krate}\" = {n}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn roundtrip() {
        let c = counts(&[("mad-model", 12), ("mad-txn", 3)]);
        let budget = parse(&render(&c)).unwrap();
        assert_eq!(budget["mad-model"].0, 12);
        assert_eq!(budget["mad-txn"].0, 3);
        let mut d = Vec::new();
        compare(&budget, &c, &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn over_budget_is_a_regression() {
        let budget = parse("[panics]\n\"mad-txn\" = 2\n").unwrap();
        let mut d = Vec::new();
        compare(&budget, &counts(&[("mad-txn", 3)]), &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, "panic-ratchet");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("budget is 2"));
    }

    #[test]
    fn under_budget_demands_an_update() {
        let budget = parse("[panics]\n\"mad-txn\" = 5\n").unwrap();
        let mut d = Vec::new();
        compare(&budget, &counts(&[("mad-txn", 3)]), &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("bank the improvement"));
    }

    #[test]
    fn missing_and_stale_entries_are_flagged() {
        let budget = parse("[panics]\n\"mad-old\" = 1\n").unwrap();
        let mut d = Vec::new();
        compare(&budget, &counts(&[("mad-new", 0)]), &mut d);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("no budget entry for `mad-new`")));
        assert!(d.iter().any(|x| x.message.contains("stale budget entry for `mad-old`")));
    }

    #[test]
    fn malformed_file_is_an_error() {
        assert!(parse("[panics]\nmad-txn\n").is_err());
        assert!(parse("[panics]\n\"a\" = x\n").is_err());
        assert!(parse("[panics]\n\"a\" = 1\n\"a\" = 2\n").is_err());
    }
}
