//! Panic-path audit: count `unwrap`/`expect`/`panic!`-family macros and
//! slice indexing in non-test code, per crate.
//!
//! The counts feed the ratchet ([`crate::ratchet`]): a committed budget
//! that may only decrease. Individual sites carry no diagnostic — the
//! existing tree has over a thousand of them — but a site can be
//! permanently excused (and removed from the count) with
//! `// check: allow(panic, "reason")` stating the invariant that makes
//! it unreachable.

use std::collections::BTreeMap;

use crate::tree::{scan_items, Node};
use crate::{Diagnostic, ParsedFile};

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that make a following `[` a pattern/type, not an index.
const NON_EXPR_IDENTS: &[&str] =
    &["let", "in", "mut", "ref", "return", "break", "continue", "as", "else", "box", "dyn"];

/// Count unannotated panic sites per crate. Only `mad*` crates are
/// audited (the vendor shims are exempt).
pub fn audit(files: &[ParsedFile], _diags: &mut [Diagnostic]) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for f in files {
        if f.assume_test || !(f.crate_name == "mad" || f.crate_name.starts_with("mad-")) {
            continue;
        }
        counts.entry(f.crate_name.clone()).or_default();
        let items = scan_items(&f.tree);
        for func in items.fns.iter().filter(|x| !x.is_test) {
            let Some(body) = func.body else { continue };
            let mut sites = Vec::new();
            collect_sites(body, None, &mut sites);
            let n = sites
                .iter()
                .filter(|&&line| !f.allowed("panic", line))
                .count();
            *counts.get_mut(&f.crate_name).unwrap() += n;
        }
    }
    counts
}

/// Collect the lines of panic sites in a node list. `prev` is the node
/// preceding `nodes[0]` in the parent sequence (for slice-index
/// classification at recursion boundaries it is safe to pass `None` —
/// the index pattern never begins a group).
fn collect_sites<'a>(nodes: &'a [Node], prev: Option<&'a Node>, sites: &mut Vec<u32>) {
    let mut last: Option<&Node> = prev;
    let mut i = 0usize;
    while i < nodes.len() {
        let n = &nodes[i];
        match n {
            Node::Leaf(_) => {
                if let Some(id) = n.ident() {
                    // `.unwrap(` / `.expect(`
                    if matches!(id, "unwrap" | "expect")
                        && last.map(|p| p.is_punct('.')) == Some(true)
                        && matches!(nodes.get(i + 1), Some(Node::Group { delim: '(', .. }))
                    {
                        sites.push(n.line());
                    }
                    // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
                    if PANIC_MACROS.contains(&id)
                        && nodes.get(i + 1).map(|p| p.is_punct('!')) == Some(true)
                    {
                        sites.push(n.line());
                    }
                }
            }
            Node::Group { delim, children, line, .. } => {
                if *delim == '[' && is_index(last) {
                    sites.push(*line);
                }
                collect_sites(children, None, sites);
            }
        }
        last = Some(n);
        i += 1;
    }
}

/// Is a `[…]` group following `prev` a slice/array index expression?
fn is_index(prev: Option<&Node>) -> bool {
    match prev {
        Some(n @ Node::Leaf(_)) => match n.ident() {
            Some(id) => !NON_EXPR_IDENTS.contains(&id),
            // after `!` it's a macro, after `#` an attribute, after
            // other puncts a literal/pattern/type position
            None => false,
        },
        // `foo()[i]`, `a[0][1]`
        Some(Node::Group { delim: '(' | '[', .. }) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_file, SrcFile};

    fn count(src: &str) -> usize {
        let mut sink = Vec::new();
        let f = parse_file(
            &SrcFile {
                crate_name: "mad-model".into(),
                rel_path: "crates/model/src/x.rs".into(),
                is_crate_root: false,
                assume_test: false,
                text: src.into(),
            },
            &mut sink,
        );
        let counts = audit(&[f], &mut []);
        counts["mad-model"]
    }

    #[test]
    fn counts_unwrap_expect_and_macros() {
        assert_eq!(count("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); }"), 3);
        assert_eq!(count("fn f() { match x { _ => unreachable!() } }"), 1);
    }

    #[test]
    fn counts_slice_indexing_but_not_types_or_macros() {
        assert_eq!(count("fn f(b: &[u8]) -> [u8; 4] { g(&b[..4]); [0; 4] }"), 1);
        assert_eq!(count("fn f() { let v = vec![1, 2]; }"), 0);
        assert_eq!(count("#[derive(Debug)] struct S; fn f() {}"), 0);
        assert_eq!(count("fn f(t: &[u32]) -> u32 { t[0] + t[1] }"), 2);
    }

    #[test]
    fn unwrap_or_variants_do_not_count() {
        assert_eq!(count("fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); }"), 0);
    }

    #[test]
    fn test_code_does_not_count() {
        assert_eq!(count("#[cfg(test)] mod t { fn f() { x.unwrap(); } }"), 0);
        assert_eq!(count("#[test] fn t() { x.unwrap(); }"), 0);
    }

    #[test]
    fn annotated_sites_are_excused() {
        let src = "fn f() {\n\
                   // check: allow(panic, \"table is 256 entries by construction\")\n\
                   let x = t[i];\n\
                   let y = u.unwrap();\n}";
        assert_eq!(count(src), 1);
    }
}
