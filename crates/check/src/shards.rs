//! Shard-confinement lint: keep the sharded-lock discipline auditable
//! in one place.
//!
//! The commit pipeline's correctness rests on a single rule — shard
//! locks are only ever taken **one at a time or in ascending index
//! order** (ARCHITECTURE.md, "The commit pipeline"). That rule is only
//! checkable if every indexed acquisition (`shards[i].lock()`) lives in
//! the blessed shard modules (`Config::shard_modules`), where the
//! access patterns are few and hand-audited. Two diagnostics enforce
//! the confinement, both under allow kind `shard`:
//!
//! * **outside a shard module** — any indexed `NAME[…].lock()` /
//!   `.read()` / `.write()` in a lock-lint crate is flagged: callers
//!   must go through the shard module's guard accessors instead of
//!   reaching into the shard vector;
//! * **inside a shard module** — any blocking call (the
//!   [`locks`](crate::locks) `reg-block` list: `wait`, `recv`, `join`,
//!   `sleep`, …) is flagged: shard guards sit on the hot commit path
//!   and must never park the thread, so the module that takes them may
//!   not contain parking primitives at all.
//!
//! Closure bodies are *not* exempt here, unlike in the lock-order walk:
//! an indexed acquisition is a confinement violation no matter which
//! thread runs it, and a blocking call in a shard-module closure still
//! executes inside shard-discipline code.

use crate::tree::{scan_items, Node};
use crate::{Config, Diagnostic, ParsedFile};

/// Run the lint.
pub fn check(files: &[ParsedFile], cfg: &Config, diags: &mut Vec<Diagnostic>) {
    for f in files {
        if !cfg.lock_crates.contains(&f.crate_name) || f.assume_test {
            continue;
        }
        let is_shard_module = cfg.shard_modules.contains(&f.rel_path);
        let items = scan_items(&f.tree);
        for func in items.fns.iter().filter(|x| !x.is_test) {
            let Some(body) = func.body else { continue };
            if is_shard_module {
                flag_blocking(body, f, diags);
            } else {
                flag_indexed(body, f, cfg, diags);
            }
        }
    }
}

/// Flag every indexed lock acquisition in a non-shard-module body.
fn flag_indexed(nodes: &[Node], f: &ParsedFile, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    let mut i = 0usize;
    while i < nodes.len() {
        if let Some((name, method, line)) = indexed_acquisition_at(nodes, i) {
            if !f.allowed("shard", line) {
                diags.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line,
                    lint: "shard",
                    message: format!(
                        "indexed shard-lock acquisition `{name}[…].{method}()` outside \
                         the shard module(s) ({}); the ascending-order discipline is \
                         only auditable there — go through the module's guard accessors",
                        cfg.shard_modules.join(", ")
                    ),
                });
            }
            i += 5;
            continue;
        }
        if let Node::Group { children, .. } = &nodes[i] { // check: allow(panic, "loop condition bounds i")
            flag_indexed(children, f, cfg, diags);
        }
        i += 1;
    }
}

/// Flag every blocking call in a shard-module body.
fn flag_blocking(nodes: &[Node], f: &ParsedFile, diags: &mut Vec<Diagnostic>) {
    let mut i = 0usize;
    while i < nodes.len() {
        if let (Some(node), Some(Node::Group { delim: '(', .. })) =
            (nodes.get(i), nodes.get(i + 1))
        {
            if let Some(name) = node.ident() {
                if crate::locks::BLOCKING_CALLS.contains(&name)
                    && !f.allowed("shard", node.line())
                {
                    diags.push(Diagnostic {
                        file: f.rel_path.clone(),
                        line: node.line(),
                        lint: "shard",
                        message: format!(
                            "blocking call `{name}` inside shard module `{}`; shard \
                             guards sit on the hot commit path and must never park \
                             the thread",
                            f.rel_path
                        ),
                    });
                }
            }
        }
        if let Node::Group { children, .. } = &nodes[i] { // check: allow(panic, "loop condition bounds i")
            flag_blocking(children, f, diags);
        }
        i += 1;
    }
}

/// If `nodes[i]` starts an indexed acquisition
/// `NAME[expr].lock()/.read()/.write()` (empty parens), return the
/// vector name, method, and line. The shape spans 5 nodes.
fn indexed_acquisition_at(nodes: &[Node], i: usize) -> Option<(String, &'static str, u32)> {
    let head = nodes.get(i)?;
    let name = head.ident()?;
    let Some(Node::Group { delim: '[', .. }) = nodes.get(i + 1) else {
        return None;
    };
    if !nodes.get(i + 2)?.is_punct('.') {
        return None;
    }
    let method = match nodes.get(i + 3)?.ident()? {
        "lock" => "lock",
        "read" => "read",
        "write" => "write",
        _ => return None,
    };
    match nodes.get(i + 4)? {
        Node::Group { delim: '(', children, .. } if children.is_empty() => {
            Some((name.to_string(), method, head.line()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_file, SrcFile};

    fn run_at(rel_path: &str, src: &str) -> Vec<Diagnostic> {
        let file = SrcFile {
            crate_name: "mad-txn".into(),
            rel_path: rel_path.into(),
            is_crate_root: false,
            assume_test: false,
            text: src.into(),
        };
        let mut diags = Vec::new();
        let parsed = parse_file(&file, &mut diags);
        check(&[parsed], &Config::default(), &mut diags);
        diags
    }

    #[test]
    fn indexed_acquisition_outside_the_shard_module_is_flagged() {
        let d = run_at(
            "crates/txn/src/handle.rs",
            "fn bad(&self) {\n\
             let g = self.cshard[i].lock().unwrap();\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].lint, "shard");
        assert!(d[0].message.contains("`cshard[…].lock()`"), "{d:?}");
        assert!(d[0].message.contains("crates/txn/src/shard.rs"), "{d:?}");
    }

    #[test]
    fn indexed_acquisition_inside_a_closure_is_still_flagged() {
        let d = run_at(
            "crates/txn/src/handle.rs",
            "fn bad(&self) {\n\
             order.iter().map(|i| self.rshard[i].read().unwrap()).count();\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`rshard[…].read()`"), "{d:?}");
    }

    #[test]
    fn the_shard_module_itself_may_index_its_shards() {
        let d = run_at(
            "crates/txn/src/shard.rs",
            "fn ok(&self) {\n\
             let g = self.cshard[i].lock().unwrap();\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn plain_indexing_without_a_lock_method_is_fine() {
        let d = run_at(
            "crates/txn/src/handle.rs",
            "fn ok(&self) {\n\
             let v = self.feeds[i].clone();\n\
             let n = self.counts[i].load(Ordering::Acquire);\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn blocking_calls_inside_the_shard_module_are_flagged() {
        let d = run_at(
            "crates/txn/src/shard.rs",
            "fn bad(&self) {\n\
             let g = self.cshard[i].lock().unwrap();\n\
             thread::sleep(backoff);\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("blocking call `sleep`"), "{d:?}");
    }

    #[test]
    fn allow_shard_excuses_with_reason() {
        let d = run_at(
            "crates/txn/src/handle.rs",
            "fn ok(&self) {\n\
             // check: allow(shard, \"single-shard fast path, audited\")\n\
             let g = self.cshard[i].lock().unwrap();\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn other_crates_and_test_code_are_exempt(){
        let file = SrcFile {
            crate_name: "mad-model".into(),
            rel_path: "crates/model/src/x.rs".into(),
            is_crate_root: false,
            assume_test: false,
            text: "fn f(&self) { let g = self.tab[i].lock().unwrap(); }".into(),
        };
        let mut diags = Vec::new();
        let parsed = parse_file(&file, &mut diags);
        check(&[parsed], &Config::default(), &mut diags);
        assert!(diags.is_empty(), "{diags:?}");

        let d = run_at(
            "crates/txn/src/handle.rs",
            "#[cfg(test)] mod t { fn f(&self) { let g = self.cshard[i].lock().unwrap(); } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
