//! A Rust token lexer, in the spirit of the MQL lexer: a hand-rolled,
//! dependency-free scanner producing a flat token stream with line
//! numbers, plus the `// check: allow(...)` annotations found in
//! comments.
//!
//! This is *not* a full Rust front-end — it tokenizes exactly as much as
//! the lints need: identifiers, literals (strings, chars, numbers, raw
//! strings), lifetimes, punctuation (with the handful of two-character
//! operators the lints look at joined), and delimiters. Anything the
//! grammar of the analyzed workspace does not use (e.g. nested generic
//! turbofish disambiguation) stays a plain punct sequence.

/// One lexed token kind.
#[derive(Clone, Debug, PartialEq)]
pub enum TokKind {
    /// An identifier or keyword; the text is carried verbatim.
    Ident(String),
    /// An integer literal; `Some(v)` when the value fit into a `u64`
    /// (hex and decimal), `None` for exotic forms the lints ignore.
    Int(Option<u64>),
    /// A float literal.
    Float,
    /// A string, byte-string, raw-string or char literal (content is
    /// irrelevant to every lint).
    Literal,
    /// A lifetime (`'a`).
    Lifetime,
    /// A single punctuation character.
    Punct(char),
    /// One of the joined two/three-character operators the lints care
    /// about: `::`, `->`, `=>`, `..`, `..=`.
    Joined(&'static str),
    /// An opening delimiter: `(`, `[` or `{`.
    Open(char),
    /// A closing delimiter: `)`, `]` or `}`.
    Close(char),
}

/// A token with its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Tok {
    /// What was lexed.
    pub kind: TokKind,
    /// 1-based line number.
    pub line: u32,
}

/// One parsed `// check: allow(kind, "reason")` annotation.
#[derive(Clone, Debug, PartialEq)]
pub struct Annotation {
    /// The lint kind being allowed (`panic`, `cast`, `lock`, …).
    pub kind: String,
    /// The justification string (mandatory).
    pub reason: String,
    /// The source line the annotation *applies to*: the comment's own
    /// line for a trailing comment, the following line for a
    /// comment-only line.
    pub applies_to: u32,
    /// The line the comment itself sits on.
    pub at: u32,
}

/// A lexer-level problem (unterminated literal, malformed annotation,
/// unbalanced delimiter). Reported as a diagnostic by the driver.
#[derive(Clone, Debug)]
pub struct LexError {
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub detail: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Parsed `check:` annotations.
    pub annotations: Vec<Annotation>,
    /// Problems encountered (the file is still tokenized best-effort).
    pub errors: Vec<LexError>,
}

/// Tokenize Rust source.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // does the current line already carry a non-comment token?
    let mut line_has_code = false;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                scan_annotation(text, line, line_has_code, &mut out);
                // the newline itself is handled on the next iteration
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // block comment, nesting like Rust's
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        line_has_code = false;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    out.errors.push(LexError {
                        line,
                        detail: "unterminated block comment".into(),
                    });
                }
            }
            b'"' => {
                i = lex_string(b, i, &mut line, &mut out);
                push(&mut out, TokKind::Literal, line, &mut line_has_code);
            }
            b'r' | b'b' if raw_or_byte_literal_at(b, i) => {
                i = lex_raw_or_byte(b, i, &mut line, &mut out);
                push(&mut out, TokKind::Literal, line, &mut line_has_code);
            }
            b'\'' => {
                // lifetime or char literal
                if is_lifetime_at(b, i) {
                    i += 1;
                    while i < b.len() && is_ident_byte(b[i]) {
                        i += 1;
                    }
                    push(&mut out, TokKind::Lifetime, line, &mut line_has_code);
                } else {
                    i += 1;
                    // consume until the closing quote, honoring backslash
                    // escapes; a char literal never spans lines
                    let start_line = line;
                    loop {
                        if i >= b.len() || b[i] == b'\n' {
                            out.errors.push(LexError {
                                line: start_line,
                                detail: "unterminated char literal".into(),
                            });
                            break;
                        }
                        if b[i] == b'\\' {
                            i += 2;
                        } else if b[i] == b'\'' {
                            i += 1;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                    push(&mut out, TokKind::Literal, line, &mut line_has_code);
                }
            }
            b'0'..=b'9' => {
                let (next, kind) = lex_number(b, src, i);
                i = next;
                push(&mut out, kind, line, &mut line_has_code);
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_byte(b[i]) {
                    i += 1;
                }
                push(
                    &mut out,
                    TokKind::Ident(src[start..i].to_owned()),
                    line,
                    &mut line_has_code,
                );
            }
            b'(' | b'[' | b'{' => {
                push(&mut out, TokKind::Open(c as char), line, &mut line_has_code);
                i += 1;
            }
            b')' | b']' | b'}' => {
                push(&mut out, TokKind::Close(c as char), line, &mut line_has_code);
                i += 1;
            }
            _ => {
                // punctuation, with the joined operators the lints use
                let joined: Option<(&'static str, usize)> = match c {
                    b':' if peek(b, i + 1) == b':' => Some(("::", 2)),
                    b'-' if peek(b, i + 1) == b'>' => Some(("->", 2)),
                    b'=' if peek(b, i + 1) == b'>' => Some(("=>", 2)),
                    b'.' if peek(b, i + 1) == b'.' && peek(b, i + 2) == b'=' => {
                        Some(("..=", 3))
                    }
                    b'.' if peek(b, i + 1) == b'.' => Some(("..", 2)),
                    _ => None,
                };
                match joined {
                    Some((op, n)) => {
                        push(&mut out, TokKind::Joined(op), line, &mut line_has_code);
                        i += n;
                    }
                    None => {
                        push(&mut out, TokKind::Punct(c as char), line, &mut line_has_code);
                        i += 1;
                    }
                }
            }
        }
    }
    out
}

fn push(out: &mut Lexed, kind: TokKind, line: u32, line_has_code: &mut bool) {
    *line_has_code = true;
    out.toks.push(Tok { kind, line });
}

fn peek(b: &[u8], i: usize) -> u8 {
    if i < b.len() {
        b[i]
    } else {
        0
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Is the `'` at `i` the start of a lifetime (rather than a char
/// literal)? A lifetime is `'ident` NOT followed by a closing `'`.
fn is_lifetime_at(b: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if j >= b.len() || !is_ident_start(b[j]) {
        return false;
    }
    while j < b.len() && is_ident_byte(b[j]) {
        j += 1;
    }
    peek(b, j) != b'\''
}

/// Does `r`/`b` at `i` start a raw/byte string or byte char (`r"`,
/// `r#"`, `b"`, `b'`, `br"`, `rb` is not Rust)?
fn raw_or_byte_literal_at(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => {
            let mut j = i + 1;
            while peek(b, j) == b'#' {
                j += 1;
            }
            peek(b, j) == b'"'
        }
        b'b' => matches!(peek(b, i + 1), b'"' | b'\'') || {
            peek(b, i + 1) == b'r' && {
                let mut j = i + 2;
                while peek(b, j) == b'#' {
                    j += 1;
                }
                peek(b, j) == b'"'
            }
        },
        _ => false,
    }
}

/// Lex a plain (escaped) string starting at the opening quote; returns
/// the index just past the closing quote.
fn lex_string(b: &[u8], mut i: usize, line: &mut u32, out: &mut Lexed) -> usize {
    let start_line = *line;
    i += 1;
    loop {
        if i >= b.len() {
            out.errors.push(LexError {
                line: start_line,
                detail: "unterminated string literal".into(),
            });
            return i;
        }
        match b[i] {
            b'\\' => {
                // a line-continuation escape still ends a source line
                if peek(b, i + 1) == b'\n' {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Lex `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#` starting at the
/// prefix; returns the index past the literal.
fn lex_raw_or_byte(b: &[u8], mut i: usize, line: &mut u32, out: &mut Lexed) -> usize {
    // skip the r/b prefix letters
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        i += 1;
    }
    let mut hashes = 0usize;
    while peek(b, i) == b'#' {
        hashes += 1;
        i += 1;
    }
    if peek(b, i) == b'\'' {
        // byte char b'x'
        i += 1;
        if peek(b, i) == b'\\' {
            i += 2;
        } else {
            i += 1;
        }
        if peek(b, i) == b'\'' {
            i += 1;
        }
        return i;
    }
    let start_line = *line;
    i += 1; // opening quote
    if hashes == 0 {
        // raw string without hashes ends at the first quote (no
        // escapes); byte strings honor backslash escapes — treating
        // both like the raw form is safe for tokenization because a
        // byte string cannot contain an unescaped quote either way,
        // except via backslash, which we honor:
        loop {
            if i >= b.len() {
                out.errors.push(LexError {
                    line: start_line,
                    detail: "unterminated raw/byte string".into(),
                });
                return i;
            }
            match b[i] {
                b'\\' => {
                    if peek(b, i + 1) == b'\n' {
                        *line += 1;
                    }
                    i += 2;
                }
                b'"' => return i + 1,
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }
    // hashed raw string: ends at `"` followed by `hashes` hashes
    loop {
        if i >= b.len() {
            out.errors.push(LexError {
                line: start_line,
                detail: "unterminated raw string".into(),
            });
            return i;
        }
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && peek(b, j) == b'#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
}

/// Lex a number starting at a digit; returns (next index, token kind).
fn lex_number(b: &[u8], src: &str, i: usize) -> (usize, TokKind) {
    let start = i;
    let mut j = i;
    if b[j] == b'0' && matches!(peek(b, j + 1), b'x' | b'X' | b'b' | b'B' | b'o' | b'O') {
        let radix = match peek(b, j + 1) {
            b'x' | b'X' => 16,
            b'o' | b'O' => 8,
            _ => 2,
        };
        j += 2;
        let digits_start = j;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        let digits: String = src[digits_start..j]
            .chars()
            .filter(|&c| c != '_')
            .take_while(|c| c.is_digit(radix))
            .collect();
        let v = u64::from_str_radix(&digits, radix).ok();
        return (j, TokKind::Int(v));
    }
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // a float only when `.` is followed by a digit (so `0..2` and
    // `1.max(2)` stay integers), or on an exponent
    let mut is_float = false;
    if peek(b, j) == b'.' && peek(b, j + 1).is_ascii_digit() {
        is_float = true;
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    }
    if matches!(peek(b, j), b'e' | b'E')
        && (peek(b, j + 1).is_ascii_digit()
            || (matches!(peek(b, j + 1), b'+' | b'-') && peek(b, j + 2).is_ascii_digit()))
    {
        is_float = true;
        j += 1;
        if matches!(peek(b, j), b'+' | b'-') {
            j += 1;
        }
        while j < b.len() && b[j].is_ascii_digit() {
            j += 1;
        }
    }
    // type suffix (u32, f64, usize, …)
    let digits_end = j;
    while j < b.len() && is_ident_byte(b[j]) {
        j += 1;
    }
    if src[digits_end..j].starts_with('f') {
        is_float = true;
    }
    if is_float {
        return (j, TokKind::Float);
    }
    let digits: String = src[start..digits_end].chars().filter(|&c| c != '_').collect();
    (j, TokKind::Int(digits.parse().ok()))
}

/// Parse a `check:` annotation out of a line comment, if present.
///
/// Grammar: `// check: allow(KIND, "REASON")` — `KIND` is an identifier,
/// `REASON` a non-empty double-quoted string. A trailing comment (code
/// earlier on the line) applies to its own line; a comment-only line
/// applies to the next line. A comment that *mentions* `check:` but does
/// not parse is reported as an error, so a typoed annotation can never
/// silently stop suppressing.
fn scan_annotation(comment: &str, line: u32, line_has_code: bool, out: &mut Lexed) {
    let body = comment.trim_start_matches('/').trim();
    let Some(rest) = body.strip_prefix("check:") else {
        return;
    };
    let rest = rest.trim();
    let parsed = (|| -> Option<(String, String)> {
        let rest = rest.strip_prefix("allow")?.trim_start();
        let rest = rest.strip_prefix('(')?;
        let (kind, rest) = rest.split_once(',')?;
        let kind = kind.trim();
        if kind.is_empty()
            || !kind.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return None;
        }
        let rest = rest.trim();
        let rest = rest.strip_prefix('"')?;
        let (reason, rest) = rest.split_once('"')?;
        if reason.trim().is_empty() || rest.trim() != ")" {
            return None;
        }
        Some((kind.to_owned(), reason.to_owned()))
    })();
    match parsed {
        Some((kind, reason)) => out.annotations.push(Annotation {
            kind,
            reason,
            applies_to: if line_has_code { line } else { line + 1 },
            at: line,
        }),
        None => out.errors.push(LexError {
            line,
            detail: format!(
                "malformed check annotation `{body}` — expected \
                 `check: allow(kind, \"reason\")` with a non-empty reason"
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let k = kinds("let x = foo.bar(42);");
        assert!(k.contains(&TokKind::Ident("let".into())));
        assert!(k.contains(&TokKind::Int(Some(42))));
        assert!(k.contains(&TokKind::Punct('.')));
    }

    #[test]
    fn ranges_are_not_floats() {
        assert_eq!(
            kinds("0..19"),
            vec![TokKind::Int(Some(0)), TokKind::Joined(".."), TokKind::Int(Some(19))]
        );
        assert_eq!(kinds("2.5"), vec![TokKind::Float]);
        // method call on an integer stays an integer
        let k = kinds("1.max(2)");
        assert_eq!(k[0], TokKind::Int(Some(1)));
    }

    #[test]
    fn hex_and_underscored_ints() {
        assert_eq!(kinds("0xEDB8_8320")[0], TokKind::Int(Some(0xEDB8_8320)));
        assert_eq!(kinds("1_000u64")[0], TokKind::Int(Some(1000)));
    }

    #[test]
    fn lifetimes_vs_chars() {
        assert_eq!(kinds("&'a str")[1], TokKind::Lifetime);
        assert_eq!(kinds("'x'")[0], TokKind::Literal);
        assert_eq!(kinds("'\\n'")[0], TokKind::Literal);
    }

    #[test]
    fn strings_raw_strings_comments() {
        assert_eq!(kinds("\"a \\\" b\""), vec![TokKind::Literal]);
        assert_eq!(kinds("r#\"raw \" inside\"#"), vec![TokKind::Literal]);
        assert_eq!(kinds("b\"MADWAL1\\n\""), vec![TokKind::Literal]);
        assert!(kinds("// just a comment\n").is_empty());
        assert!(kinds("/* block /* nested */ done */").is_empty());
    }

    #[test]
    fn joined_operators() {
        assert_eq!(
            kinds("a::b -> c => d"),
            vec![
                TokKind::Ident("a".into()),
                TokKind::Joined("::"),
                TokKind::Ident("b".into()),
                TokKind::Joined("->"),
                TokKind::Ident("c".into()),
                TokKind::Joined("=>"),
                TokKind::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn string_line_continuations_count_lines() {
        // the `\` + newline escape inside a string spans two source lines
        let lexed = lex("let s = \"a \\\n b\";\nnext");
        let next = lexed
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("next".into()))
            .unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn line_numbers() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn trailing_annotation_applies_to_its_line() {
        let lexed = lex("let x = v.unwrap(); // check: allow(panic, \"startup only\")\n");
        assert_eq!(lexed.annotations.len(), 1);
        let a = &lexed.annotations[0];
        assert_eq!(a.kind, "panic");
        assert_eq!(a.applies_to, 1);
    }

    #[test]
    fn standalone_annotation_applies_to_next_line() {
        let lexed = lex("// check: allow(cast, \"bounded above\")\nlet y = x as u32;\n");
        assert_eq!(lexed.annotations[0].applies_to, 2);
    }

    #[test]
    fn malformed_annotation_is_an_error() {
        let lexed = lex("// check: allow(panic)\n");
        assert_eq!(lexed.annotations.len(), 0);
        assert_eq!(lexed.errors.len(), 1);
        // a reason-free annotation is malformed too
        let lexed = lex("// check: allow(panic, \"\")\n");
        assert_eq!(lexed.errors.len(), 1);
        // ordinary comments mentioning nothing are fine
        assert!(lex("// checkpoint the log\n").errors.is_empty());
    }
}
