#![forbid(unsafe_code)]
//! `mad_check` — a project-specific static analyzer for the MAD
//! workspace.
//!
//! The analyzer is hand-rolled in the same offline discipline as the
//! rest of the tree: no `syn`, no external crates — a Rust token lexer
//! in the style of the MQL lexer ([`lexer`]), a token-tree/item scanner
//! ([`tree`]), and six lints that enforce the project invariants
//! declared in the normative tables of `ARCHITECTURE.md`:
//!
//! * **lock-order** ([`locks`]) — every lexically nested
//!   `.lock()`/`.read()`/`.write()` guard scope in `mad-txn`/`mad-wal`/
//!   `mad-repl` must acquire locks in increasing hierarchy rank, with
//!   one level of interprocedural propagation through a call-graph
//!   approximation. A violation is a statically detected deadlock
//!   candidate on the commit path.
//! * **shard** ([`shards`]) — indexed shard-lock acquisitions
//!   (`shards[i].lock()`) are confined to the blessed shard modules,
//!   which in turn may contain no blocking calls; the ascending
//!   shard-order discipline is only auditable in one place.
//! * **layering** ([`layering`]) — `Cargo.toml` dependencies and
//!   `use mad_*` imports may only point downward in the crate DAG.
//! * **panic-ratchet** ([`panics`]) — `unwrap`/`expect`/`panic!`/
//!   `unreachable!`/slice-indexing in non-test code is budgeted by a
//!   committed ratchet file whose counts may only decrease.
//! * **cast** ([`casts`]) — narrowing `as u32`/`as u64`/`as usize`
//!   casts in the wire-codec files must be `try_into`-checked or carry
//!   an explicit `// check: allow(cast, "…")` justification.
//! * **wire-tag** ([`wiretags`]) — every `MadError` variant has a
//!   transport tag arm in `mad_net::frame`, and encode/decode arm
//!   counts match enum variant counts in every codec.
//!
//! Plus a small structural check ([`forbid`]): every crate root carries
//! `#![forbid(unsafe_code)]`.
//!
//! Suppressions use `// check: allow(kind, "reason")` comments — a
//! trailing comment applies to its own line, a standalone comment to
//! the next line. The reason string is mandatory; a malformed
//! annotation is itself a diagnostic, so a typo can never silently
//! disable a lint.

pub mod casts;
pub mod forbid;
pub mod layering;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod ratchet;
pub mod shards;
pub mod spec;
pub mod tree;
pub mod wiretags;
pub mod workspace;

use std::collections::BTreeMap;
use std::fmt;

use lexer::Annotation;
use tree::Node;

/// One rustc-style diagnostic: `file:line: [lint] message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line (0 for file-level problems).
    pub line: u32,
    /// Lint name, e.g. `lock-order`.
    pub lint: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// A source file handed to the analyzer (from disk or from a fixture).
#[derive(Clone, Debug)]
pub struct SrcFile {
    /// Package name of the owning crate (`mad-txn`, …).
    pub crate_name: String,
    /// Path shown in diagnostics, relative to the workspace root.
    pub rel_path: String,
    /// Is this a crate root (`lib.rs` / a `[[bin]]` main)?
    pub is_crate_root: bool,
    /// Treat the whole file as test code (`tests/`, `benches/`,
    /// `examples/`)?
    pub assume_test: bool,
    /// The file contents.
    pub text: String,
}

/// A lexed-and-treed source file, ready for the lints.
pub struct ParsedFile {
    /// Owning crate package name.
    pub crate_name: String,
    /// Diagnostic path.
    pub rel_path: String,
    /// Crate root?
    pub is_crate_root: bool,
    /// Whole file is test code?
    pub assume_test: bool,
    /// Token tree.
    pub tree: Vec<Node>,
    /// `check:` annotations found in comments.
    pub annotations: Vec<Annotation>,
}

impl ParsedFile {
    /// Is there an `allow(kind, …)` annotation applying to `line`?
    pub fn allowed(&self, kind: &str, line: u32) -> bool {
        self.annotations
            .iter()
            .any(|a| a.kind == kind && a.applies_to == line)
    }
}

/// The annotation kinds the lints understand.
pub const ALLOW_KINDS: &[&str] = &["panic", "cast", "lock", "reg-block", "shard"];

/// Parse one source file; lexer/tree problems become diagnostics.
pub fn parse_file(src: &SrcFile, diags: &mut Vec<Diagnostic>) -> ParsedFile {
    let lexed = lexer::lex(&src.text);
    let mut errors = lexed.errors;
    let tree = tree::build_tree(&lexed.toks, &mut errors);
    for e in errors {
        diags.push(Diagnostic {
            file: src.rel_path.clone(),
            line: e.line,
            lint: "parse",
            message: e.detail,
        });
    }
    for a in &lexed.annotations {
        if !ALLOW_KINDS.contains(&a.kind.as_str()) {
            diags.push(Diagnostic {
                file: src.rel_path.clone(),
                line: a.at,
                lint: "annotation",
                message: format!(
                    "unknown allow kind `{}` (expected one of {})",
                    a.kind,
                    ALLOW_KINDS.join(", ")
                ),
            });
        }
    }
    ParsedFile {
        crate_name: src.crate_name.clone(),
        rel_path: src.rel_path.clone(),
        is_crate_root: src.is_crate_root,
        assume_test: src.assume_test,
        tree,
        annotations: lexed.annotations,
    }
}

/// Which scope inside a codec file implements one side of a wire codec.
#[derive(Clone, Copy, Debug)]
pub enum ScopeSpec {
    /// A trait impl, e.g. `Impl("BinEncode")` → `impl BinEncode for E`.
    Impl(&'static str),
    /// A free function or inherent method by name.
    Fn(&'static str),
}

/// One wire enum whose codec must stay exhaustive.
#[derive(Clone, Copy, Debug)]
pub struct WireEnum {
    /// Enum type name.
    pub enum_name: &'static str,
    /// Crate the enum is defined in.
    pub def_crate: &'static str,
    /// Crate holding the codec.
    pub codec_crate: &'static str,
    /// The encoding scope.
    pub encode: ScopeSpec,
    /// The decoding scope.
    pub decode: ScopeSpec,
}

/// Static lint configuration: which crates/files each lint applies to.
/// The *policy* (lock ranks, crate layers) lives in ARCHITECTURE.md and
/// is parsed at runtime — this struct only says where to look.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crates whose guard scopes the lock lint walks.
    pub lock_crates: Vec<String>,
    /// Readiness-registration locks: while one of these is held, no
    /// blocking call may run (the event loop would stall every
    /// connection). Checked by name within `lock_crates`.
    pub registration_locks: Vec<String>,
    /// The blessed shard modules: the only files (workspace-relative)
    /// in `lock_crates` allowed to contain indexed shard-lock
    /// acquisitions (`shards[i].lock()`), and in which no blocking call
    /// may appear. Checked by [`shards`].
    pub shard_modules: Vec<String>,
    /// Wire-codec files (workspace-relative) for the cast lint.
    pub codec_files: Vec<String>,
    /// Enums whose wire codecs must stay exhaustive.
    pub wire_enums: Vec<WireEnum>,
}

impl Default for Config {
    fn default() -> Self {
        use ScopeSpec::{Fn, Impl};
        Config {
            lock_crates: ["mad-txn", "mad-wal", "mad-repl", "mad-net"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            registration_locks: vec!["reg".to_string()],
            shard_modules: vec!["crates/txn/src/shard.rs".to_string()],
            codec_files: [
                "crates/net/src/frame.rs",
                "crates/wal/src/record.rs",
                "crates/repl/src/proto.rs",
                "crates/model/src/bin.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            wire_enums: vec![
                WireEnum {
                    enum_name: "MadError",
                    def_crate: "mad-model",
                    codec_crate: "mad-net",
                    encode: Fn("put_error"),
                    decode: Fn("read_error"),
                },
                WireEnum {
                    enum_name: "Value",
                    def_crate: "mad-model",
                    codec_crate: "mad-model",
                    encode: Impl("BinEncode"),
                    decode: Impl("BinDecode"),
                },
                WireEnum {
                    enum_name: "AttrType",
                    def_crate: "mad-model",
                    codec_crate: "mad-model",
                    encode: Impl("BinEncode"),
                    decode: Impl("BinDecode"),
                },
                WireEnum {
                    enum_name: "WalOp",
                    def_crate: "mad-wal",
                    codec_crate: "mad-wal",
                    encode: Impl("BinEncode"),
                    decode: Impl("BinDecode"),
                },
                WireEnum {
                    enum_name: "WalRecord",
                    def_crate: "mad-wal",
                    codec_crate: "mad-wal",
                    encode: Impl("BinEncode"),
                    decode: Impl("BinDecode"),
                },
                WireEnum {
                    enum_name: "Request",
                    def_crate: "mad-net",
                    codec_crate: "mad-net",
                    encode: Fn("encode_request"),
                    decode: Fn("decode_request"),
                },
                WireEnum {
                    enum_name: "Response",
                    def_crate: "mad-net",
                    codec_crate: "mad-net",
                    encode: Fn("encode_response"),
                    decode: Fn("decode_response"),
                },
                WireEnum {
                    enum_name: "ReplMsg",
                    def_crate: "mad-repl",
                    codec_crate: "mad-repl",
                    encode: Fn("encode_msg"),
                    decode: Fn("decode_msg"),
                },
            ],
        }
    }
}

/// The full analysis result.
pub struct Analysis {
    /// All diagnostics except the ratchet comparison, sorted by
    /// file/line.
    pub diagnostics: Vec<Diagnostic>,
    /// Unannotated panic-site counts per crate (input to the ratchet).
    pub panic_counts: BTreeMap<String, usize>,
}

/// How to treat the committed ratchet file.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RatchetMode {
    /// Compare measured counts against the committed budget; any
    /// mismatch (in either direction) is a diagnostic.
    Enforce,
    /// Rewrite the ratchet file from measured counts — but refuse to
    /// raise any budget.
    Update,
}

/// Full filesystem run: load the workspace under `root`, parse the
/// ARCHITECTURE.md spec, run every lint, and enforce (or update) the
/// ratchet. `Err` means the analyzer could not run at all (missing
/// spec, unreadable tree) as opposed to "ran and found problems".
pub fn run_workspace(
    root: &std::path::Path,
    mode: RatchetMode,
) -> Result<Vec<Diagnostic>, String> {
    let arch = std::fs::read_to_string(root.join("ARCHITECTURE.md"))
        .map_err(|e| format!("ARCHITECTURE.md: {e}"))?;
    let spec = spec::parse(&arch)?;
    let cfg = Config::default();
    let (crates, sources) = workspace::load(root)?;
    let mut diags = Vec::new();
    let files: Vec<ParsedFile> =
        sources.iter().map(|s| parse_file(s, &mut diags)).collect();
    let mut analysis = analyze(&files, &crates, &spec, &cfg, diags);
    let ratchet_path = root.join(ratchet::RATCHET_FILE);
    match mode {
        RatchetMode::Enforce => {
            let text = std::fs::read_to_string(&ratchet_path).map_err(|e| {
                format!(
                    "{}: {e} (run `mad-check --ratchet-update` to create it)",
                    ratchet::RATCHET_FILE
                )
            })?;
            let budget = ratchet::parse(&text)?;
            ratchet::compare(&budget, &analysis.panic_counts, &mut analysis.diagnostics);
        }
        RatchetMode::Update => {
            if let Ok(old) = std::fs::read_to_string(&ratchet_path) {
                let budget = ratchet::parse(&old)?;
                for (krate, &n) in &analysis.panic_counts {
                    if let Some(&(b, _)) = budget.get(krate) {
                        if n > b {
                            return Err(format!(
                                "refusing to raise the ratchet: `{krate}` has {n} \
                                 unannotated panic site(s), committed budget is {b}"
                            ));
                        }
                    }
                }
            }
            std::fs::write(&ratchet_path, ratchet::render(&analysis.panic_counts))
                .map_err(|e| format!("{}: {e}", ratchet::RATCHET_FILE))?;
        }
    }
    analysis.diagnostics.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(analysis.diagnostics)
}

/// Run every lint over parsed sources. `crates` drives the layering
/// and forbid checks; pass an empty slice to skip them (fixtures).
pub fn analyze(
    files: &[ParsedFile],
    crates: &[workspace::CrateInfo],
    spec: &spec::Spec,
    cfg: &Config,
    mut diags: Vec<Diagnostic>,
) -> Analysis {
    locks::check(files, spec, cfg, &mut diags);
    shards::check(files, cfg, &mut diags);
    layering::check(files, crates, spec, &mut diags);
    let panic_counts = panics::audit(files, &mut diags);
    casts::check(files, cfg, &mut diags);
    wiretags::check(files, cfg, &mut diags);
    forbid::check(files, crates, &mut diags);
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Analysis { diagnostics: diags, panic_counts }
}
