//! Lock-hierarchy lint: a static deadlock detector for the commit path,
//! plus the registration-lock blocking lint for the event loop.
//!
//! The normative table in ARCHITECTURE.md assigns each governed lock a
//! rank; a thread may only acquire locks in strictly increasing rank.
//! This lint walks every non-test `fn` body in the configured crates
//! (`mad-txn`, `mad-wal`, `mad-repl`, `mad-net`) modelling guard scopes:
//!
//! * a `let`-bound guard lives to the end of its enclosing block;
//! * a temporary guard lives to the end of its statement — except in a
//!   plain `if`/`while` condition, where Rust drops it before the
//!   block, and in `if let`/`match`/`for` scrutinees, where Rust
//!   extends it through the trailing block;
//! * `drop(name)` releases the named guard early;
//! * closure bodies get a fresh held-set (they run on another thread
//!   or at another time).
//!
//! On top of the lexical walk there is one level of interprocedural
//! propagation: every analyzed `fn`'s *directly* acquired ranked locks
//! are unioned by method name, and a call made while holding a ranked
//! guard is checked against the callee's set. The name-keyed union is
//! a deliberate over-approximation; false positives are silenced with
//! `// check: allow(lock, "…")` and a justification.
//!
//! Acquisitions are recognized in both the method form
//! (`m.lock()`/`.read()`/`.write()` with empty parens) and `mad-net`'s
//! poison-ignoring free-function form (`lock(&self.reg)`), whose lock
//! name is the last path segment of the argument.
//!
//! The **registration-lock blocking lint** (`reg-block`) enforces the
//! event loop's liveness contract: while a readiness-registration guard
//! (`Config::registration_locks`, by name) is held, no blocking call may
//! run — a worker parked on a condvar or a socket while holding `reg`
//! would stall connection accept/retire for every client. Flagged calls:
//! `wait`, `wait_timeout`, `recv`, `recv_timeout`, `join`, `sleep`,
//! `connect`, `accept`, `read_frame`, `write_frame`. Exceptions carry
//! `// check: allow(reg-block, "…")`.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::spec::Spec;
use crate::tree::{scan_items, Node};
use crate::{Config, Diagnostic, ParsedFile};

/// A guard currently held on the walker's simulated stack.
struct Held {
    id: u32,
    lock: String,
    rank: Option<u32>,
    binding: Option<String>,
    line: u32,
}

#[derive(Clone, Copy, PartialEq)]
enum StmtKind {
    /// `let` — top-level acquisitions persist to end of block.
    Let,
    /// `if let` / `while let` / `match` / `for` — scrutinee temporaries
    /// extend through the trailing block.
    Extended,
    /// plain `if` / `while` — condition temporaries die at the block.
    Cond,
    /// anything else — temporaries die at end of statement.
    Plain,
    /// a nested item definition — skipped.
    Item,
}

/// Calls that can block the calling thread; never allowed while a
/// readiness-registration guard is held (here) nor anywhere inside a
/// shard module ([`crate::shards`]).
pub(crate) const BLOCKING_CALLS: [&str; 10] = [
    "wait",
    "wait_timeout",
    "recv",
    "recv_timeout",
    "join",
    "sleep",
    "connect",
    "accept",
    "read_frame",
    "write_frame",
];

/// Run the lint.
pub fn check(files: &[ParsedFile], spec: &Spec, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    let relevant: Vec<&ParsedFile> = files
        .iter()
        .filter(|f| cfg.lock_crates.contains(&f.crate_name) && !f.assume_test)
        .collect();
    // pass 1: fn name → union of directly-acquired ranked locks
    let mut call_map: BTreeMap<String, BTreeMap<String, u32>> = BTreeMap::new();
    for f in &relevant {
        let items = scan_items(&f.tree);
        for func in items.fns.iter().filter(|f| !f.is_test) {
            let Some(body) = func.body else { continue };
            let mut direct = BTreeMap::new();
            collect_direct(body, spec, &mut direct);
            if !direct.is_empty() {
                call_map.entry(func.name.clone()).or_default().extend(direct);
            }
        }
    }
    // pass 2: guard-scope walk of every fn body
    for f in &relevant {
        let items = scan_items(&f.tree);
        for func in items.fns.iter().filter(|f| !f.is_test) {
            let Some(body) = func.body else { continue };
            let mut w =
                Walker { file: f, spec, cfg, call_map: &call_map, diags, next_id: 0 };
            let mut held = Vec::new();
            w.block(body, &mut held);
        }
    }
}

/// Collect the ranked locks a body acquires directly (closure bodies
/// excluded — they execute on another thread or at another time).
fn collect_direct(nodes: &[Node], spec: &Spec, out: &mut BTreeMap<String, u32>) {
    let mut i = 0;
    while i < nodes.len() {
        if let Some(skip) = closure_extent(nodes, i) {
            i = skip;
            continue;
        }
        if let Some((name, _, consumed)) = acquisition_at(nodes, i) {
            if let Some(rank) = spec.lock_rank(&name) {
                out.insert(name, rank);
            }
            i += consumed;
            continue;
        }
        if let Node::Group { children, .. } = &nodes[i] {
            collect_direct(children, spec, out);
        }
        i += 1;
    }
}

/// If `nodes[i]` starts an acquisition, return the lock name, line, and
/// the number of nodes the acquisition expression spans. Three forms:
///
/// * `NAME.lock()` / `.read()` / `.write()` with *empty* parens
///   (4 nodes),
/// * the indexed shard form `NAME[expr].lock()` / `.read()` / `.write()`
///   — `mad-txn`'s sharded conflict index and registry — which ranks
///   every element of the shard vector under the one name (5 nodes),
/// * the free function `lock(&path.to.NAME)` — `mad-net`'s
///   poison-ignoring helper — whose lock name is the last path segment
///   of the argument (2 nodes).
fn acquisition_at(nodes: &[Node], i: usize) -> Option<(String, u32, usize)> {
    let head = nodes.get(i)?;
    let name = head.ident()?;
    // free-function form: `lock(&self.reg)`
    if name == "lock" {
        if let Some(Node::Group { delim: '(', children, .. }) = nodes.get(i + 1) {
            if !children.is_empty() {
                let arg = children.iter().rev().find_map(Node::ident)?;
                return Some((arg.to_string(), head.line(), 2));
            }
        }
    }
    // indexed form: `NAME[expr].lock()` — the subscript group sits
    // between the name and the method chain
    let (dot, consumed) = match nodes.get(i + 1) {
        Some(Node::Group { delim: '[', .. }) => (i + 2, 5usize),
        _ => (i + 1, 4usize),
    };
    if !nodes.get(dot)?.is_punct('.') {
        return None;
    }
    let method = nodes.get(dot + 1)?.ident()?;
    if !matches!(method, "lock" | "read" | "write") {
        return None;
    }
    match nodes.get(dot + 2)? {
        Node::Group { delim: '(', children, .. } if children.is_empty() => {
            Some((name.to_string(), head.line(), consumed))
        }
        _ => None,
    }
}

/// If `nodes[i]` opens a closure (`|args| body` or `|| body`), return
/// the index just past the closure body (which extends to the next
/// top-level `,` or the end of the list). A `|`/`||` preceded by an
/// expression is a binary operator or an or-pattern, not a closure.
fn closure_extent(nodes: &[Node], i: usize) -> Option<usize> {
    if !nodes[i].is_punct('|') {
        return None;
    }
    let starts_closure = i == 0
        || matches!(
            &nodes[i - 1],
            Node::Leaf(crate::lexer::Tok { kind: TokKind::Ident(id), .. })
                if matches!(id.as_str(), "move" | "return" | "else")
        )
        || nodes[i - 1].is_punct(',')
        || nodes[i - 1].is_punct('=')
        || nodes[i - 1].is_punct('(')
        || nodes[i - 1].is_joined("=>");
    if !starts_closure {
        return None;
    }
    // find the closing `|` of the argument list
    let args_end = if nodes.get(i + 1).map(|n| n.is_punct('|')) == Some(true) {
        i + 1 // `||`
    } else {
        i + 1 + nodes[i + 1..].iter().position(|n| n.is_punct('|'))?
    };
    let mut k = args_end + 1;
    while k < nodes.len() && !nodes[k].is_punct(',') {
        k += 1;
    }
    Some(k)
}

struct Walker<'a> {
    file: &'a ParsedFile,
    spec: &'a Spec,
    cfg: &'a Config,
    call_map: &'a BTreeMap<String, BTreeMap<String, u32>>,
    diags: &'a mut Vec<Diagnostic>,
    next_id: u32,
}

impl Walker<'_> {
    fn block(&mut self, nodes: &[Node], held: &mut Vec<Held>) {
        let base = held.len();
        let mut start = 0usize;
        let mut i = 0usize;
        while i <= nodes.len() {
            if i == nodes.len() || nodes[i].is_punct(';') || nodes[i].is_punct(',') {
                if start < i {
                    self.stmt(&nodes[start..i], held);
                }
                start = i + 1;
                i += 1;
                continue;
            }
            // a block statement (`if …{}`, `match …{}`, `for`, `while`,
            // `loop`) ends at its closing brace without a semicolon —
            // unless an `else` chains on
            if matches!(&nodes[i], Node::Group { delim: '{', .. }) {
                let head = nodes[start..].iter().find_map(Node::ident);
                let chains = nodes.get(i + 1).and_then(Node::ident) == Some("else");
                if matches!(
                    head,
                    Some(
                        "if" | "match" | "for" | "while" | "loop" | "unsafe" | "fn"
                            | "struct" | "impl" | "trait" | "mod"
                    )
                ) && !chains
                {
                    self.stmt(&nodes[start..=i], held);
                    start = i + 1;
                }
            }
            i += 1;
        }
        held.truncate(base);
    }

    fn stmt(&mut self, stmt: &[Node], held: &mut Vec<Held>) {
        let kind = classify(stmt);
        if kind == StmtKind::Item {
            return;
        }
        let binding = if kind == StmtKind::Let { let_binding(stmt) } else { None };
        let mut temps = Vec::new();
        let mut seen_block = false;
        self.expr(stmt, held, &mut temps, kind, &binding, &mut seen_block, true);
        held.retain(|h| !temps.contains(&h.id));
    }

    #[allow(clippy::too_many_arguments)]
    fn expr(
        &mut self,
        nodes: &[Node],
        held: &mut Vec<Held>,
        temps: &mut Vec<u32>,
        kind: StmtKind,
        binding: &Option<String>,
        seen_block: &mut bool,
        top: bool,
    ) {
        let mut i = 0usize;
        while i < nodes.len() {
            // a closure body runs with a fresh held-set
            if let Some(end) = closure_extent(nodes, i) {
                let args_end = if nodes.get(i + 1).map(|n| n.is_punct('|')) == Some(true) {
                    i + 1
                } else {
                    i + 1 + nodes[i + 1..].iter().position(|n| n.is_punct('|')).unwrap_or(0)
                };
                let mut fresh: Vec<Held> = Vec::new();
                let mut ftemps = Vec::new();
                let mut fseen = false;
                self.expr(
                    &nodes[args_end + 1..end],
                    &mut fresh,
                    &mut ftemps,
                    StmtKind::Plain,
                    &None,
                    &mut fseen,
                    false,
                );
                i = end;
                continue;
            }
            if let Some((name, line, consumed)) = acquisition_at(nodes, i) {
                let rank = self.spec.lock_rank(&name);
                self.check_order(held, &name, rank, line);
                let id = self.next_id;
                self.next_id += 1;
                held.push(Held { id, lock: name, rank, binding: binding.clone(), line });
                // A `let` binds the guard itself only when the rest of
                // the chain is method links ending the statement
                // (`.lock().unwrap();`). A trailing field access or
                // operator (`.lock().unwrap().next_lsn;`) copies a
                // value out and the guard is a dropped temporary.
                let let_bound =
                    top && kind == StmtKind::Let && binds_guard(&nodes[i + consumed..]);
                if !let_bound {
                    temps.push(id);
                }
                i += consumed;
                continue;
            }
            // drop(name) releases the named guard
            if nodes[i].ident() == Some("drop") {
                if let Some(Node::Group { delim: '(', children, .. }) = nodes.get(i + 1) {
                    if children.len() == 1 {
                        if let Some(arg) = children[0].ident() {
                            release(held, temps, arg);
                            i += 2;
                            continue;
                        }
                    }
                }
            }
            // re-arm condition-temporary popping for `else if`
            if top && kind == StmtKind::Cond && nodes[i].ident() == Some("if") {
                *seen_block = false;
            }
            // interprocedural: a call while holding ranked guards; and
            // the registration-lock blocking check
            if let (Some(node), Some(Node::Group { delim: '(', .. })) =
                (nodes.get(i), nodes.get(i + 1))
            {
                if let Some(name) = node.ident() {
                    if !matches!(name, "lock" | "read" | "write" | "drop") {
                        if let Some(callee_locks) = self.call_map.get(name) {
                            self.check_call(held, name, callee_locks, node.line());
                        }
                    }
                    if BLOCKING_CALLS.contains(&name) {
                        self.check_blocking(held, name, node.line());
                    }
                }
            }
            match &nodes[i] {
                Node::Group { delim: '{', children, .. } => {
                    if top && kind == StmtKind::Cond && !*seen_block {
                        // plain if/while: Rust drops condition
                        // temporaries before entering the block
                        held.retain(|h| !temps.contains(&h.id));
                        temps.clear();
                        *seen_block = true;
                    }
                    self.block(children, held);
                }
                Node::Group { children, .. } => {
                    self.expr(children, held, temps, kind, binding, seen_block, false);
                }
                _ => {}
            }
            i += 1;
        }
    }

    fn check_order(&mut self, held: &[Held], name: &str, rank: Option<u32>, line: u32) {
        let Some(new_rank) = rank else { return };
        if self.file.allowed("lock", line) {
            return;
        }
        for h in held {
            let Some(held_rank) = h.rank else { continue };
            if held_rank > new_rank {
                self.diags.push(Diagnostic {
                    file: self.file.rel_path.clone(),
                    line,
                    lint: "lock-order",
                    message: format!(
                        "acquired `{name}` (rank {new_rank}) while holding `{}` (rank \
                         {held_rank}, acquired line {}); the hierarchy requires \
                         `{name}` before `{}`",
                        h.lock, h.line, h.lock
                    ),
                });
            } else if held_rank == new_rank {
                self.diags.push(Diagnostic {
                    file: self.file.rel_path.clone(),
                    line,
                    lint: "lock-order",
                    message: format!(
                        "re-acquired `{name}` (rank {new_rank}) already held since line \
                         {} — self-deadlock on a non-reentrant lock",
                        h.line
                    ),
                });
            }
        }
    }

    /// The registration-lock blocking lint: a blocking call while a
    /// readiness-registration guard is held stalls the event loop for
    /// every connection.
    fn check_blocking(&mut self, held: &[Held], call: &str, line: u32) {
        if self.file.allowed("reg-block", line) {
            return;
        }
        for h in held {
            if self.cfg.registration_locks.contains(&h.lock) {
                self.diags.push(Diagnostic {
                    file: self.file.rel_path.clone(),
                    line,
                    lint: "reg-block",
                    message: format!(
                        "blocking call `{call}` while holding the readiness-registration \
                         lock `{}` (acquired line {}); the event loop stalls every \
                         connection until it returns",
                        h.lock, h.line
                    ),
                });
            }
        }
    }

    fn check_call(
        &mut self,
        held: &[Held],
        callee: &str,
        callee_locks: &BTreeMap<String, u32>,
        line: u32,
    ) {
        if held.iter().all(|h| h.rank.is_none()) || self.file.allowed("lock", line) {
            return;
        }
        for h in held {
            let Some(held_rank) = h.rank else { continue };
            for (lock, &lock_rank) in callee_locks {
                if held_rank >= lock_rank {
                    self.diags.push(Diagnostic {
                        file: self.file.rel_path.clone(),
                        line,
                        lint: "lock-order",
                        message: format!(
                            "call to `{callee}` may acquire `{lock}` (rank {lock_rank}) \
                             while holding `{}` (rank {held_rank}, acquired line {}) — \
                             via one-level call-graph approximation",
                            h.lock, h.line
                        ),
                    });
                }
            }
        }
    }
}

/// Do the tokens following an acquisition keep referring to the guard
/// until the end of the statement? True for chains of method links
/// (`.unwrap()`, `.expect("…")`, `.map_err(…)`) and `?`; false as soon
/// as a field access or any other operator appears, because then the
/// binding captures a projected value, not the guard.
fn binds_guard(rest: &[Node]) -> bool {
    let mut j = 0usize;
    while j < rest.len() {
        if rest[j].is_punct('?') {
            j += 1;
            continue;
        }
        if rest[j].is_punct('.')
            && rest.get(j + 1).and_then(Node::ident).is_some()
            && matches!(rest.get(j + 2), Some(Node::Group { delim: '(', .. }))
        {
            j += 3;
            continue;
        }
        return false;
    }
    true
}

/// Remove the most recent guard matching a `drop(name)` argument, by
/// binding name first, then by lock-field name.
fn release(held: &mut Vec<Held>, temps: &mut Vec<u32>, name: &str) {
    let pos = held
        .iter()
        .rposition(|h| h.binding.as_deref() == Some(name))
        .or_else(|| held.iter().rposition(|h| h.lock == name));
    if let Some(p) = pos {
        let id = held[p].id;
        held.remove(p);
        temps.retain(|&t| t != id);
    }
}

fn classify(stmt: &[Node]) -> StmtKind {
    let Some(first) = stmt.first().and_then(Node::ident) else {
        return StmtKind::Plain;
    };
    match first {
        "let" => StmtKind::Let,
        "match" | "for" => StmtKind::Extended,
        "if" | "while" => {
            if stmt.get(1).and_then(Node::ident) == Some("let") {
                StmtKind::Extended
            } else {
                StmtKind::Cond
            }
        }
        "fn" | "struct" | "enum" | "impl" | "trait" | "mod" | "use" | "type" | "static" => {
            StmtKind::Item
        }
        _ => StmtKind::Plain,
    }
}

/// The binding name of a `let` statement (first plain identifier of the
/// pattern, looking inside a one-level constructor like `Some(g)`).
fn let_binding(stmt: &[Node]) -> Option<String> {
    let mut i = 1; // past `let`
    while stmt.get(i).and_then(Node::ident) == Some("mut") {
        i += 1;
    }
    match stmt.get(i)? {
        n @ Node::Leaf(_) => {
            let id = n.ident()?;
            if let Some(Node::Group { delim: '(', children, .. }) = stmt.get(i + 1) {
                // `Some(g)` — take the inner binding
                let mut j = 0;
                while children.get(j).and_then(Node::ident) == Some("mut") {
                    j += 1;
                }
                return children.get(j).and_then(Node::ident).map(str::to_owned);
            }
            Some(id.to_owned())
        }
        Node::Group { delim: '(', children, .. } => {
            children.first().and_then(Node::ident).map(str::to_owned)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_file, SrcFile};

    fn spec() -> Spec {
        Spec {
            lock_ranks: vec![
                ("state".into(), 1),
                ("published".into(), 2),
                ("repl".into(), 3),
            ],
            layers: vec![],
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SrcFile {
            crate_name: "mad-txn".into(),
            rel_path: "crates/txn/src/x.rs".into(),
            is_crate_root: false,
            assume_test: false,
            text: src.into(),
        };
        let mut diags = Vec::new();
        let parsed = parse_file(&file, &mut diags);
        let cfg = Config::default();
        check(&[parsed], &spec(), &cfg, &mut diags);
        diags
    }

    #[test]
    fn in_order_nesting_is_clean() {
        let d = run(
            "fn ok(&self) {\n\
             let st = self.state.lock().unwrap();\n\
             let pb = self.published.read().unwrap();\n\
             drop(pb); drop(st);\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn out_of_order_nesting_is_flagged() {
        let d = run(
            "fn bad(&self) {\n\
             let pb = self.published.write().unwrap();\n\
             let st = self.state.lock().unwrap();\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert_eq!(d[0].lint, "lock-order");
        assert!(d[0].message.contains("`state` (rank 1) while holding `published` (rank 2"));
    }

    #[test]
    fn indexed_shard_acquisition_participates_in_rank_order() {
        // `NAME[i].lock()` ranks under NAME, so taking a lower-ranked
        // lock while an indexed shard guard is held is flagged
        let d = run(
            "fn bad(&self) {\n\
             let g = self.published[i].lock().unwrap();\n\
             let st = self.state.lock().unwrap();\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, "lock-order");
        assert!(d[0].message.contains("`published`"), "{d:?}");
    }

    #[test]
    fn holding_two_shards_of_one_vector_is_flagged_as_self_deadlock() {
        // equal rank = the ascending-shard-order hazard: two guards of
        // the same shard vector held together can deadlock against a
        // thread locking them in the opposite index order
        let d = run(
            "fn bad(&self) {\n\
             let a = self.repl[i].lock().unwrap();\n\
             let b = self.repl[j].lock().unwrap();\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("re-acquired"), "{d:?}");
    }

    #[test]
    fn one_shard_at_a_time_is_clean() {
        let d = run(
            "fn ok(&self) {\n\
             for i in order {\n\
             let g = self.repl[i].lock().unwrap();\n\
             probe(&g);\n\
             }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let d = run(
            "fn ok(&self) {\n\
             let pb = self.published.write().unwrap();\n\
             drop(pb);\n\
             let st = self.state.lock().unwrap();\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn reacquisition_is_a_self_deadlock() {
        let d = run(
            "fn bad(&self) {\n\
             let a = self.state.lock().unwrap();\n\
             let b = self.state.lock().unwrap();\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("re-acquired"));
    }

    #[test]
    fn plain_if_condition_temporaries_die_at_the_block() {
        let d = run(
            "fn ok(&self) {\n\
             if self.published.read().unwrap().dirty {\n\
                 let st = self.state.lock().unwrap();\n\
             }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn match_scrutinee_guard_extends_through_the_body() {
        let d = run(
            "fn bad(&self) {\n\
             match self.published.read().unwrap().kind {\n\
                 0 => { let st = self.state.lock().unwrap(); }\n\
                 _ => {}\n\
             }\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn projected_field_lets_drop_the_guard() {
        // `let high = …lock().unwrap().next_lsn;` copies a field out;
        // the guard is a temporary dying at the semicolon
        let d = run(
            "fn ok(&self) {\n\
             let seq = self.published.read().unwrap().seq;\n\
             let st = self.state.lock().unwrap();\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn closures_get_a_fresh_stack() {
        let d = run(
            "fn ok(&self) {\n\
             let pb = self.published.write().unwrap();\n\
             spawn(move || { let st = self.state.lock().unwrap(); });\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn interprocedural_one_level() {
        let d = run(
            "fn helper(&self) { let st = self.state.lock().unwrap(); }\n\
             fn bad(&self) {\n\
                 let pb = self.published.write().unwrap();\n\
                 self.helper();\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("call to `helper` may acquire `state`"));
    }

    #[test]
    fn allow_lock_silences_with_reason() {
        let d = run(
            "fn bad(&self) {\n\
             let pb = self.published.write().unwrap();\n\
             // check: allow(lock, \"test hook, never nested in production\")\n\
             let st = self.state.lock().unwrap();\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let d = run(
            "#[cfg(test)] mod t { fn bad(&self) {\n\
             let pb = self.published.write().unwrap();\n\
             let st = self.state.lock().unwrap();\n} }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    /// Fixture runner for the `mad-net` shapes: the free-function
    /// `lock(&…)` acquisition form and the registration-lock rank 8.
    fn run_net(src: &str) -> Vec<Diagnostic> {
        let file = SrcFile {
            crate_name: "mad-net".into(),
            rel_path: "crates/net/src/x.rs".into(),
            is_crate_root: false,
            assume_test: false,
            text: src.into(),
        };
        let mut diags = Vec::new();
        let parsed = parse_file(&file, &mut diags);
        let mut spec = spec();
        spec.lock_ranks.push(("reg".into(), 8));
        let cfg = Config::default();
        check(&[parsed], &spec, &cfg, &mut diags);
        diags
    }

    #[test]
    fn free_fn_lock_is_an_acquisition() {
        // rank 8 held, then rank 1 — out of order through the free form
        let d = run_net(
            "fn bad(&self) {\n\
             let g = lock(&self.reg);\n\
             let st = self.state.lock().unwrap();\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, "lock-order");
        assert!(d[0].message.contains("while holding `reg` (rank 8"));
    }

    #[test]
    fn blocking_call_while_holding_reg_is_flagged() {
        let d = run_net(
            "fn bad(&self) {\n\
             let g = lock(&shared.reg);\n\
             thread::sleep(step);\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert_eq!(d[0].lint, "reg-block");
        assert!(d[0].message.contains("blocking call `sleep`"));
    }

    #[test]
    fn reg_temporary_dies_at_the_semicolon() {
        // `lock(&…).insert(…);` is a statement temporary — the guard is
        // gone before the blocking call on the next line
        let d = run_net(
            "fn ok(&self) {\n\
             lock(&shared.reg).insert(id, stream);\n\
             thread::sleep(step);\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn blocking_on_an_unranked_connection_lock_is_fine() {
        // only registration locks stall the event loop for everyone;
        // per-connection mutexes may block their own connection
        let d = run_net(
            "fn ok(&self) {\n\
             let work = lock(&conn.work);\n\
             let item = rx.recv();\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_reg_block_silences_with_reason() {
        let d = run_net(
            "fn ok(&self) {\n\
             let g = lock(&shared.reg);\n\
             // check: allow(reg-block, \"bounded: startup only, no peers yet\")\n\
             thread::sleep(step);\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
