//! Wire-tag exhaustiveness: every wire enum's codec covers every
//! variant, and the number of distinct tag values matches the number of
//! variants on both the encode and the decode side.
//!
//! This is the cross-file check that catches the classic protocol bug:
//! a new `MadError` variant (or `WalOp`, `ReplMsg`, …) is added, the
//! encoder's `match` gets a compile error and is fixed, but the
//! decoder's integer `match` silently falls through to its wildcard arm
//! and the peer sees `Protocol("unknown tag")` instead of the real
//! value.
//!
//! Heuristics (validated against every codec in the tree):
//! * decode tags = distinct integer literals immediately before `=>`;
//! * encode tags = distinct integer literals that are the sole argument
//!   of `.push(…)`, unioned with integers immediately after `=>`;
//! * variant coverage = the variant identifier appears somewhere in the
//!   scope body (arm patterns name variants on encode; decoders name
//!   the constructor they build).

use std::collections::BTreeSet;

use crate::tree::{scan_items, FnItem, Node};
use crate::{Config, Diagnostic, ParsedFile, ScopeSpec, WireEnum};

/// Run the lint.
pub fn check(files: &[ParsedFile], cfg: &Config, diags: &mut Vec<Diagnostic>) {
    for we in &cfg.wire_enums {
        check_enum(files, we, diags);
    }
}

fn check_enum(files: &[ParsedFile], we: &WireEnum, diags: &mut Vec<Diagnostic>) {
    // find the enum definition
    let mut variants: Option<(Vec<String>, String, u32)> = None;
    for f in files.iter().filter(|f| f.crate_name == we.def_crate && !f.assume_test) {
        let items = scan_items(&f.tree);
        if let Some(e) = items.enums.iter().find(|e| e.name == we.enum_name && !e.is_test) {
            variants = Some((e.variants.clone(), f.rel_path.clone(), e.line));
            break;
        }
    }
    let Some((variants, def_file, def_line)) = variants else {
        // fixture sets legitimately omit enums for other wire checks;
        // only complain when the defining crate is present at all
        if files.iter().any(|f| f.crate_name == we.def_crate) {
            diags.push(Diagnostic {
                file: we.def_crate.to_string(),
                line: 0,
                lint: "wire-tag",
                message: format!(
                    "wire enum `{}` not found in crate `{}` (is the Config stale?)",
                    we.enum_name, we.def_crate
                ),
            });
        }
        return;
    };
    for (spec, is_encode) in [(&we.encode, true), (&we.decode, false)] {
        check_scope(files, we, spec, is_encode, &variants, &def_file, def_line, diags);
    }
}

#[allow(clippy::too_many_arguments)]
fn check_scope(
    files: &[ParsedFile],
    we: &WireEnum,
    spec: &ScopeSpec,
    is_encode: bool,
    variants: &[String],
    def_file: &str,
    def_line: u32,
    diags: &mut Vec<Diagnostic>,
) {
    // collect the scope's fn bodies across the codec crate
    let mut bodies: Vec<(&ParsedFile, u32, &[Node])> = Vec::new();
    let mut scope_name = String::new();
    for f in files.iter().filter(|f| f.crate_name == we.codec_crate && !f.assume_test) {
        let items = scan_items(&f.tree);
        for func in items.fns.iter().filter(|x| !x.is_test) {
            if matches_scope(func, spec, we.enum_name) {
                if let Some(body) = func.body {
                    bodies.push((f, func.line, body));
                    scope_name = describe(spec, we.enum_name);
                }
            }
        }
    }
    if bodies.is_empty() {
        diags.push(Diagnostic {
            file: def_file.to_string(),
            line: def_line,
            lint: "wire-tag",
            message: format!(
                "no {} scope `{}` found for wire enum `{}` in crate `{}`",
                if is_encode { "encode" } else { "decode" },
                describe(spec, we.enum_name),
                we.enum_name,
                we.codec_crate
            ),
        });
        return;
    }
    // variant coverage
    let mut idents = BTreeSet::new();
    for (_, _, body) in &bodies {
        collect_idents(body, &mut idents);
    }
    let (scope_file, scope_line, _) = bodies[0];
    for v in variants {
        if !idents.contains(v.as_str()) {
            diags.push(Diagnostic {
                file: scope_file.rel_path.clone(),
                line: scope_line,
                lint: "wire-tag",
                message: format!(
                    "variant `{}::{v}` has no arm in `{scope_name}` — the wire codec \
                     is not exhaustive",
                    we.enum_name
                ),
            });
        }
    }
    // tag-count discipline
    let mut tags = BTreeSet::new();
    for (_, _, body) in &bodies {
        if is_encode {
            collect_encode_tags(body, &mut tags);
        } else {
            collect_decode_tags(body, &mut tags);
        }
    }
    if tags.len() != variants.len() {
        diags.push(Diagnostic {
            file: scope_file.rel_path.clone(),
            line: scope_line,
            lint: "wire-tag",
            message: format!(
                "`{scope_name}` uses {} distinct tag value(s) but `{}` has {} variant(s)",
                tags.len(),
                we.enum_name,
                variants.len()
            ),
        });
    }
}

fn matches_scope(func: &FnItem<'_>, spec: &ScopeSpec, enum_name: &str) -> bool {
    match spec {
        ScopeSpec::Fn(name) => func.name == *name,
        ScopeSpec::Impl(trait_name) => func.impl_header.as_deref().is_some_and(|h| {
            h.contains(trait_name) && h.contains(&format!("for {enum_name}"))
        }),
    }
}

fn describe(spec: &ScopeSpec, enum_name: &str) -> String {
    match spec {
        ScopeSpec::Fn(name) => name.to_string(),
        ScopeSpec::Impl(trait_name) => format!("impl {trait_name} for {enum_name}"),
    }
}

fn collect_idents(nodes: &[Node], out: &mut BTreeSet<String>) {
    for n in nodes {
        match n {
            Node::Group { children, .. } => collect_idents(children, out),
            _ => {
                if let Some(id) = n.ident() {
                    out.insert(id.to_string());
                }
            }
        }
    }
}

/// Distinct integer literals immediately before `=>` (match-arm tags).
fn collect_decode_tags(nodes: &[Node], out: &mut BTreeSet<u64>) {
    for (i, n) in nodes.iter().enumerate() {
        match n {
            Node::Group { children, .. } => collect_decode_tags(children, out),
            Node::Leaf(t) => {
                if let crate::lexer::TokKind::Int(Some(v)) = t.kind {
                    if nodes.get(i + 1).map(|x| x.is_joined("=>")) == Some(true) {
                        out.insert(v);
                    }
                }
            }
        }
    }
}

/// Distinct integers pushed as a sole `.push(N)` argument or appearing
/// immediately after `=>`.
fn collect_encode_tags(nodes: &[Node], out: &mut BTreeSet<u64>) {
    for (i, n) in nodes.iter().enumerate() {
        match n {
            Node::Group { children, .. } => {
                if nodes.get(i.wrapping_sub(1)).and_then(Node::ident) == Some("push")
                    && children.len() == 1
                {
                    if let Node::Leaf(t) = &children[0] {
                        if let crate::lexer::TokKind::Int(Some(v)) = t.kind {
                            out.insert(v);
                        }
                    }
                }
                collect_encode_tags(children, out);
            }
            Node::Leaf(t) => {
                if let crate::lexer::TokKind::Int(Some(v)) = t.kind {
                    if i > 0 && nodes[i - 1].is_joined("=>") {
                        out.insert(v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_file, SrcFile, WireEnum};

    fn cfg_one() -> Config {
        Config {
            lock_crates: vec![],
            registration_locks: vec![],
            shard_modules: vec![],
            codec_files: vec![],
            wire_enums: vec![WireEnum {
                enum_name: "Msg",
                def_crate: "mad-model",
                codec_crate: "mad-net",
                encode: ScopeSpec::Fn("put_msg"),
                decode: ScopeSpec::Fn("read_msg"),
            }],
        }
    }

    fn files(def: &str, codec: &str) -> Vec<ParsedFile> {
        let mut sink = Vec::new();
        vec![
            parse_file(
                &SrcFile {
                    crate_name: "mad-model".into(),
                    rel_path: "crates/model/src/error.rs".into(),
                    is_crate_root: false,
                    assume_test: false,
                    text: def.into(),
                },
                &mut sink,
            ),
            parse_file(
                &SrcFile {
                    crate_name: "mad-net".into(),
                    rel_path: "crates/net/src/frame.rs".into(),
                    is_crate_root: false,
                    assume_test: false,
                    text: codec.into(),
                },
                &mut sink,
            ),
        ]
    }

    const DEF: &str = "pub enum Msg { Ping, Pong, Data(u32) }";

    #[test]
    fn exhaustive_codec_is_clean() {
        let codec = "\
fn put_msg(m: &Msg, out: &mut Vec<u8>) {
    match m {
        Msg::Ping => out.push(0),
        Msg::Pong => out.push(1),
        Msg::Data(x) => { out.push(2); put_u32(out, *x); }
    }
}
fn read_msg(r: &mut Reader) -> Result<Msg> {
    match r.u8()? {
        0 => Ok(Msg::Ping),
        1 => Ok(Msg::Pong),
        2 => Ok(Msg::Data(r.u32()?)),
        t => Err(unknown(t)),
    }
}";
        let mut d = Vec::new();
        check(&files(DEF, codec), &cfg_one(), &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_decode_arm_is_flagged() {
        let codec = "\
fn put_msg(m: &Msg, out: &mut Vec<u8>) {
    match m {
        Msg::Ping => out.push(0),
        Msg::Pong => out.push(1),
        Msg::Data(x) => { out.push(2); }
    }
}
fn read_msg(r: &mut Reader) -> Result<Msg> {
    match r.u8()? {
        0 => Ok(Msg::Ping),
        1 => Ok(Msg::Pong),
        t => Err(unknown(t)),
    }
}";
        let mut d = Vec::new();
        check(&files(DEF, codec), &cfg_one(), &mut d);
        // Data never mentioned in read_msg + only 2 decode tags for 3 variants
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("`Msg::Data` has no arm in `read_msg`"), "{d:?}");
        assert!(d[1].message.contains("2 distinct tag value(s) but `Msg` has 3"), "{d:?}");
        assert_eq!(d[0].file, "crates/net/src/frame.rs");
        assert_eq!(d[0].line, 8);
    }

    #[test]
    fn missing_scope_is_flagged() {
        let mut d = Vec::new();
        check(&files(DEF, "fn put_msg(m: &Msg) { Msg::Ping; Msg::Pong; Msg::Data; }"), &cfg_one(), &mut d);
        // put_msg exists (with bogus tags) but read_msg is absent
        assert!(
            d.iter().any(|x| x.message.contains("no decode scope `read_msg`")),
            "{d:?}"
        );
    }

    #[test]
    fn impl_scopes_match_trait_impls() {
        let cfg = Config {
            lock_crates: vec![],
            registration_locks: vec![],
            shard_modules: vec![],
            codec_files: vec![],
            wire_enums: vec![WireEnum {
                enum_name: "Msg",
                def_crate: "mad-model",
                codec_crate: "mad-net",
                encode: ScopeSpec::Impl("BinEncode"),
                decode: ScopeSpec::Impl("BinDecode"),
            }],
        };
        let codec = "\
impl BinEncode for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self { Msg::Ping => 0, Msg::Pong => 1, Msg::Data(_) => 2 });
    }
}
impl BinDecode for Msg {
    fn decode(r: &mut Reader) -> Result<Msg> {
        match r.u8()? { 0 => Ok(Msg::Ping), 1 => Ok(Msg::Pong), 2 => Ok(Msg::Data(0)), t => Err(u(t)) }
    }
}";
        let mut d = Vec::new();
        check(&files(DEF, codec), &cfg, &mut d);
        assert!(d.is_empty(), "{d:?}");
    }
}
