#![forbid(unsafe_code)]
//! `mad-check` — the MAD workspace static analyzer.
//!
//! Exit codes: 0 clean, 1 diagnostics reported, 2 the analyzer could
//! not run (missing spec table, unreadable workspace, bad usage).

use std::path::PathBuf;
use std::process::ExitCode;

use mad_check::{run_workspace, RatchetMode};

const USAGE: &str = "\
usage: mad-check [--root DIR] [--ratchet-update]

Runs the MAD project lints over the workspace:
  lock-order     lock-hierarchy (deadlock) lint per ARCHITECTURE.md
  layering       crate DAG edges must point downward
  panic-ratchet  unannotated panic sites vs check_ratchet.toml budget
  cast           narrowing casts in wire-codec files
  wire-tag       codec arm counts vs wire enum variants
  forbid-unsafe  #![forbid(unsafe_code)] on every crate root

options:
  --root DIR         workspace root (default: walk up to the Cargo.toml
                     containing [workspace])
  --ratchet-update   rewrite check_ratchet.toml from measured counts
                     (refuses to raise any budget)
  -h, --help         this text
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut mode = RatchetMode::Enforce;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("mad-check: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--ratchet-update" => mode = RatchetMode::Update,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mad-check: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.map(Ok).unwrap_or_else(find_workspace_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mad-check: {e}");
            return ExitCode::from(2);
        }
    };
    match run_workspace(&root, mode) {
        Err(e) => {
            eprintln!("mad-check: {e}");
            ExitCode::from(2)
        }
        Ok(diags) if diags.is_empty() => {
            if mode == RatchetMode::Update {
                println!("mad-check: ratchet updated, workspace clean");
            } else {
                println!("mad-check: workspace clean");
            }
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("mad-check: {} problem(s)", diags.len());
            ExitCode::FAILURE
        }
    }
}

/// Walk up from the current directory to the manifest that declares
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory; \
                        pass --root"
                .into());
        }
    }
}
