//! Crate-layering lint: the dependency DAG may only point downward.
//!
//! Two sources of edges are checked against the normative layering
//! table in ARCHITECTURE.md:
//!
//! * `[dependencies]` entries in each member's `Cargo.toml`
//!   (dev-dependencies are test-only and exempt), and
//! * `mad_*` crate references in non-test source code — so a
//!   `use mad_repl::…` smuggled into `mad_txn` is flagged even before
//!   the manifest edge that would make it compile.
//!
//! Every `mad*` crate must appear in the table; an unknown crate is
//! itself a violation, which forces the table to stay current.

use crate::spec::Spec;
use crate::tree::Node;
use crate::workspace::CrateInfo;
use crate::{Diagnostic, ParsedFile};

/// Run the lint.
pub fn check(
    files: &[ParsedFile],
    crates: &[CrateInfo],
    spec: &Spec,
    diags: &mut Vec<Diagnostic>,
) {
    // manifest edges
    for info in crates.iter().filter(|c| !c.is_vendor) {
        let Some(own) = spec.layer(&info.name) else {
            diags.push(Diagnostic {
                file: info.manifest.clone(),
                line: 1,
                lint: "layering",
                message: format!(
                    "crate `{}` is not in the ARCHITECTURE.md layering table",
                    info.name
                ),
            });
            continue;
        };
        for (dep, line) in &info.deps {
            if !dep.starts_with("mad") {
                continue;
            }
            match spec.layer(dep) {
                None => diags.push(Diagnostic {
                    file: info.manifest.clone(),
                    line: *line,
                    lint: "layering",
                    message: format!(
                        "dependency `{dep}` is not in the ARCHITECTURE.md layering table"
                    ),
                }),
                Some(dl) if dl >= own => diags.push(Diagnostic {
                    file: info.manifest.clone(),
                    line: *line,
                    lint: "layering",
                    message: format!(
                        "upward dependency edge: `{}` (layer {own}) depends on `{dep}` \
                         (layer {dl}); edges must point strictly downward",
                        info.name
                    ),
                }),
                Some(_) => {}
            }
        }
    }
    // source-level `mad_*` references
    for f in files.iter().filter(|f| !f.assume_test) {
        let Some(own) = spec.layer(&f.crate_name) else { continue };
        scan_refs(&f.tree, f, own, spec, diags, &mut false);
    }
}

/// Recursively scan for `mad_*` idents, skipping test-attributed
/// subtrees (`pending_test` carries a seen `#[cfg(test)]`/`#[test]`
/// forward to the brace group it governs).
fn scan_refs(
    nodes: &[Node],
    f: &ParsedFile,
    own: u32,
    spec: &Spec,
    diags: &mut Vec<Diagnostic>,
    pending_test: &mut bool,
) {
    let mut i = 0usize;
    while i < nodes.len() {
        // `#[cfg(test)]` / `#[test]` marks the next brace group as test
        if nodes[i].is_punct('#') {
            let mut j = i + 1;
            if nodes.get(j).map(|n| n.is_punct('!')) == Some(true) {
                j += 1;
            }
            if let Some(Node::Group { delim: '[', children, .. }) = nodes.get(j) {
                let text = crate::tree::flatten(children);
                if text == "test" || (text.starts_with("cfg") && text.contains("test")) {
                    *pending_test = true;
                }
                i = j + 1;
                continue;
            }
        }
        match &nodes[i] {
            Node::Group { delim: '{', children, .. } => {
                if *pending_test {
                    *pending_test = false; // skip the test subtree
                } else {
                    scan_refs(children, f, own, spec, diags, pending_test);
                }
            }
            Node::Group { children, .. } => {
                scan_refs(children, f, own, spec, diags, pending_test)
            }
            n => {
                if let Some(id) = n.ident() {
                    if let Some(rest) = id.strip_prefix("mad_") {
                        let dep = format!("mad-{}", rest.replace('_', "-"));
                        if dep != f.crate_name {
                            match spec.layer(&dep) {
                                None => diags.push(Diagnostic {
                                    file: f.rel_path.clone(),
                                    line: n.line(),
                                    lint: "layering",
                                    message: format!(
                                        "reference to `{id}` — crate `{dep}` is not in \
                                         the ARCHITECTURE.md layering table"
                                    ),
                                }),
                                Some(dl) if dl >= own => diags.push(Diagnostic {
                                    file: f.rel_path.clone(),
                                    line: n.line(),
                                    lint: "layering",
                                    message: format!(
                                        "upward reference: `{}` (layer {own}) uses `{id}` \
                                         (layer {dl}); edges must point strictly downward",
                                        f.crate_name
                                    ),
                                }),
                                Some(_) => {}
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_file, SrcFile};

    fn spec() -> Spec {
        Spec {
            lock_ranks: vec![],
            layers: vec![
                ("mad-model".into(), 0),
                ("mad-txn".into(), 3),
                ("mad-repl".into(), 6),
            ],
        }
    }

    fn file(krate: &str, src: &str) -> ParsedFile {
        let mut sink = Vec::new();
        parse_file(
            &SrcFile {
                crate_name: krate.into(),
                rel_path: "crates/x/src/lib.rs".to_string(),
                is_crate_root: true,
                assume_test: false,
                text: src.into(),
            },
            &mut sink,
        )
    }

    #[test]
    fn downward_use_is_clean() {
        let mut d = Vec::new();
        check(&[file("mad-txn", "use mad_model::MadError;\n")], &[], &spec(), &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn upward_use_is_flagged() {
        let mut d = Vec::new();
        check(&[file("mad-txn", "fn f() { mad_repl::promote(); }\n")], &[], &spec(), &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("upward reference"));
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn test_modules_may_use_anything() {
        let mut d = Vec::new();
        let src = "#[cfg(test)]\nmod tests { use mad_repl::ReplPrimary; }\n";
        check(&[file("mad-txn", src)], &[], &spec(), &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn manifest_upward_edge_is_flagged() {
        let info = CrateInfo {
            name: "mad-txn".into(),
            dir: "crates/txn".into(),
            manifest: "crates/txn/Cargo.toml".into(),
            deps: vec![("mad-model".into(), 8), ("mad-repl".into(), 9)],
            roots: vec![],
            is_vendor: false,
        };
        let mut d = Vec::new();
        check(&[], &[info], &spec(), &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "crates/txn/Cargo.toml");
        assert_eq!(d[0].line, 9);
        assert!(d[0].message.contains("upward dependency edge"));
    }

    #[test]
    fn unknown_crate_is_flagged() {
        let info = CrateInfo {
            name: "mad-gridfile".into(),
            dir: "crates/gridfile".into(),
            manifest: "crates/gridfile/Cargo.toml".into(),
            deps: vec![],
            roots: vec![],
            is_vendor: false,
        };
        let mut d = Vec::new();
        check(&[], &[info], &spec(), &mut d);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("not in the ARCHITECTURE.md layering table"));
    }
}
