//! Workspace discovery: members from the root `Cargo.toml`, per-crate
//! manifests (name, dependency edges with line numbers, crate roots),
//! and the `.rs` source walk. All hand-rolled — `mad-check` has zero
//! dependencies, so the TOML reader is a line-oriented subset parser
//! covering exactly the manifest shapes this workspace uses.

use std::fs;
use std::path::{Path, PathBuf};

use crate::SrcFile;

/// One workspace member (or the root facade package).
#[derive(Clone, Debug)]
pub struct CrateInfo {
    /// Package name (`mad-txn`).
    pub name: String,
    /// Directory relative to the workspace root (`crates/txn`; empty
    /// for the root package).
    pub dir: String,
    /// Manifest path relative to the workspace root.
    pub manifest: String,
    /// `[dependencies]` entries with their manifest line numbers
    /// (dev-dependencies excluded — test-only edges are not layering).
    pub deps: Vec<(String, u32)>,
    /// Crate roots (lib root and bin roots) relative to the workspace
    /// root — the files that must carry `#![forbid(unsafe_code)]`.
    pub roots: Vec<String>,
    /// Lives under `vendor/` (offline shim, exempt from most lints)?
    pub is_vendor: bool,
}

/// Load the workspace: every member's manifest plus all `.rs` sources.
/// Files under `tests/`, `benches/` and `examples/` are loaded with
/// `assume_test` set so the test-aware lints skip them wholesale.
pub fn load(root: &Path) -> Result<(Vec<CrateInfo>, Vec<SrcFile>), String> {
    let root_manifest = read(root, "Cargo.toml")?;
    let mut dirs = members(&root_manifest);
    dirs.insert(0, String::new()); // the root facade package
    let mut crates = Vec::new();
    let mut files = Vec::new();
    for dir in dirs {
        let manifest_rel = join_rel(&dir, "Cargo.toml");
        let manifest = read(root, &manifest_rel)?;
        let mut info = parse_manifest(&dir, &manifest_rel, &manifest)?;
        conventional_roots(root, &mut info);
        collect_sources(root, &info, &mut files)?;
        crates.push(info);
    }
    Ok((crates, files))
}

/// Extract the `members = [...]` array from the root manifest.
fn members(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let t = line.trim();
        if !in_members {
            if t.starts_with("members") && t.contains('[') {
                in_members = true;
            }
            if !in_members {
                continue;
            }
        }
        for piece in t.split(',') {
            if let Some(q) = quoted(piece) {
                out.push(q);
            }
        }
        if t.contains(']') {
            break;
        }
    }
    out
}

/// Parse one member manifest for name, deps and crate roots.
fn parse_manifest(dir: &str, manifest_rel: &str, text: &str) -> Result<CrateInfo, String> {
    let mut name = None;
    let mut deps = Vec::new();
    let mut roots = Vec::new();
    let mut section = String::new();
    let mut lib_path: Option<String> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let t = line.trim();
        if t.starts_with('[') {
            section = t.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let key = t.split(['=', ' ']).next().unwrap_or("");
        match section.as_str() {
            "package" if key == "name" && name.is_none() => name = quoted(t),
            "dependencies" if !key.is_empty() => {
                deps.push((key.trim_matches('"').to_string(), lineno));
            }
            "lib" if key == "path" => lib_path = quoted(t),
            "bin" if key == "path" => {
                if let Some(p) = quoted(t) {
                    roots.push(join_rel(dir, &p));
                }
            }
            _ => {}
        }
    }
    let name = name.ok_or_else(|| format!("{manifest_rel}: missing [package] name"))?;
    roots.insert(0, join_rel(dir, lib_path.as_deref().unwrap_or("src/lib.rs")));
    Ok(CrateInfo {
        name,
        dir: dir.to_string(),
        manifest: manifest_rel.to_string(),
        deps,
        roots,
        is_vendor: dir.starts_with("vendor/"),
    })
}

/// Add the bin roots Cargo discovers by convention (`src/main.rs`,
/// `src/bin/*.rs`) — benches/examples/tests are separate compilation
/// units but not crate roots for the forbid check.
fn conventional_roots(root: &Path, info: &mut CrateInfo) {
    let main = join_rel(&info.dir, "src/main.rs");
    if root.join(&main).is_file() && !info.roots.contains(&main) {
        info.roots.push(main);
    }
    let bin_dir = root.join(join_rel(&info.dir, "src/bin"));
    let mut bins = Vec::new();
    if bin_dir.is_dir() {
        let _ = walk_rs(&bin_dir, &mut bins);
    }
    bins.sort();
    for b in bins {
        let rel = rel_of(root, &b);
        if !info.roots.contains(&rel) {
            info.roots.push(rel);
        }
    }
}

/// Load the crate's sources: `src/**` as production code, `tests/`,
/// `benches/` and `examples/` as test code.
fn collect_sources(root: &Path, info: &CrateInfo, out: &mut Vec<SrcFile>) -> Result<(), String> {
    for (sub, assume_test) in [("src", false), ("tests", true), ("benches", true), ("examples", true)]
    {
        let rel = join_rel(&info.dir, sub);
        let abs = root.join(&rel);
        if !abs.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        walk_rs(&abs, &mut paths)?;
        paths.sort();
        for p in paths {
            let rel_path = rel_of(root, &p);
            let text = fs::read_to_string(&p)
                .map_err(|e| format!("{}: {e}", p.display()))?;
            out.push(SrcFile {
                crate_name: info.name.clone(),
                rel_path: rel_path.clone(),
                is_crate_root: info.roots.contains(&rel_path),
                assume_test,
                text,
            });
        }
    }
    Ok(())
}

/// Recursively collect `.rs` files.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn read(root: &Path, rel: &str) -> Result<String, String> {
    let p = root.join(rel);
    fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))
}

/// First double-quoted string in a line, if any.
fn quoted(line: &str) -> Option<String> {
    let rest = line.split_once('"')?.1;
    Some(rest.split_once('"')?.0.to_string())
}

fn join_rel(dir: &str, rest: &str) -> String {
    if dir.is_empty() {
        rest.to_string()
    } else {
        format!("{dir}/{rest}")
    }
}

/// Path relative to the workspace root, with `/` separators.
fn rel_of(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_array_parses() {
        let m = members("x = 1\nmembers = [\n  \"crates/model\",\n  \"vendor/proptest\",\n]\n");
        assert_eq!(m, vec!["crates/model", "vendor/proptest"]);
    }

    #[test]
    fn manifest_parses_deps_and_roots() {
        let text = "\
[package]
name = \"mad-net\"

[lib]
name = \"mad_net\"
path = \"src/lib.rs\"

[dependencies]
mad-model = { path = \"../model\" }
mad-txn = { path = \"../txn\" }

[dev-dependencies]
proptest = { path = \"../../vendor/proptest\" }

[[bin]]
name = \"madc\"
path = \"src/bin/madc.rs\"
";
        let info = parse_manifest("crates/net", "crates/net/Cargo.toml", text).unwrap();
        assert_eq!(info.name, "mad-net");
        let dep_names: Vec<&str> = info.deps.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(dep_names, vec!["mad-model", "mad-txn"]);
        assert_eq!(info.roots, vec!["crates/net/src/lib.rs", "crates/net/src/bin/madc.rs"]);
        assert!(!info.is_vendor);
    }

    #[test]
    fn root_package_uses_bare_paths() {
        let info = parse_manifest("", "Cargo.toml", "[package]\nname = \"mad\"\n").unwrap();
        assert_eq!(info.roots, vec!["src/lib.rs"]);
    }
}
