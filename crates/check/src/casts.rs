//! Narrowing-cast lint for the wire-codec files.
//!
//! A bare `as u32` / `as u64` / `as usize` on a length or offset is how
//! a 32-bit peer, a corrupt frame, or a hostile length prefix turns
//! into silent truncation. In the codec files every such cast must be a
//! checked conversion (`try_into`/`try_from` surfacing
//! `MadError::Protocol`/`Codec`) or carry a
//! `// check: allow(cast, "…")` annotation proving the value is
//! bounded. Other files are out of scope — arithmetic casts far from
//! the wire are clippy's business, not ours.

use crate::tree::{scan_items, Node};
use crate::{Config, Diagnostic, ParsedFile};

const NARROW_TARGETS: &[&str] = &["u32", "u64", "usize"];

/// Run the lint.
pub fn check(files: &[ParsedFile], cfg: &Config, diags: &mut Vec<Diagnostic>) {
    for f in files {
        if f.assume_test || !cfg.codec_files.contains(&f.rel_path) {
            continue;
        }
        let items = scan_items(&f.tree);
        for func in items.fns.iter().filter(|x| !x.is_test) {
            let Some(body) = func.body else { continue };
            scan(body, f, diags);
        }
    }
}

fn scan(nodes: &[Node], f: &ParsedFile, diags: &mut Vec<Diagnostic>) {
    let mut i = 0usize;
    while i < nodes.len() {
        match &nodes[i] {
            Node::Group { children, .. } => scan(children, f, diags),
            n => {
                if n.ident() == Some("as") {
                    if let Some(target) = nodes.get(i + 1).and_then(Node::ident) {
                        if NARROW_TARGETS.contains(&target) && !f.allowed("cast", n.line()) {
                            diags.push(Diagnostic {
                                file: f.rel_path.clone(),
                                line: n.line(),
                                lint: "cast",
                                message: format!(
                                    "unchecked narrowing cast `as {target}` in a wire-codec \
                                     file — use a checked conversion surfacing \
                                     MadError::Protocol/Codec, or annotate with \
                                     `check: allow(cast, \"…\")`"
                                ),
                            });
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_file, SrcFile};

    fn run(src: &str) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let f = parse_file(
            &SrcFile {
                crate_name: "mad-net".into(),
                rel_path: "crates/net/src/frame.rs".into(),
                is_crate_root: false,
                assume_test: false,
                text: src.into(),
            },
            &mut diags,
        );
        check(&[f], &Config::default(), &mut diags);
        diags
    }

    #[test]
    fn bare_narrowing_cast_is_flagged() {
        let d = run("fn put(len: u64) { out.push(len as u32); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, "cast");
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("as u32"));
    }

    #[test]
    fn try_into_is_clean() {
        let d = run("fn put(len: u64) -> Result<u32> { u32::try_from(len).map_err(|_| e()) }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn annotated_cast_is_clean() {
        let d = run(
            "fn idx(i: usize) -> u32 {\n\
             i as u32 // check: allow(cast, \"i < 256 by loop bound\")\n}",
        );
        // the cast is on line 2, annotated there
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_codec_files_are_out_of_scope() {
        let mut diags = Vec::new();
        let f = parse_file(
            &SrcFile {
                crate_name: "mad-core".into(),
                rel_path: "crates/core/src/derive.rs".into(),
                is_crate_root: false,
                assume_test: false,
                text: "fn f(n: u64) -> usize { n as usize }".into(),
            },
            &mut diags,
        );
        check(&[f], &Config::default(), &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn widening_to_unlisted_types_is_clean() {
        let d = run("fn f(b: u8) -> u128 { b as u128 }");
        assert!(d.is_empty(), "{d:?}");
    }
}
