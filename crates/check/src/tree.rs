//! Token-tree construction and a lightweight item scanner.
//!
//! The flat token stream from [`crate::lexer`] is folded into a tree of
//! delimiter groups, then scanned for the items the lints need: `fn`
//! bodies (with test-ness and enclosing `impl` header), `enum` variant
//! lists, and `mod` nesting. This is deliberately *not* a Rust parser —
//! unknown constructs are skipped token-by-token, which is safe because
//! every lint is a conservative pattern match over the tree.

use crate::lexer::{LexError, Tok, TokKind};

/// One node of the token tree.
#[derive(Clone, Debug)]
pub enum Node {
    /// A non-delimiter token.
    Leaf(Tok),
    /// A delimited group: `delim` is `(`, `[` or `{`.
    Group {
        /// Opening delimiter character.
        delim: char,
        /// Line of the opening delimiter.
        line: u32,
        /// Line of the closing delimiter.
        close_line: u32,
        /// The tokens between the delimiters, recursively grouped.
        children: Vec<Node>,
    },
}

impl Node {
    /// The identifier text, if this node is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Node::Leaf(Tok { kind: TokKind::Ident(s), .. }) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Is this node the given single punctuation character?
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Node::Leaf(Tok { kind: TokKind::Punct(p), .. }) if *p == c)
    }

    /// Is this node the given joined operator (`::`, `=>`, …)?
    pub fn is_joined(&self, op: &str) -> bool {
        matches!(self, Node::Leaf(Tok { kind: TokKind::Joined(o), .. }) if *o == op)
    }

    /// The source line of this node (opening line for groups).
    pub fn line(&self) -> u32 {
        match self {
            Node::Leaf(t) => t.line,
            Node::Group { line, .. } => *line,
        }
    }
}

/// Fold a token stream into a tree of delimiter groups. Unbalanced
/// delimiters are reported and the stray token is dropped, keeping the
/// scan best-effort.
pub fn build_tree(toks: &[Tok], errors: &mut Vec<LexError>) -> Vec<Node> {
    // stack of (delim, open line, children)
    let mut stack: Vec<(char, u32, Vec<Node>)> = Vec::new();
    let mut top: Vec<Node> = Vec::new();
    for t in toks {
        match t.kind {
            TokKind::Open(d) => {
                stack.push((d, t.line, std::mem::take(&mut top)));
                // `top` is now the new group's child list
            }
            TokKind::Close(d) => {
                let want = match d {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                match stack.pop() {
                    Some((delim, line, parent)) if delim == want => {
                        let children = std::mem::replace(&mut top, parent);
                        top.push(Node::Group { delim, line, close_line: t.line, children });
                    }
                    Some(other) => {
                        errors.push(LexError {
                            line: t.line,
                            detail: format!("mismatched closing `{d}`"),
                        });
                        stack.push(other);
                    }
                    None => errors.push(LexError {
                        line: t.line,
                        detail: format!("unbalanced closing `{d}`"),
                    }),
                }
            }
            _ => top.push(Node::Leaf(t.clone())),
        }
    }
    while let Some((delim, line, parent)) = stack.pop() {
        errors.push(LexError { line, detail: format!("unclosed `{delim}`") });
        let children = std::mem::replace(&mut top, parent);
        top.push(Node::Group { delim, line, close_line: line, children });
    }
    top
}

/// A scanned `fn` item.
#[derive(Debug)]
pub struct FnItem<'a> {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]`/`#[test]` (directly or via an enclosing
    /// test module)?
    pub is_test: bool,
    /// Flattened header of the enclosing `impl` block, if any, e.g.
    /// `BinEncode for WalRecord`.
    pub impl_header: Option<String>,
    /// The body block's children (`None` for a bodyless trait method).
    pub body: Option<&'a [Node]>,
}

/// A scanned `enum` item.
#[derive(Debug)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// Line of the `enum` keyword.
    pub line: u32,
    /// In test code?
    pub is_test: bool,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// Everything the item scanner extracts from one file.
#[derive(Debug, Default)]
pub struct FileItems<'a> {
    /// All functions, including ones nested in `mod`s and `impl`s.
    pub fns: Vec<FnItem<'a>>,
    /// All enums.
    pub enums: Vec<EnumItem>,
}

/// Scan a file's token tree for items.
pub fn scan_items(nodes: &[Node]) -> FileItems<'_> {
    let mut items = FileItems::default();
    walk(nodes, false, None, &mut items);
    items
}

/// Item keywords that terminate a skip and start a fresh item scan.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "mod", "enum", "struct", "union", "impl", "trait", "use", "type", "static", "const",
    "extern", "macro_rules",
];

fn walk<'a>(
    nodes: &'a [Node],
    in_test: bool,
    impl_header: Option<&str>,
    items: &mut FileItems<'a>,
) {
    let mut i = 0usize;
    while i < nodes.len() {
        // gather attributes on the upcoming item
        let mut attr_test = false;
        while nodes[i].is_punct('#') {
            let mut j = i + 1;
            if j < nodes.len() && nodes[j].is_punct('!') {
                j += 1; // inner attribute
            }
            match nodes.get(j) {
                Some(Node::Group { delim: '[', children, .. }) => {
                    let text = flatten(children);
                    if text == "test" || (text.starts_with("cfg") && text.contains("test")) {
                        attr_test = true;
                    }
                    i = j + 1;
                }
                _ => break,
            }
            if i >= nodes.len() {
                return;
            }
        }
        if i >= nodes.len() {
            return;
        }
        let test = in_test || attr_test;
        // skip visibility and modifiers to reach the item keyword
        let mut k = i;
        loop {
            match nodes[k].ident() {
                Some("pub") => {
                    k += 1;
                    if matches!(nodes.get(k), Some(Node::Group { delim: '(', .. })) {
                        k += 1; // pub(crate)
                    }
                }
                Some("default") | Some("async") | Some("unsafe") => k += 1,
                Some("const") if matches!(nodes.get(k + 1).and_then(Node::ident), Some("fn")) => {
                    k += 1
                }
                _ => break,
            }
            if k >= nodes.len() {
                return;
            }
        }
        let Some(kw) = nodes[k].ident() else {
            i += 1;
            continue;
        };
        match kw {
            "fn" => {
                let name = nodes
                    .get(k + 1)
                    .and_then(Node::ident)
                    .unwrap_or("<anon>")
                    .to_owned();
                let line = nodes[k].line();
                // the body is the first brace group at this level; a `;`
                // first means a bodyless trait method
                let mut j = k + 1;
                let mut body = None;
                while j < nodes.len() {
                    match &nodes[j] {
                        Node::Group { delim: '{', children, .. } => {
                            body = Some(children.as_slice());
                            break;
                        }
                        n if n.is_punct(';') => break,
                        _ => j += 1,
                    }
                }
                items.fns.push(FnItem {
                    name,
                    line,
                    is_test: test,
                    impl_header: impl_header.map(str::to_owned),
                    body,
                });
                i = j + 1;
            }
            "mod" => {
                let mut j = k + 1;
                while j < nodes.len() {
                    match &nodes[j] {
                        Node::Group { delim: '{', children, .. } => {
                            walk(children, test, None, items);
                            break;
                        }
                        n if n.is_punct(';') => break,
                        _ => j += 1,
                    }
                }
                i = j + 1;
            }
            "enum" => {
                let name = nodes
                    .get(k + 1)
                    .and_then(Node::ident)
                    .unwrap_or("<anon>")
                    .to_owned();
                let line = nodes[k].line();
                let mut j = k + 1;
                while j < nodes.len() {
                    match &nodes[j] {
                        Node::Group { delim: '{', children, .. } => {
                            items.enums.push(EnumItem {
                                name,
                                line,
                                is_test: test,
                                variants: enum_variants(children),
                            });
                            break;
                        }
                        n if n.is_punct(';') => break,
                        _ => j += 1,
                    }
                }
                i = j + 1;
            }
            "impl" => {
                // header = everything up to the brace body
                let mut j = k + 1;
                let mut header_nodes: Vec<&Node> = Vec::new();
                while j < nodes.len() {
                    if let Node::Group { delim: '{', children, .. } = &nodes[j] {
                        let header = flatten_refs(&header_nodes);
                        walk(children, test, Some(&header), items);
                        break;
                    }
                    header_nodes.push(&nodes[j]);
                    j += 1;
                }
                i = j + 1;
            }
            "trait" => {
                let mut j = k + 1;
                while j < nodes.len() {
                    match &nodes[j] {
                        Node::Group { delim: '{', children, .. } => {
                            walk(children, test, None, items);
                            break;
                        }
                        n if n.is_punct(';') => break,
                        _ => j += 1,
                    }
                }
                i = j + 1;
            }
            "macro_rules" => {
                // macro_rules! name { ... } — skip the whole definition
                let mut j = k + 1;
                while j < nodes.len() {
                    if matches!(&nodes[j], Node::Group { delim: '{', .. }) {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
            }
            "struct" | "union" | "use" | "type" | "static" | "const" | "extern" => {
                // skip to the terminating `;` or brace body
                let mut j = k + 1;
                while j < nodes.len() {
                    match &nodes[j] {
                        Node::Group { delim: '{', .. } => break,
                        n if n.is_punct(';') => break,
                        // a fresh item keyword means the previous item
                        // ended in a way we did not model; resynchronize
                        n if n
                            .ident()
                            .is_some_and(|id| ITEM_KEYWORDS.contains(&id)) =>
                        {
                            j -= 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                i = j + 1;
            }
            _ => i += 1,
        }
    }
}

/// Extract variant names from an enum body: split on top-level commas,
/// take the first identifier of each chunk (after attributes).
fn enum_variants(children: &[Node]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut expect_name = true;
    let mut i = 0usize;
    while i < children.len() {
        let n = &children[i];
        if n.is_punct(',') {
            expect_name = true;
            i += 1;
            continue;
        }
        if n.is_punct('#') {
            i += 2; // attribute: `#` + `[...]` group
            continue;
        }
        if expect_name {
            if let Some(name) = n.ident() {
                variants.push(name.to_owned());
                expect_name = false;
            }
        }
        i += 1;
    }
    variants
}

/// Flatten nodes back into compact text (used for attribute contents and
/// impl headers).
pub fn flatten(nodes: &[Node]) -> String {
    let refs: Vec<&Node> = nodes.iter().collect();
    flatten_refs(&refs)
}

fn flatten_refs(nodes: &[&Node]) -> String {
    let mut s = String::new();
    for n in nodes {
        flatten_one(n, &mut s);
    }
    s
}

fn flatten_one(n: &Node, s: &mut String) {
    match n {
        Node::Leaf(t) => match &t.kind {
            TokKind::Ident(id) => {
                if s.ends_with(|c: char| c.is_ascii_alphanumeric() || c == '_') {
                    s.push(' ');
                }
                s.push_str(id);
            }
            TokKind::Punct(c) => s.push(*c),
            TokKind::Joined(op) => s.push_str(op),
            TokKind::Lifetime => s.push_str("'_"),
            TokKind::Int(Some(v)) => s.push_str(&v.to_string()),
            TokKind::Int(None) | TokKind::Float => s.push('0'),
            TokKind::Literal => s.push_str("\"\""),
            // leaves never carry delimiters — build_tree folds them
            TokKind::Open(_) | TokKind::Close(_) => {}
        },
        Node::Group { delim, children, .. } => {
            s.push(*delim);
            for c in children {
                flatten_one(c, s);
            }
            s.push(match delim {
                '(' => ')',
                '[' => ']',
                _ => '}',
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> Vec<Node> {
        let lexed = lex(src);
        assert!(lexed.errors.is_empty(), "{:?}", lexed.errors);
        let mut errs = Vec::new();
        let t = build_tree(&lexed.toks, &mut errs);
        assert!(errs.is_empty(), "{errs:?}");
        t
    }

    #[test]
    fn groups_nest() {
        let t = tree("fn f(a: u32) { g(a[0]); }");
        // fn f (..) {..}
        assert!(matches!(&t[2], Node::Group { delim: '(', .. }));
        assert!(matches!(&t[3], Node::Group { delim: '{', .. }));
    }

    #[test]
    fn scans_fns_and_test_ness() {
        let t = tree(
            "pub fn a() {}\n\
             #[cfg(test)]\nmod tests { #[test] fn b() {} fn helper() {} }\n\
             impl Foo { pub(crate) fn c(&self) -> u32 { 1 } }",
        );
        let items = scan_items(&t);
        let names: Vec<(&str, bool)> = items
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_test))
            .collect();
        assert_eq!(names, vec![("a", false), ("b", true), ("helper", true), ("c", false)]);
        assert_eq!(items.fns[3].impl_header.as_deref(), Some("Foo"));
    }

    #[test]
    fn scans_trait_impl_headers() {
        let t = tree("impl BinEncode for WalRecord { fn encode(&self, out: &mut Vec<u8>) {} }");
        let items = scan_items(&t);
        assert_eq!(items.fns[0].impl_header.as_deref(), Some("BinEncode for WalRecord"));
    }

    #[test]
    fn scans_enum_variants() {
        let t = tree(
            "pub enum WalOp { Set { name: String }, Delete(u32), #[doc = \"x\"] Tick, }\n\
             enum Generic<T> where T: Copy { A(T), B }",
        );
        let items = scan_items(&t);
        assert_eq!(items.enums[0].name, "WalOp");
        assert_eq!(items.enums[0].variants, vec!["Set", "Delete", "Tick"]);
        assert_eq!(items.enums[1].variants, vec!["A", "B"]);
    }

    #[test]
    fn const_fn_and_bodyless_methods() {
        let t = tree(
            "trait T { fn sig(&self) -> u32; fn with_default(&self) {} }\n\
             pub const fn table() -> [u32; 4] { [0; 4] }",
        );
        let items = scan_items(&t);
        assert_eq!(items.fns.len(), 3);
        assert!(items.fns[0].body.is_none());
        assert!(items.fns[1].body.is_some());
        assert_eq!(items.fns[2].name, "table");
    }

    #[test]
    fn statics_and_consts_are_skipped() {
        let t = tree(
            "static TABLE: [u32; 256] = crc32_table();\n\
             const MAX: usize = 64 << 20;\n\
             fn after() {}",
        );
        let items = scan_items(&t);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "after");
    }
}
