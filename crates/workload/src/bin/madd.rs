//! `madd` — the MAD server daemon.
//!
//! ```text
//! madd [--addr ADDR] [--wal PATH] [--fsync per-commit|group|never]
//!      [--bootstrap mixed|brazil]
//! ```
//!
//! Serves one shared database over TCP (default `127.0.0.1:7878`): one
//! session per connection, `madc` as the client. With `--wal` the handle
//! is durable — the log is recovered if it exists and created from the
//! chosen bootstrap fixture otherwise, so killing the daemon (SIGKILL
//! included) and restarting it with the same `--wal` resumes from the
//! last acknowledged commit. Without `--wal` the state dies with the
//! process.

use mad_net::Server;
use mad_txn::{DbHandle, Durability, FsyncPolicy};
use mad_workload::{brazil_database, mixed_database};

fn main() {
    if let Err(e) = run() {
        eprintln!("madd: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut wal: Option<std::path::PathBuf> = None;
    let mut fsync = FsyncPolicy::Group;
    let mut bootstrap = "mixed".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value (try --help)"))
        };
        match a.as_str() {
            "--addr" => addr = value("--addr")?,
            "--wal" => wal = Some(value("--wal")?.into()),
            "--fsync" => {
                fsync = match value("--fsync")?.as_str() {
                    "per-commit" => FsyncPolicy::PerCommit,
                    "group" => FsyncPolicy::Group,
                    "never" => FsyncPolicy::Never,
                    other => return Err(format!("unknown fsync policy `{other}`").into()),
                }
            }
            "--bootstrap" => bootstrap = value("--bootstrap")?,
            "-h" | "--help" => {
                println!(
                    "usage: madd [--addr ADDR] [--wal PATH] \
                     [--fsync per-commit|group|never] [--bootstrap mixed|brazil]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)").into()),
        }
    }

    let db = match bootstrap.as_str() {
        "mixed" => mixed_database()?,
        "brazil" => brazil_database()?.0,
        other => return Err(format!("unknown bootstrap fixture `{other}`").into()),
    };
    let durability = match wal {
        Some(path) => Durability::Wal { path, fsync },
        None => Durability::None,
    };
    let handle = DbHandle::with_durability(db, durability)?;
    if let Some(info) = handle.recovery_info() {
        eprintln!(
            "madd: recovered {} commit(s), truncated {} torn byte(s)",
            info.commits_replayed, info.truncated_bytes
        );
    }
    let durable = handle.is_durable();
    let server = Server::serve(handle, addr.as_str())?;
    eprintln!(
        "madd: serving {} database on {} (one session per connection; connect with \
         `madc {}`)",
        if durable { "a durable" } else { "an in-memory" },
        server.local_addr(),
        server.local_addr(),
    );
    // serve until the process is killed; durability (when enabled) makes
    // an abrupt kill recoverable by construction
    loop {
        std::thread::park();
    }
}
