#![forbid(unsafe_code)]

//! `madd` — the MAD server daemon.
//!
//! ```text
//! madd [--addr ADDR] [--wal PATH] [--fsync per-commit|group|never]
//!      [--bootstrap mixed|brazil]
//!      [--repl-addr ADDR] [--sync-quorum N]
//!      [--standby PRIMARY_REPL_ADDR]
//!      [--slow-query-ms N]
//! ```
//!
//! Serves one shared database over TCP (default `127.0.0.1:7878`): one
//! session per connection, `madc` as the client. With `--wal` the handle
//! is durable — the log is recovered if it exists and created from the
//! chosen bootstrap fixture otherwise, so killing the daemon (SIGKILL
//! included) and restarting it with the same `--wal` resumes from the
//! last acknowledged commit. Without `--wal` the state dies with the
//! process.
//!
//! ## Replication roles
//!
//! * `--repl-addr ADDR` (requires `--wal`) additionally listens for
//!   standbys and streams every resolved commit record to them;
//!   `--sync-quorum N` makes COMMIT acknowledge only once `N` standbys
//!   hold the record durably.
//! * `--standby PRIMARY_REPL_ADDR` (requires `--wal`) runs this daemon
//!   as a warm standby instead: it bootstraps/catches up from the
//!   primary's replication port, replays continuously through the full
//!   recovery path, and serves **read-only** snapshot queries on
//!   `--addr`. Writes are refused with a pointer to the primary.
//!   Restarting the dead primary's role elsewhere is a separate
//!   `promote` step (see `mad_repl::Standby::promote`); `madd` keeps the
//!   standby warm until then.
//!
//! ## Observability
//!
//! `--slow-query-ms N` records every statement slower than `N`
//! milliseconds (0 = all) in the server's slow-query ring buffer, with
//! its per-stage trace. Inspect over any connection with `SHOW STATS net`
//! (or `\stats net` in `madc`); `EXPLAIN ANALYZE <stmt>` and
//! `SHOW STATS` work regardless of the flag.

use mad_net::{Server, ServerConfig};
use mad_repl::{ReplPrimary, Standby, StandbyConfig};
use mad_txn::{DbHandle, Durability, FsyncPolicy, ReplAck};
use mad_workload::{brazil_database, mixed_database};

fn main() {
    if let Err(e) = run() {
        eprintln!("madd: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut wal: Option<std::path::PathBuf> = None;
    let mut fsync = FsyncPolicy::Group;
    let mut bootstrap = "mixed".to_owned();
    let mut repl_addr: Option<String> = None;
    let mut sync_quorum: Option<usize> = None;
    let mut standby: Option<String> = None;
    let mut slow_query: Option<std::time::Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value (try --help)"))
        };
        match a.as_str() {
            "--addr" => addr = value("--addr")?,
            "--wal" => wal = Some(value("--wal")?.into()),
            "--fsync" => {
                fsync = match value("--fsync")?.as_str() {
                    "per-commit" => FsyncPolicy::PerCommit,
                    "group" => FsyncPolicy::Group,
                    "never" => FsyncPolicy::Never,
                    other => return Err(format!("unknown fsync policy `{other}`").into()),
                }
            }
            "--bootstrap" => bootstrap = value("--bootstrap")?,
            "--repl-addr" => repl_addr = Some(value("--repl-addr")?),
            "--sync-quorum" => {
                sync_quorum = Some(value("--sync-quorum")?.parse().map_err(|e| {
                    format!("--sync-quorum needs a standby count: {e}")
                })?)
            }
            "--standby" => standby = Some(value("--standby")?),
            "--slow-query-ms" => {
                let ms: u64 = value("--slow-query-ms")?.parse().map_err(|e| {
                    format!("--slow-query-ms needs a millisecond threshold: {e}")
                })?;
                slow_query = Some(std::time::Duration::from_millis(ms));
            }
            "-h" | "--help" => {
                println!(
                    "usage: madd [--addr ADDR] [--wal PATH] \
                     [--fsync per-commit|group|never] [--bootstrap mixed|brazil] \
                     [--repl-addr ADDR] [--sync-quorum N] \
                     [--standby PRIMARY_REPL_ADDR] [--slow-query-ms N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)").into()),
        }
    }

    // ---------------------------------------------------------------
    // standby role: follow a primary, serve read-only snapshots
    if let Some(primary) = standby {
        let Some(path) = wal else {
            return Err("--standby needs --wal (the standby's own log)".into());
        };
        if repl_addr.is_some() || sync_quorum.is_some() {
            return Err("--standby excludes --repl-addr/--sync-quorum".into());
        }
        let standby = Standby::start(StandbyConfig::new(primary.clone(), path, fsync))?;
        let config = ServerConfig {
            slow_query,
            ..ServerConfig::default()
        };
        let server = Server::serve_with(standby.handle(), addr.as_str(), config)?;
        eprintln!(
            "madd: standby of {} serving read-only snapshots on {} \
             (replicated through sequence {})",
            primary,
            server.local_addr(),
            standby.replicated_seq(),
        );
        loop {
            std::thread::park_timeout(std::time::Duration::from_secs(5));
            if let Some(reason) = standby.halt_reason() {
                return Err(format!("standby halted: {reason}").into());
            }
        }
    }

    // ---------------------------------------------------------------
    // primary role (replicating when --repl-addr is given)
    let db = match bootstrap.as_str() {
        "mixed" => mixed_database()?,
        "brazil" => brazil_database()?.0,
        other => return Err(format!("unknown bootstrap fixture `{other}`").into()),
    };
    let durability = match wal {
        Some(path) => Durability::Wal { path, fsync },
        None => Durability::None,
    };
    let handle = DbHandle::with_durability(db, durability)?;
    if let Some(info) = handle.recovery_info() {
        eprintln!(
            "madd: recovered {} commit(s), truncated {} torn byte(s)",
            info.commits_replayed, info.truncated_bytes
        );
    }
    let _repl = match repl_addr {
        Some(raddr) => {
            let repl = ReplPrimary::start(handle.clone(), raddr.as_str())?;
            if let Some(n) = sync_quorum {
                handle.set_repl_ack(ReplAck::SyncQuorum(n));
            }
            eprintln!(
                "madd: streaming commits to standbys on {} (ack mode: {})",
                repl.local_addr(),
                match sync_quorum {
                    Some(n) => format!("sync quorum of {n}"),
                    None => "async".to_owned(),
                },
            );
            Some(repl)
        }
        None => {
            if sync_quorum.is_some() {
                return Err("--sync-quorum needs --repl-addr".into());
            }
            None
        }
    };
    let durable = handle.is_durable();
    let config = ServerConfig {
        slow_query,
        ..ServerConfig::default()
    };
    let server = Server::serve_with(handle, addr.as_str(), config)?;
    eprintln!(
        "madd: serving {} database on {} (one session per connection; connect with \
         `madc {}`)",
        if durable { "a durable" } else { "an in-memory" },
        server.local_addr(),
        server.local_addr(),
    );
    // serve until the process is killed; durability (when enabled) makes
    // an abrupt kill recoverable by construction
    loop {
        std::thread::park();
    }
}
