//! Failover scenario: kill the primary mid-traffic **under fault
//! injection**, promote a standby, verify that every client-acknowledged
//! commit survived as an exact gap-free prefix, and keep committing on
//! the promoted node.
//!
//! This composes the whole PR-6 stack end to end:
//!
//! * real TCP writers drive `BEGIN … COMMIT` groups (with
//!   `is_conflict()` retries) against a durable primary served by
//!   [`mad_net::Server`];
//! * [`mad_repl::ReplPrimary`] streams the resolved commit records to
//!   warm [`mad_repl::Standby`]s, under
//!   [`mad_txn::ReplAck::SyncQuorum`] — a client's COMMIT acknowledges
//!   only once every healthy standby holds the record durably, which is
//!   exactly what makes the promoted-prefix invariant *provable* here;
//! * reader connections are served by a **standby's** read-only handle
//!   through an ordinary [`mad_net::Server`] — replication lag is the
//!   only difference a reader can observe, never a torn group;
//! * the promotion candidate replicates through a
//!   [`mad_repl::FaultProxy`] injecting a planned network fault
//!   (duplicated / reordered / torn / delayed / corrupted frames,
//!   mid-record disconnects), and an optional extra standby runs with a
//!   [`mad_wal::FaultPlan`] tripping its own log — it must **halt
//!   cleanly**, not diverge;
//! * the kill: replication is sealed and the primary's server torn down
//!   abruptly; in-flight COMMITs die indeterminate (sealed-quorum
//!   errors and transport errors are *not* counted as acked);
//! * promotion reopens the standby's log through full crash recovery
//!   (CRC scan, torn-tail truncation, integrity-checked replay), and
//!   the recovered state must contain every acked group — whole, in
//!   order, phantom-free; a fresh server over the promoted handle then
//!   takes new commits, continuing the sequence numbering.

use crate::mixed::mixed_database;
use crate::net::{commit_group_over_wire, is_transport, verify_prefix};
use mad_model::{MadError, Result};
use mad_net::{Client, Server};
use mad_repl::{FaultProxy, NetFaultPlan, ReplPrimary, Standby, StandbyConfig};
use mad_txn::{DbHandle, FaultPlan, FsyncPolicy, ReplAck};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Parameters of the failover scenario.
#[derive(Clone, Copy, Debug)]
pub struct FailoverParams {
    /// Writer connections against the primary.
    pub writers: usize,
    /// Reader connections against the standby-backed server.
    pub readers: usize,
    /// Transaction groups each writer tries to commit.
    pub txns_per_writer: usize,
    /// Areas connected to each inserted state (the atomic group size).
    pub areas_per_state: usize,
    /// Fsync policy of the primary and every standby.
    pub fsync: FsyncPolicy,
    /// Healthy standbys (≥ 1). The commit quorum is exactly this count,
    /// so every acked commit is durable on **all** of them and promotion
    /// of any one provably preserves the acked prefix.
    pub standbys: usize,
    /// Network fault injected (via proxy) into the promotion
    /// candidate's replication stream.
    pub net_fault: Option<NetFaultPlan>,
    /// Run one *extra* standby (outside the quorum) with this WAL fault
    /// plan armed; it must halt cleanly with a recorded reason.
    pub wal_fault: Option<FaultPlan>,
    /// Kill the primary once this many commits were acknowledged.
    pub kill_after_acks: usize,
}

impl Default for FailoverParams {
    fn default() -> Self {
        FailoverParams {
            writers: 3,
            readers: 2,
            txns_per_writer: 8,
            areas_per_state: 3,
            fsync: FsyncPolicy::Group,
            standbys: 2,
            net_fault: None,
            wal_fault: None,
            kill_after_acks: 10,
        }
    }
}

/// Outcome of one [`run_failover`] execution.
#[derive(Clone, Debug, Default)]
pub struct FailoverStats {
    /// Commits acknowledged to a client before the kill.
    pub acked: usize,
    /// Highest acknowledged commit sequence.
    pub max_acked_seq: u64,
    /// First-committer-wins conflicts retried over the wire.
    pub conflicts: usize,
    /// SELECT round-trips served by the standby-backed reader server.
    pub standby_reads: usize,
    /// Times the injected network fault fired.
    pub net_fault_fires: usize,
    /// Reconnects the promotion candidate needed (fault recovery).
    pub standby_reconnects: u64,
    /// Did the WAL-faulted extra standby halt cleanly (when configured)?
    pub faulted_standby_halted: bool,
    /// Commit sequence the promoted node recovered to.
    pub promoted_seq: u64,
    /// Torn-tail bytes promotion recovery truncated.
    pub truncated_bytes: u64,
    /// Commits published on the promoted node after failover.
    pub post_failover_commits: usize,
    /// Invariant violations (must be 0).
    pub violations: usize,
}

/// A commit wait errored because replication was sealed underneath it —
/// the kill reached the server mid-COMMIT; the outcome is indeterminate
/// and the group is deliberately **not** counted as acked.
fn is_sealed_wait(e: &MadError) -> bool {
    matches!(e, MadError::TxnState { .. }) && e.to_string().contains("sealed")
}

/// Run the scenario in `dir` (fresh log files are created inside).
pub fn run_failover(dir: &Path, params: &FailoverParams) -> Result<FailoverStats> {
    let k = params.areas_per_state;
    let healthy = params.standbys.max(1);

    // ---------------------------------------------------------------
    // phase 1: primary + replication fabric
    let primary = DbHandle::create_durable(
        mixed_database()?,
        dir.join("primary.wal"),
        params.fsync,
    )?;
    let mut repl = ReplPrimary::start(primary.clone(), "127.0.0.1:0")?;
    let repl_addr = repl.local_addr().to_string();

    // the promotion candidate replicates through the fault proxy when a
    // network fault is planned, directly otherwise
    let mut proxy = match params.net_fault {
        Some(plan) => Some(FaultProxy::start("127.0.0.1:0", repl_addr.clone(), plan)?),
        None => None,
    };
    let candidate_upstream = proxy
        .as_ref()
        .map(|p| p.local_addr().to_string())
        .unwrap_or_else(|| repl_addr.clone());

    let mut standbys = Vec::with_capacity(healthy);
    for i in 0..healthy {
        let upstream = if i == 0 { &candidate_upstream } else { &repl_addr };
        // a planned fault can kill the very handshake; bounded retries
        // ride it out (each attempt burns fault-budget fires)
        let mut attempt = 0;
        let standby = loop {
            match Standby::start(StandbyConfig::new(
                upstream.clone(),
                dir.join(format!("standby{i}.wal")),
                params.fsync,
            )) {
                Ok(s) => break s,
                Err(e) if attempt < 10 => {
                    attempt += 1;
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        };
        standbys.push(standby);
    }
    // the extra, deliberately storage-faulted standby (outside the quorum)
    let faulted = match params.wal_fault {
        Some(plan) => {
            let mut config = StandbyConfig::new(
                repl_addr.clone(),
                dir.join("standby-faulted.wal"),
                params.fsync,
            );
            config.fault = Some(plan);
            Some(Standby::start(config)?)
        }
        None => None,
    };

    // every acked commit must be durable on ALL healthy standbys before
    // the client hears about it — that is what promotion relies on
    primary.set_repl_ack(ReplAck::SyncQuorum(healthy));

    let server = Server::serve(primary.clone(), "127.0.0.1:0")?;
    let addr = server.local_addr();
    // readers are served by the promotion candidate's read-only handle
    let standby_server = Server::serve(standbys[0].handle(), "127.0.0.1:0")?;
    let standby_addr = standby_server.local_addr();

    // ---------------------------------------------------------------
    // phase 2: traffic, then the kill
    let stop = AtomicBool::new(false);
    let acked: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let max_acked_seq = AtomicU64::new(0);
    let conflicts = AtomicUsize::new(0);
    let reads = AtomicUsize::new(0);
    let violations = AtomicUsize::new(0);
    let writers_left = AtomicUsize::new(params.writers);

    struct WriterExit<'a>(&'a AtomicUsize);
    impl Drop for WriterExit<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::AcqRel);
        }
    }

    std::thread::scope(|scope| {
        for w in 0..params.writers {
            let (stop, acked, max_acked_seq, conflicts, violations, writers_left) =
                (&stop, &acked, &max_acked_seq, &conflicts, &violations, &writers_left);
            scope.spawn(move || {
                let _exit = WriterExit(writers_left);
                let Ok(mut client) = Client::connect(addr) else {
                    violations.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                'groups: for i in 0..params.txns_per_writer {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let name = format!("w{w}-{i}");
                    let aid_base = ((w * params.txns_per_writer + i) * k) as i64;
                    loop {
                        match commit_group_over_wire(&mut client, &name, aid_base, k) {
                            Ok(seq) => {
                                max_acked_seq.fetch_max(seq, Ordering::AcqRel);
                                acked.lock().unwrap().push(name);
                                break;
                            }
                            Err(e) if e.is_conflict() => {
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) if is_transport(&e) || is_sealed_wait(&e) => {
                                break 'groups; // the kill (or its seal)
                            }
                            Err(_) => {
                                violations.fetch_add(1, Ordering::Relaxed);
                                break 'groups;
                            }
                        }
                    }
                }
            });
        }
        for _ in 0..params.readers {
            let (stop, reads, violations) = (&stop, &reads, &violations);
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(standby_addr) else {
                    violations.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                while !stop.load(Ordering::Acquire) {
                    match client.execute("SELECT ALL FROM state-area") {
                        Ok(text) => {
                            reads.fetch_add(1, Ordering::Relaxed);
                            if !text.contains("molecule(s)") {
                                violations.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) if is_transport(&e) => break,
                        Err(_) => {
                            violations.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                    std::thread::yield_now();
                }
            });
        }

        // the killer: once enough commits are acked, pull the plug —
        // seal replication first (in-flight quorum waits error as
        // indeterminate), then tear the client server down
        let quota = params.writers * params.txns_per_writer;
        let target = params.kill_after_acks.min(quota);
        while acked.lock().unwrap().len() < target && writers_left.load(Ordering::Acquire) > 0
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Release);
        repl.shutdown();
        server.shutdown();
    });

    let acked = acked.into_inner().unwrap();
    let max_seq = max_acked_seq.into_inner();
    let mut violation_count = violations.into_inner();

    // ---------------------------------------------------------------
    // phase 3: the primary is dead; promote the candidate
    drop(primary);
    if let Some(p) = proxy.as_mut() {
        p.shutdown();
    }
    let candidate = standbys.remove(0);
    // SyncQuorum(healthy) ⇒ the candidate already holds every acked
    // commit durably; its published seq may still trail by the records
    // it received but has not applied — give the ingest loop a moment
    let deadline = Instant::now() + Duration::from_secs(5);
    while candidate.replicated_seq() < max_seq && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let net_fault_fires = proxy.as_ref().map(|p| p.fires()).unwrap_or(0);
    let standby_reconnects = candidate.reconnects();
    let (promoted, report) = candidate.promote()?;
    if report.last_seq < max_seq {
        violation_count += 1; // an acked commit did not survive failover
    }
    if promoted.is_read_only() || promoted.commit_seq() != report.last_seq {
        violation_count += 1;
    }
    // the gap-free-prefix check: whole groups only, every acked group
    // present, no phantoms, integrity audit clean
    violation_count += verify_prefix(&promoted, report.last_seq, &acked, k);

    // the other standbys (still wired to a dead primary) just serve
    // their last state; the storage-faulted one must have halted cleanly
    let faulted_standby_halted = match &faulted {
        Some(s) => {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                if let Some(_reason) = s.halt_reason() {
                    break true;
                }
                if Instant::now() >= deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        None => false,
    };
    if params.wal_fault.is_some() && !faulted_standby_halted {
        violation_count += 1; // the fault must end in a reported halt
    }

    // ---------------------------------------------------------------
    // phase 4: the promoted node is the new primary — keep committing
    standby_server.shutdown();
    let server = Server::serve(promoted.clone(), "127.0.0.1:0")?;
    let mut client = Client::connect(server.local_addr())?;
    if !client.server_info().durable {
        violation_count += 1;
    }
    let seq = commit_group_over_wire(&mut client, "post-failover", 2_000_000, k)?;
    if seq != report.last_seq + 1 {
        violation_count += 1; // numbering must continue seamlessly
    }
    let mut other = Client::connect(server.local_addr())?;
    let text =
        other.execute("SELECT ALL FROM state-area WHERE state.sname = 'post-failover'")?;
    if !text.contains("1 molecule(s)") {
        violation_count += 1;
    }
    drop(client);
    drop(other);
    server.shutdown();

    Ok(FailoverStats {
        acked: acked.len(),
        max_acked_seq: max_seq,
        conflicts: conflicts.into_inner(),
        standby_reads: reads.into_inner(),
        net_fault_fires,
        standby_reconnects,
        faulted_standby_halted,
        promoted_seq: report.last_seq,
        truncated_bytes: report.truncated_bytes,
        post_failover_commits: 1,
        violations: violation_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_repl::NetFault;

    fn run(name: &str, params: &FailoverParams) -> FailoverStats {
        let dir = std::env::temp_dir().join(format!(
            "mad-failover-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let stats = run_failover(&dir, params).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        stats
    }

    #[test]
    fn clean_failover_preserves_every_acked_commit() {
        let stats = run(
            "clean",
            &FailoverParams {
                writers: 2,
                readers: 1,
                txns_per_writer: 5,
                kill_after_acks: 6,
                areas_per_state: 2,
                ..Default::default()
            },
        );
        assert_eq!(stats.violations, 0, "{stats:?}");
        assert!(stats.acked >= 6, "{stats:?}");
        assert!(stats.promoted_seq >= stats.max_acked_seq, "{stats:?}");
        assert_eq!(stats.post_failover_commits, 1);
    }

    #[test]
    fn failover_survives_a_torn_replication_frame() {
        let stats = run(
            "torn",
            &FailoverParams {
                writers: 2,
                readers: 1,
                txns_per_writer: 5,
                kill_after_acks: 6,
                areas_per_state: 2,
                net_fault: Some(NetFaultPlan {
                    kind: NetFault::TornFrame,
                    at_frame: 4,
                    max_fires: 2,
                }),
                ..Default::default()
            },
        );
        assert_eq!(stats.violations, 0, "{stats:?}");
        assert!(stats.net_fault_fires >= 1, "fault never fired: {stats:?}");
    }

    /// The full injector matrix: under **every** network fault class the
    /// scenario must converge — the candidate reconnects/resyncs, every
    /// acked commit survives promotion, and the post-failover commit
    /// lands. (The storage-fault class, which must *halt* instead, is
    /// exercised separately below.)
    #[test]
    fn fault_matrix_every_network_injector_converges() {
        let kinds = [
            ("dup", NetFault::DuplicateFrame),
            ("reorder", NetFault::ReorderAdjacent),
            ("torn2", NetFault::TornFrame),
            ("closemid", NetFault::CloseMidFrame),
            ("delay", NetFault::DelayFrame { millis: 40 }),
            ("corrupt", NetFault::CorruptPayload),
        ];
        for (name, kind) in kinds {
            let stats = run(
                name,
                &FailoverParams {
                    writers: 2,
                    readers: 0,
                    txns_per_writer: 4,
                    kill_after_acks: 5,
                    areas_per_state: 2,
                    net_fault: Some(NetFaultPlan {
                        kind,
                        at_frame: 3,
                        max_fires: 1,
                    }),
                    ..Default::default()
                },
            );
            assert_eq!(stats.violations, 0, "{name}: {stats:?}");
            assert!(stats.acked >= 5, "{name}: {stats:?}");
            assert_eq!(stats.post_failover_commits, 1, "{name}: {stats:?}");
        }
    }

    #[test]
    fn a_storage_faulted_standby_halts_cleanly_and_failover_proceeds() {
        let stats = run(
            "walfault",
            &FailoverParams {
                writers: 2,
                readers: 1,
                txns_per_writer: 5,
                kill_after_acks: 6,
                areas_per_state: 2,
                wal_fault: Some(FaultPlan {
                    fail_fsync_at: Some(3),
                    ..Default::default()
                }),
                ..Default::default()
            },
        );
        assert_eq!(stats.violations, 0, "{stats:?}");
        assert!(stats.faulted_standby_halted, "{stats:?}");
    }
}
