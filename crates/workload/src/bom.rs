//! Bill-of-material generator (benchmarks B2/B5).
//!
//! The §3.1/§5 example: one atom type `parts` with a reflexive
//! `composition` link type. The generator builds a levelled DAG:
//! `depth` levels with `width` parts each; every part of level *l* has
//! `fanout` children picked from level *l+1*. The `share` parameter picks
//! how children are chosen: `share = 0` gives each parent private children
//! (a forest — no shared subobjects, if the level is wide enough);
//! `share → 1` concentrates choices on few children, producing the
//! heavily-shared sub-component structures that break hierarchical models.

use mad_model::{AtomId, AtomTypeId, AttrType, LinkTypeId, Result, SchemaBuilder, Value};
use mad_storage::Database;
use crate::rng::StdRng;

/// Parameters of the BOM generator.
#[derive(Clone, Debug)]
pub struct BomParams {
    /// Number of levels below the roots.
    pub depth: usize,
    /// Parts per level.
    pub width: usize,
    /// Children per part (links into the next level).
    pub fanout: usize,
    /// Sharing degree in `0..=1`: probability that a child link targets a
    /// "popular" part (the first ⌈10 %⌉ of the next level) instead of a
    /// spread-out one.
    pub share: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BomParams {
    fn default() -> Self {
        BomParams {
            depth: 4,
            width: 50,
            fanout: 3,
            share: 0.3,
            seed: 42,
        }
    }
}

/// Handles into the generated BOM database.
#[derive(Clone, Debug)]
pub struct BomHandles {
    /// The `parts` atom type.
    pub parts: AtomTypeId,
    /// The reflexive `composition` link type.
    pub composition: LinkTypeId,
    /// The top-level (level 0) parts.
    pub roots: Vec<AtomId>,
}

/// Generate a BOM database.
pub fn generate_bom(params: &BomParams) -> Result<(Database, BomHandles)> {
    let schema = SchemaBuilder::new()
        .atom_type(
            "parts",
            &[
                ("pname", AttrType::Text),
                ("cost", AttrType::Float),
                ("level", AttrType::Int),
            ],
        )
        .link_type("composition", "parts", "parts")
        .build()?;
    let mut db = Database::new(schema);
    let parts = db.schema().atom_type_id("parts")?;
    let composition = db.schema().link_type_id("composition")?;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut levels: Vec<Vec<AtomId>> = Vec::with_capacity(params.depth + 1);
    for level in 0..=params.depth {
        let mut atoms = Vec::with_capacity(params.width);
        for i in 0..params.width {
            atoms.push(db.insert_atom(
                parts,
                vec![
                    Value::Text(format!("P{level}_{i}")),
                    Value::Float(rng.gen_range(1.0..100.0)),
                    Value::Int(level as i64),
                ],
            )?);
        }
        levels.push(atoms);
    }
    let popular = (params.width / 10).max(1);
    for l in 0..params.depth {
        let (parents, children) = (levels[l].clone(), &levels[l + 1]);
        for (pi, &p) in parents.iter().enumerate() {
            for f in 0..params.fanout {
                let child = if rng.gen_bool(params.share.clamp(0.0, 1.0)) {
                    children[rng.gen_range(0..popular)]
                } else {
                    // spread: deterministic-ish slot to keep low collision
                    children[(pi * params.fanout + f) % children.len()]
                };
                db.connect(composition, p, child)?;
            }
        }
    }
    let roots = levels[0].clone();
    Ok((
        db,
        BomHandles {
            parts,
            composition,
            roots,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_core::recursive::{derive_recursive_one, RecursiveSpec};
    use mad_storage::database::Direction;

    #[test]
    fn generates_requested_shape() {
        let p = BomParams::default();
        let (db, h) = generate_bom(&p).unwrap();
        assert_eq!(db.atom_count(h.parts), (p.depth + 1) * p.width);
        assert!(db.audit_referential_integrity().is_empty());
        assert_eq!(h.roots.len(), p.width);
    }

    #[test]
    fn explosion_reaches_lower_levels() {
        let (db, h) = generate_bom(&BomParams::default()).unwrap();
        let spec = RecursiveSpec {
            atom_type: h.parts,
            link: h.composition,
            dir: Direction::Fwd,
            max_depth: None,
        };
        let m = derive_recursive_one(&db, &spec, h.roots[0]).unwrap();
        assert!(m.size() > 1);
        assert!(m.depth() >= 1);
    }

    #[test]
    fn high_share_concentrates_children() {
        let base = BomParams {
            depth: 2,
            width: 100,
            fanout: 4,
            ..Default::default()
        };
        let (dbs, hs) = generate_bom(&BomParams {
            share: 1.0,
            ..base.clone()
        })
        .unwrap();
        let (dbd, hd) = generate_bom(&BomParams {
            share: 0.0,
            ..base
        })
        .unwrap();
        // with full sharing, all links of a level land on ~width/10 children
        let spec = |h: &BomHandles| RecursiveSpec {
            atom_type: h.parts,
            link: h.composition,
            dir: Direction::Bwd,
            max_depth: Some(1),
        };
        // count parents of the most popular child in each database
        let max_parents = |db: &Database, h: &BomHandles| -> usize {
            db.atom_ids_of(h.parts)
                .into_iter()
                .map(|a| {
                    derive_recursive_one(db, &spec(h), a)
                        .unwrap()
                        .size()
                        .saturating_sub(1)
                })
                .max()
                .unwrap()
        };
        assert!(max_parents(&dbs, &hs) > max_parents(&dbd, &hd));
    }

    #[test]
    fn deterministic_per_seed() {
        let p = BomParams::default();
        let (a, _) = generate_bom(&p).unwrap();
        let (b, _) = generate_bom(&p).unwrap();
        assert_eq!(a.total_links(), b.total_links());
    }
}
