//! Concurrent mixed read/write workload over one shared [`DbHandle`].
//!
//! The "heavy traffic" scenario of the ROADMAP in miniature: `writers`
//! threads commit snapshot-isolated transactions — each inserts one
//! `state` with `areas_per_state` connected `area` atoms (an atomic group)
//! and then bumps a contended per-state counter attribute — while
//! `readers` threads continuously derive `state-area` molecules from
//! committed snapshots and *verify* the isolation invariants:
//!
//! * **atomicity** — every committed state has exactly `areas_per_state`
//!   areas; a reader can never observe a half-inserted group;
//! * **consistency** — referential integrity holds on every snapshot;
//! * **snapshot stability** — a snapshot taken once yields identical
//!   derivation results no matter how many commits land meanwhile.
//!
//! Violations are *counted*, not panicked, so the scenario doubles as a
//! stress harness for tests (assert `inconsistencies == 0`) and as the
//! driver of the `concurrent_sessions` benchmark.

use crate::rng::StdRng;
use mad_core::derive::{derive_molecules, DeriveOptions, Strategy};
use mad_core::structure::path;
use mad_model::{AttrType, Result, SchemaBuilder, Value};
use mad_storage::Database;
use mad_txn::{DbHandle, Transaction};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Parameters of the mixed scenario.
#[derive(Clone, Copy, Debug)]
pub struct MixedParams {
    /// Reader threads (continuous snapshot derivation + invariant checks).
    pub readers: usize,
    /// Writer threads (transactional inserts + contended updates).
    pub writers: usize,
    /// Committed transactions per writer thread.
    pub txns_per_writer: usize,
    /// Areas connected to each inserted state (the atomic group size).
    pub areas_per_state: usize,
    /// RNG seed for writer jitter.
    pub seed: u64,
}

impl Default for MixedParams {
    fn default() -> Self {
        MixedParams {
            readers: 2,
            writers: 2,
            txns_per_writer: 25,
            areas_per_state: 4,
            seed: 42,
        }
    }
}

/// Outcome counters of one [`run_mixed`] execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct MixedStats {
    /// Transactions committed (excluding retries).
    pub commits: usize,
    /// First-committer-wins conflicts that forced a retry.
    pub conflicts: usize,
    /// Snapshot derivations performed by the readers.
    pub reads: usize,
    /// Isolation-invariant violations observed (must be 0).
    pub inconsistencies: usize,
}

/// A fresh database for the mixed scenario: the `state`/`area` core of the
/// geographic schema plus one pre-seeded contended `state` (slot 0) whose
/// `hectare` attribute the writers fight over.
pub fn mixed_database() -> Result<Database> {
    let schema = SchemaBuilder::new()
        .atom_type(
            "state",
            &[("sname", AttrType::Text), ("hectare", AttrType::Float)],
        )
        .atom_type("area", &[("aid", AttrType::Int)])
        .link_type("state-area", "state", "area")
        .build()?;
    let mut db = Database::new(schema);
    let state = db.schema().atom_type_id("state")?;
    db.insert_atom(state, vec![Value::from("contended"), Value::from(0.0)])?;
    Ok(db)
}

/// Drive `params.writers` writer and `params.readers` reader threads over
/// `handle` until every writer has committed its quota. See the module
/// docs for the invariants the readers verify.
pub fn run_mixed(handle: &DbHandle, params: &MixedParams) -> Result<MixedStats> {
    let db = handle.committed();
    let state = db.schema().atom_type_id("state")?;
    let md = path(db.schema(), &["state", "area"])?;
    let contended = mad_model::AtomId::new(state, 0);
    let k = params.areas_per_state;

    let commits = AtomicUsize::new(0);
    let conflicts = AtomicUsize::new(0);
    let reads = AtomicUsize::new(0);
    let inconsistencies = AtomicUsize::new(0);
    let writers_done = AtomicBool::new(false);
    let writers_left = AtomicUsize::new(params.writers);

    /// Flags `done` when the last writer exits — **including by panic**
    /// (the guard drops during unwind), so the readers always terminate
    /// and a writer failure surfaces as a test failure, never a hang.
    struct WriterExit<'a> {
        left: &'a AtomicUsize,
        done: &'a AtomicBool,
    }
    impl Drop for WriterExit<'_> {
        fn drop(&mut self) {
            if self.left.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.done.store(true, Ordering::Release);
            }
        }
    }

    std::thread::scope(|scope| {
        for w in 0..params.writers {
            let handle = handle.clone();
            let (commits, conflicts) = (&commits, &conflicts);
            let (writers_left, writers_done) = (&writers_left, &writers_done);
            let mut rng =
                StdRng::seed_from_u64(params.seed ^ (w as u64).wrapping_mul(0x9e37_79b9));
            scope.spawn(move || {
                let _exit = WriterExit {
                    left: writers_left,
                    done: writers_done,
                };
                for i in 0..params.txns_per_writer {
                    loop {
                        let mut txn = Transaction::begin(&handle);
                        let outcome = write_group(&mut txn, w, i, k, &mut rng);
                        match outcome.and_then(|()| txn.commit()) {
                            Ok(_) => {
                                commits.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(e) if e.is_conflict() => {
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("writer {w} failed non-retryably: {e}"),
                        }
                    }
                }
            });
        }
        for _ in 0..params.readers {
            let handle = handle.clone();
            let (reads, inconsistencies, writers_done) =
                (&reads, &inconsistencies, &writers_done);
            let md = &md;
            scope.spawn(move || {
                let opts = DeriveOptions::with_strategy(Strategy::Bitset);
                loop {
                    let snap = handle.committed();
                    let ms = derive_molecules(&snap, md, &opts)
                        .expect("derivation over a committed snapshot");
                    reads.fetch_add(1, Ordering::Relaxed);
                    // atomicity: every committed group is whole
                    for m in &ms {
                        let areas = m.atoms_at(1).len();
                        if m.root != contended && areas != k {
                            inconsistencies.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // consistency: no dangling references on any snapshot
                    if !snap.audit_referential_integrity().is_empty() {
                        inconsistencies.fetch_add(1, Ordering::Relaxed);
                    }
                    // snapshot stability: re-deriving over the SAME Arc
                    // gives identical results even while commits land
                    let again = derive_molecules(&snap, md, &opts).unwrap();
                    if again != ms {
                        inconsistencies.fetch_add(1, Ordering::Relaxed);
                    }
                    if writers_done.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
    });

    Ok(MixedStats {
        commits: commits.into_inner(),
        conflicts: conflicts.into_inner(),
        reads: reads.into_inner(),
        inconsistencies: inconsistencies.into_inner(),
    })
}

/// One writer transaction: insert a state + `k` connected areas (atomic
/// group), then bump the contended counter so that overlapping writers
/// exercise first-committer-wins.
fn write_group(
    txn: &mut Transaction,
    writer: usize,
    i: usize,
    k: usize,
    rng: &mut StdRng,
) -> Result<()> {
    let db = txn.db();
    let state = db.schema().atom_type_id("state")?;
    let area = db.schema().atom_type_id("area")?;
    let sa = db.schema().link_type_id("state-area")?;
    let contended = mad_model::AtomId::new(state, 0);
    let s = txn.insert_atom(
        state,
        vec![
            Value::from(format!("w{writer}-{i}")),
            Value::from((i as f64) + 1.0),
        ],
    )?;
    let tuples: Vec<Vec<Value>> = (0..k)
        .map(|j| vec![Value::from((writer * 1_000_000 + i * 100 + j) as i64)])
        .collect();
    let areas = txn.insert_atoms(area, tuples)?;
    for a in areas {
        txn.connect(sa, s, a)?;
    }
    // the contended write: read the counter through the overlay, bump it
    let current = txn.db().atom_value(contended, 1)?.clone();
    let bumped = match current {
        Value::Float(x) => x + 1.0,
        _ => 1.0,
    };
    txn.update_attr(contended, 1, Value::from(bumped))?;
    // writer jitter so interleavings vary run to run
    if rng.gen_bool(0.25) {
        std::thread::yield_now();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_scenario_upholds_isolation_invariants() {
        let handle = DbHandle::new(mixed_database().unwrap());
        let params = MixedParams {
            readers: 2,
            writers: 2,
            txns_per_writer: 10,
            areas_per_state: 3,
            seed: 7,
        };
        let stats = run_mixed(&handle, &params).unwrap();
        assert_eq!(stats.commits, 20);
        assert_eq!(stats.inconsistencies, 0, "isolation invariant violated");
        assert!(stats.reads > 0);
        let db = handle.committed();
        let state = db.schema().atom_type_id("state").unwrap();
        assert_eq!(db.atom_count(state), 21, "20 committed groups + contended");
        // the contended counter is exactly the commit count: every lost
        // update was caught by first-committer-wins and retried
        let counter = db.atom_value(mad_model::AtomId::new(state, 0), 1).unwrap();
        assert_eq!(counter, &Value::Float(20.0), "lost update slipped through");
        assert!(db.audit_referential_integrity().is_empty());
    }
}
