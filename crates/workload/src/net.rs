//! Networked crash-recovery scenario: the mixed read/write workload
//! driven by real TCP clients against a durable [`mad_net::Server`], a
//! kill at a crash-consistent point, restart, and verification that every
//! client-acknowledged commit survives as an exact prefix.
//!
//! This composes the PR-3 `mixed` scenario (concurrent writers + readers
//! over one shared handle) with the PR-4 `crash` scenario (cut the WAL
//! the way a crash would leave it), but pushes both through the network
//! stack: every statement is MQL text over checksummed frames, every
//! writer transaction spans multiple round-trips (`BEGIN` … `COMMIT`),
//! and the conflict retries exercise `is_conflict()` *across the wire*.
//!
//! ## What "kill" means here
//!
//! The server is shut down abruptly mid-traffic (in-flight statements die
//! with transport errors on their clients; an indeterminate `COMMIT` —
//! sent but unacknowledged — is *not* counted as acked) and the log file
//! is then cut at a random record boundary **at or beyond the highest
//! client-acknowledged commit sequence**, optionally with a torn partial
//! record appended. That is exactly the family of states a real power
//! failure can leave: acknowledged commits were fsynced (the group-commit
//! protocol acknowledges only after their covering fsync), so a real
//! crash can only lose a suffix of unacknowledged records plus a torn
//! tail. Recovery must then restore a state containing **every** acked
//! commit, as a gap-free prefix of whole transaction groups.

use crate::mixed::mixed_database;
use crate::rng::StdRng;
use mad_model::{AtomId, MadError, Result, Value};
use mad_net::{Client, Server};
use mad_txn::{DbHandle, FsyncPolicy};
use mad_wal::frame_boundaries;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parameters of the networked crash scenario.
#[derive(Clone, Copy, Debug)]
pub struct NetCrashParams {
    /// Writer connections (each runs `BEGIN … COMMIT` groups with retries).
    pub writers: usize,
    /// Reader connections (continuous SELECT until the kill).
    pub readers: usize,
    /// Transaction groups each writer tries to commit.
    pub txns_per_writer: usize,
    /// Areas connected to each inserted state (the atomic group size).
    pub areas_per_state: usize,
    /// Fsync policy of the durable handle behind the server.
    pub fsync: FsyncPolicy,
    /// Kill the server once this many commits were acknowledged (the
    /// writers may be mid-transaction then; capped by the total quota).
    pub kill_after_acks: usize,
    /// Also tear a strict prefix of the record after the cut.
    pub tear_tail: bool,
    /// Seed for the cut point and writer jitter.
    pub seed: u64,
}

impl Default for NetCrashParams {
    fn default() -> Self {
        NetCrashParams {
            writers: 3,
            readers: 2,
            txns_per_writer: 8,
            areas_per_state: 3,
            fsync: FsyncPolicy::Group,
            kill_after_acks: 12,
            tear_tail: true,
            seed: 20260731,
        }
    }
}

/// Outcome of one [`run_net_crash`] execution.
#[derive(Clone, Debug, Default)]
pub struct NetCrashStats {
    /// Commits acknowledged to a client before the kill.
    pub acked: usize,
    /// First-committer-wins conflicts retried over the wire.
    pub conflicts: usize,
    /// SELECT round-trips completed by the reader connections.
    pub reads: usize,
    /// Commit records surviving the crash cut.
    pub survived: u64,
    /// Bytes of torn tail recovery truncated.
    pub truncated_bytes: u64,
    /// Commits published by the post-restart verification client.
    pub post_restart_commits: usize,
    /// Invariant violations (must be 0): a lost acked commit, a torn or
    /// phantom group, a count mismatch, an integrity-audit failure, a
    /// malformed server response.
    pub violations: usize,
}

/// Is this error a transport failure (the server died underneath the
/// client) rather than a statement failure?
pub(crate) fn is_transport(e: &MadError) -> bool {
    matches!(e, MadError::Io { .. } | MadError::Protocol { .. })
}

/// Parse the commit sequence out of a rendered COMMIT acknowledgment
/// (`"committed N operation(s) at sequence S…"`).
pub(crate) fn parse_commit_seq(text: &str) -> Option<u64> {
    let rest = text.split("at sequence ").nth(1)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// One writer group over the wire: BEGIN, the inserts and connects of one
/// atomic group, a contended update (forcing first-committer-wins races
/// between writers), COMMIT. Returns the acknowledged commit sequence.
pub(crate) fn commit_group_over_wire(
    client: &mut Client,
    name: &str,
    aid_base: i64,
    areas_per_state: usize,
) -> Result<u64> {
    client.execute("BEGIN")?;
    client.execute(&format!(
        "INSERT ATOM state (sname = '{name}', hectare = 1.0)"
    ))?;
    for j in 0..areas_per_state {
        let aid = aid_base + j as i64;
        client.execute(&format!("INSERT ATOM area (aid = {aid})"))?;
        client.execute(&format!(
            "CONNECT state[sname='{name}'] TO area[aid={aid}] VIA state-area"
        ))?;
    }
    client.execute("UPDATE state[sname='contended'] SET hectare = 1.0")?;
    let ack = client.execute("COMMIT")?;
    parse_commit_seq(&ack).ok_or_else(|| {
        MadError::protocol(format!("unparseable COMMIT acknowledgment: {ack:?}"))
    })
}

/// Run the scenario against a fresh durable server at `wal_path` (the file
/// must not exist). The log file is left in its post-recovery state.
pub fn run_net_crash(wal_path: &Path, params: &NetCrashParams) -> Result<NetCrashStats> {
    let k = params.areas_per_state;

    // ---------------------------------------------------------------
    // phase 1: serve a durable handle, drive it with real TCP clients
    let handle = DbHandle::create_durable(mixed_database()?, wal_path, params.fsync)?;
    let server = Server::serve(handle, "127.0.0.1:0")?;
    let addr = server.local_addr();

    let stop = AtomicBool::new(false);
    let acked: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let max_acked_seq = AtomicU64::new(0);
    let conflicts = AtomicUsize::new(0);
    let reads = AtomicUsize::new(0);
    let violations = AtomicUsize::new(0);
    let writers_left = AtomicUsize::new(params.writers);

    /// Decrements on writer exit — **including by panic** — so the killer
    /// loop below can never wait forever on a dead writer.
    struct WriterExit<'a>(&'a AtomicUsize);
    impl Drop for WriterExit<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::AcqRel);
        }
    }

    std::thread::scope(|scope| {
        for w in 0..params.writers {
            let (stop, acked, max_acked_seq, conflicts, violations, writers_left) =
                (&stop, &acked, &max_acked_seq, &conflicts, &violations, &writers_left);
            scope.spawn(move || {
                let _exit = WriterExit(writers_left);
                let Ok(mut client) = Client::connect(addr) else {
                    violations.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                'groups: for i in 0..params.txns_per_writer {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let name = format!("w{w}-{i}");
                    let aid_base = ((w * params.txns_per_writer + i) * k) as i64;
                    loop {
                        match commit_group_over_wire(&mut client, &name, aid_base, k) {
                            Ok(seq) => {
                                max_acked_seq.fetch_max(seq, Ordering::AcqRel);
                                acked.lock().unwrap().push(name);
                                break;
                            }
                            Err(e) if e.is_conflict() => {
                                // the failed COMMIT aborted the server-side
                                // transaction; retry the whole group
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) if is_transport(&e) => break 'groups, // the kill
                            Err(_) => {
                                violations.fetch_add(1, Ordering::Relaxed);
                                break 'groups;
                            }
                        }
                    }
                }
            });
        }
        for _ in 0..params.readers {
            let (stop, reads, violations) = (&stop, &reads, &violations);
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr) else {
                    violations.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                while !stop.load(Ordering::Acquire) {
                    match client.execute("SELECT ALL FROM state-area") {
                        Ok(text) => {
                            reads.fetch_add(1, Ordering::Relaxed);
                            if !text.contains("molecule(s)") {
                                violations.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) if is_transport(&e) => break, // the kill
                        Err(_) => {
                            violations.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                    std::thread::yield_now();
                }
            });
        }

        // the killer: wait for the configured number of acknowledgments
        // (or for every writer to finish/fail), then pull the plug
        let quota = params.writers * params.txns_per_writer;
        let target = params.kill_after_acks.min(quota);
        while acked.lock().unwrap().len() < target && writers_left.load(Ordering::Acquire) > 0
        {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        stop.store(true, Ordering::Release);
        server.shutdown(); // closes every connection; clients see I/O errors
    });

    let acked = acked.into_inner().unwrap();
    let max_seq = max_acked_seq.into_inner();

    // ---------------------------------------------------------------
    // phase 2: the crash image — cut at a random record boundary at or
    // beyond the highest acked commit (acked ⇒ fsynced ⇒ survives a real
    // crash), optionally tearing a prefix of the next record
    // the cut applies to the ACTIVE segment — the only file a real crash
    // can tear (these scenarios stay under the rotation threshold, so it
    // also holds every commit record)
    let seg_path = mad_wal::active_segment_path(wal_path)?;
    let full =
        std::fs::read(&seg_path).map_err(|e| MadError::wal(format!("read log: {e}")))?;
    let boundaries = frame_boundaries(&full);
    // boundaries[i] = end of record i; record 0 is the bootstrap image,
    // so a cut at boundaries[c] keeps commits 1..=c
    if boundaries.len() as u64 <= max_seq {
        return Err(MadError::wal(format!(
            "log holds {} records but sequence {max_seq} was acknowledged",
            boundaries.len().saturating_sub(1),
        )));
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let eligible = &boundaries[max_seq as usize..];
    let cut_index = max_seq as usize + rng.gen_range(0..eligible.len());
    let cut = boundaries[cut_index];
    let mut image = full[..cut].to_vec();
    if params.tear_tail && cut < full.len() {
        let next_len = boundaries
            .get(cut_index + 1)
            .map(|&b| b - cut)
            .unwrap_or(full.len() - cut);
        if next_len > 1 {
            let torn = 1 + rng.gen_range(0..next_len - 1);
            image.extend_from_slice(&full[cut..cut + torn]);
        }
    }
    let torn_bytes = (image.len() - cut) as u64;
    std::fs::write(&seg_path, &image).map_err(|e| MadError::wal(format!("cut log: {e}")))?;

    // ---------------------------------------------------------------
    // phase 3: recover and verify the acked-prefix invariants
    let handle = DbHandle::open_durable(wal_path, params.fsync)?;
    let info = handle
        .recovery_info()
        .expect("open_durable always records recovery info");
    let mut violation_count = violations.into_inner();
    if info.truncated_bytes != torn_bytes {
        violation_count += 1;
    }
    if info.commits_replayed != cut_index as u64 {
        violation_count += 1;
    }
    violation_count += verify_prefix(&handle, info.commits_replayed, &acked, k);

    // ---------------------------------------------------------------
    // phase 4: the service comes back — a fresh server over the recovered
    // handle keeps serving reads and durable commits
    let server = Server::serve(handle, "127.0.0.1:0")?;
    let mut client = Client::connect(server.local_addr())?;
    if !client.server_info().durable {
        violation_count += 1;
    }
    let text = client.execute("SELECT ALL FROM state-area")?;
    if !text.contains("molecule(s)") {
        violation_count += 1;
    }
    let seq = commit_group_over_wire(&mut client, "post-restart", 1_000_000, k)?;
    let post_restart_commits = 1;
    if seq != info.commits_replayed + 1 {
        violation_count += 1; // sequence numbering must continue seamlessly
    }
    // read-your-committed-writes through a second, fresh connection
    let mut other = Client::connect(server.local_addr())?;
    let text = other.execute("SELECT ALL FROM state-area WHERE state.sname = 'post-restart'")?;
    if !text.contains("1 molecule(s)") {
        violation_count += 1;
    }
    drop(client);
    drop(other);
    server.shutdown();

    Ok(NetCrashStats {
        acked: acked.len(),
        conflicts: conflicts.into_inner(),
        reads: reads.into_inner(),
        survived: info.commits_replayed,
        truncated_bytes: info.truncated_bytes,
        post_restart_commits,
        violations: violation_count,
    })
}

/// Check the recovered state: exactly `k_commits` whole groups, every
/// acked group present, no phantom groups, referential integrity clean.
/// Returns the number of violated invariants.
pub(crate) fn verify_prefix(
    handle: &DbHandle,
    k_commits: u64,
    acked: &[String],
    areas_per_state: usize,
) -> usize {
    let db = handle.committed();
    let mut violations = 0usize;
    let state = db.schema().atom_type_id("state").expect("mixed schema");
    let area = db.schema().atom_type_id("area").expect("mixed schema");
    let sa = db.schema().link_type_id("state-area").expect("mixed schema");
    let k = k_commits as usize;
    if db.atom_count(state) != 1 + k {
        violations += 1; // a group vanished or half-appeared
    }
    if db.atom_count(area) != k * areas_per_state {
        violations += 1;
    }
    if db.link_count(sa) != k * areas_per_state {
        violations += 1;
    }
    // every surviving group is a submitted one, exactly once, and every
    // *acknowledged* group is among the survivors (slot 0 is the seed)
    let mut survivors: Vec<String> = Vec::with_capacity(k);
    for slot in 1..=k as u32 {
        match db.atom_value(AtomId::new(state, slot), 0) {
            Ok(Value::Text(name)) => survivors.push(name.clone()),
            _ => violations += 1,
        }
    }
    for name in acked {
        if !survivors.iter().any(|s| s == name) {
            violations += 1; // an acknowledged commit was lost
        }
    }
    if !survivors
        .iter()
        .all(|s| s.starts_with('w') && s.contains('-'))
    {
        violations += 1; // a phantom group appeared
    }
    if !db.audit_referential_integrity().is_empty() {
        violations += 1;
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(seed: u64, fsync: FsyncPolicy) -> NetCrashStats {
        let dir = std::env::temp_dir().join(format!(
            "mad-netcrash-{seed}-{fsync:?}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mad.wal");
        let params = NetCrashParams {
            writers: 2,
            readers: 1,
            txns_per_writer: 5,
            areas_per_state: 2,
            fsync,
            kill_after_acks: 6,
            tear_tail: true,
            seed,
        };
        let stats = run_net_crash(&path, &params).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        stats
    }

    #[test]
    fn networked_crash_recovers_every_acked_commit() {
        for seed in [1u64, 2, 3] {
            let stats = scenario(seed, FsyncPolicy::Group);
            assert_eq!(
                stats.violations, 0,
                "seed {seed} recovered inconsistently: {stats:?}"
            );
            assert!(stats.acked >= 6, "the kill fired too early: {stats:?}");
            assert!(stats.survived >= stats.acked as u64, "{stats:?}");
            assert_eq!(stats.post_restart_commits, 1);
        }
    }

    #[test]
    fn networked_crash_holds_under_per_commit_fsync() {
        let stats = scenario(77, FsyncPolicy::PerCommit);
        assert_eq!(stats.violations, 0, "{stats:?}");
    }
}
