//! Pipelining stress scenario: N writer connections each keeping M
//! statements in flight against one durable [`mad_net::Server`], with
//! forced first-committer-wins conflicts, plus an abrupt mid-burst
//! [`mad_net::Server::kill`], recovery, and acked-prefix verification.
//!
//! The PR-6 networked crash scenario drives the server strictly
//! request/response: every statement waits for its answer. This scenario
//! exercises what that one cannot — the server's **pipelining
//! guarantees** under load and under a kill:
//!
//! * responses arrive in request order even when whole `BEGIN … COMMIT`
//!   groups are in flight back to back,
//! * a conflict error answers *in position* and aborts only its own
//!   transaction — the pipelined groups behind it still execute,
//! * an abrupt kill mid-burst loses only unacknowledged suffixes: after
//!   recovery, every commit that was acknowledged to a client is present,
//!   whole, and nothing half-committed survives (checked with the same
//!   prefix verifier as the crash scenario).
//!
//! The forced conflict is deterministic, not statistical: a probe
//! connection opens a transaction around the contended atom, a second
//! connection commits a competing group, and the probe's pipelined
//! `COMMIT` must answer with a conflict error in its slot.

use crate::mixed::mixed_database;
use crate::net::{is_transport, parse_commit_seq, verify_prefix};
use mad_model::{MadError, Result};
use mad_net::{Client, Server};
use mad_txn::{DbHandle, FsyncPolicy};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parameters of the pipelining stress scenario.
#[derive(Clone, Copy, Debug)]
pub struct NetPipelineParams {
    /// Writer connections, each pipelining whole transaction groups.
    pub connections: usize,
    /// Reader connections, each pipelining bursts of SELECTs.
    pub readers: usize,
    /// Transaction groups each writer tries to commit.
    pub txns_per_conn: usize,
    /// Complete groups kept in flight per burst (each group is
    /// `4 + 2 × areas_per_state` statements, so the in-flight depth in
    /// statements is this times that).
    pub groups_per_burst: usize,
    /// Areas connected to each inserted state (the atomic group size).
    pub areas_per_state: usize,
    /// Fsync policy of the durable handle behind the server.
    pub fsync: FsyncPolicy,
    /// Kill the server once this many commits were acknowledged (capped
    /// by the total quota; the writers are mid-burst then).
    pub kill_after_acks: usize,
}

impl Default for NetPipelineParams {
    fn default() -> Self {
        NetPipelineParams {
            connections: 3,
            readers: 1,
            txns_per_conn: 8,
            groups_per_burst: 3,
            areas_per_state: 2,
            fsync: FsyncPolicy::Group,
            kill_after_acks: 12,
        }
    }
}

/// Outcome of one [`run_net_pipeline`] execution.
#[derive(Clone, Debug, Default)]
pub struct NetPipelineStats {
    /// Commits acknowledged to a client before the kill.
    pub acked: usize,
    /// Conflict errors answered in pipeline position (the deterministic
    /// probe contributes at least one).
    pub conflicts: usize,
    /// SELECT responses received by the pipelined readers.
    pub reads: usize,
    /// Commit records surviving the kill.
    pub survived: u64,
    /// Invariant violations (must be 0): an out-of-order or malformed
    /// response, a lost acked commit, a phantom or torn group, an
    /// integrity-audit failure.
    pub violations: usize,
}

/// The statements of one atomic group, in pipeline order.
fn group_statements(name: &str, aid_base: i64, k: usize) -> Vec<String> {
    let mut stmts = vec![
        "BEGIN".to_owned(),
        format!("INSERT ATOM state (sname = '{name}', hectare = 1.0)"),
    ];
    for j in 0..k {
        let aid = aid_base + j as i64;
        stmts.push(format!("INSERT ATOM area (aid = {aid})"));
        stmts.push(format!(
            "CONNECT state[sname='{name}'] TO area[aid={aid}] VIA state-area"
        ));
    }
    stmts.push("UPDATE state[sname='contended'] SET hectare = 1.0".to_owned());
    stmts.push("COMMIT".to_owned());
    stmts
}

/// What one pipelined group's responses added up to.
enum GroupOutcome {
    /// COMMIT acknowledged with a commit sequence.
    Committed,
    /// COMMIT answered with a conflict in its pipeline slot; the group
    /// never published and can be retried verbatim.
    Conflicted,
    /// The server died under the burst.
    Transport,
    /// A statement failed that never should (counted as a violation).
    Broken,
}

/// Send `groups` whole transaction groups in ONE pipelined burst (every
/// statement written before any response is read), then classify each
/// group from its in-order response slots.
fn pipeline_groups(client: &mut Client, groups: &[(String, i64)], k: usize) -> Vec<GroupOutcome> {
    let per_group = 4 + 2 * k;
    let mut sent = 0usize;
    for (name, aid_base) in groups {
        for stmt in group_statements(name, *aid_base, k) {
            if client.send_statement(&stmt).is_err() {
                // the write side died: classify what was fully sent as
                // transport losses and stop
                return groups.iter().map(|_| GroupOutcome::Transport).collect();
            }
            sent += 1;
        }
    }
    debug_assert_eq!(sent, groups.len() * per_group);
    let mut outcomes = Vec::with_capacity(groups.len());
    'groups: for _ in groups {
        let mut outcome = None;
        for slot in 0..per_group {
            match client.recv_result() {
                Ok(text) => {
                    // an earlier Broken slot keeps its classification —
                    // a COMMIT after a failed group statement would be a
                    // torn group, not a success
                    if slot == per_group - 1 && outcome.is_none() {
                        outcome = match parse_commit_seq(&text) {
                            Some(_) => Some(GroupOutcome::Committed),
                            None => Some(GroupOutcome::Broken),
                        };
                    }
                }
                Err(e) if e.is_conflict() && slot == per_group - 1 && outcome.is_none() => {
                    outcome = Some(GroupOutcome::Conflicted);
                }
                Err(e) if is_transport(&e) => {
                    outcomes.push(GroupOutcome::Transport);
                    break 'groups;
                }
                Err(_) => {
                    // an unexpected statement failure; drain the group's
                    // remaining slots so the next group stays aligned
                    outcome = Some(GroupOutcome::Broken);
                }
            }
        }
        outcomes.push(outcome.unwrap_or(GroupOutcome::Broken));
    }
    while outcomes.len() < groups.len() {
        outcomes.push(GroupOutcome::Transport);
    }
    outcomes
}

/// Poison-ignoring lock, as in `mad_net::poller`: a panicked holder can
/// only be another workload thread, which already counts as a failure.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The deterministic conflict probe: `probe` opens a transaction around
/// the contended atom, `committer` publishes a competing group, then the
/// probe's pipelined COMMIT must answer with a conflict **in its slot**
/// — and the probe's retry must succeed. Returns observed violations.
fn forced_conflict_probe(
    addr: std::net::SocketAddr,
    k: usize,
    acked: &Mutex<Vec<String>>,
    conflicts: &AtomicUsize,
) -> Result<usize> {
    let mut probe = Client::connect(addr)?;
    let mut committer = Client::connect(addr)?;
    let mut violations = 0usize;

    // the probe opens a transaction and touches the contended atom
    for r in probe.execute_pipelined(&[
        "BEGIN",
        "UPDATE state[sname='contended'] SET hectare = 2.0",
    ])? {
        if r.is_err() {
            violations += 1;
        }
    }
    // a competing group commits while the probe's transaction is open
    match pipeline_groups(&mut committer, &[("wp-0".to_owned(), 900_000)], k).pop() {
        Some(GroupOutcome::Committed) => lock(acked).push("wp-0".to_owned()),
        _ => violations += 1,
    }
    // the probe's COMMIT must now conflict, in order, without killing
    // the connection
    match probe.execute("COMMIT") {
        Err(e) if e.is_conflict() => {
            conflicts.fetch_add(1, Ordering::Relaxed);
        }
        _ => violations += 1,
    }
    // and the probe retries as a full group on the same connection
    match pipeline_groups(&mut probe, &[("wp-1".to_owned(), 900_100)], k).pop() {
        Some(GroupOutcome::Committed) => lock(acked).push("wp-1".to_owned()),
        _ => violations += 1,
    }
    Ok(violations)
}

/// Run the scenario against a fresh durable server at `wal_path` (the
/// file must not exist). The log file is left in its recovered state.
pub fn run_net_pipeline(wal_path: &Path, params: &NetPipelineParams) -> Result<NetPipelineStats> {
    let k = params.areas_per_state;
    let handle = DbHandle::create_durable(mixed_database()?, wal_path, params.fsync)?;
    let server = Server::serve(handle, "127.0.0.1:0")?;
    let addr = server.local_addr();

    let acked: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let conflicts = AtomicUsize::new(0);
    let reads = AtomicUsize::new(0);
    let violations = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let writers_left = AtomicUsize::new(params.connections);

    // deterministic forced conflict before the load phase
    match forced_conflict_probe(addr, k, &acked, &conflicts) {
        Ok(v) => {
            violations.fetch_add(v, Ordering::Relaxed);
        }
        Err(_) => {
            violations.fetch_add(1, Ordering::Relaxed);
        }
    }

    struct Exit<'a>(&'a AtomicUsize);
    impl Drop for Exit<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::AcqRel);
        }
    }

    std::thread::scope(|scope| {
        for w in 0..params.connections {
            let (stop, acked, conflicts, violations, writers_left) =
                (&stop, &acked, &conflicts, &violations, &writers_left);
            scope.spawn(move || {
                let _exit = Exit(writers_left);
                let Ok(mut client) = Client::connect(addr) else {
                    violations.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                // groups yet to commit; conflicted ones go back in line
                let mut todo: std::collections::VecDeque<usize> =
                    (0..params.txns_per_conn).collect();
                while !todo.is_empty() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let burst: Vec<(String, i64)> = todo
                        .iter()
                        .take(params.groups_per_burst)
                        .map(|&i| {
                            let name = format!("w{w}-{i}");
                            let aid_base = ((w * params.txns_per_conn + i) * k) as i64;
                            (name, aid_base)
                        })
                        .collect();
                    let outcomes = pipeline_groups(&mut client, &burst, k);
                    for outcome in outcomes {
                        // check: allow(panic, "pipeline_groups yields at most one outcome per queued group")
                        let group = todo.pop_front().expect("one outcome per queued group");
                        match outcome {
                            GroupOutcome::Committed => {
                                lock(acked).push(format!("w{w}-{group}"));
                            }
                            GroupOutcome::Conflicted => {
                                conflicts.fetch_add(1, Ordering::Relaxed);
                                todo.push_back(group);
                            }
                            GroupOutcome::Transport => return, // the kill
                            GroupOutcome::Broken => {
                                violations.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        for _ in 0..params.readers {
            let (stop, reads, violations) = (&stop, &reads, &violations);
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr) else {
                    violations.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let burst = ["SELECT ALL FROM state-area"; 8];
                while !stop.load(Ordering::Acquire) {
                    match client.execute_pipelined(&burst) {
                        Ok(results) => {
                            for r in results {
                                match r {
                                    Ok(text) if text.contains("molecule(s)") => {
                                        reads.fetch_add(1, Ordering::Relaxed);
                                    }
                                    _ => {
                                        violations.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        Err(e) if is_transport(&e) => break, // the kill
                        Err(_) => {
                            violations.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                    std::thread::yield_now();
                }
            });
        }

        // the killer: once enough commits are acknowledged, pull the plug
        // abruptly — no drain, queued statements die unanswered. With a
        // quota beyond reach the loop instead waits for the writers to
        // finish, making the kill a post-traffic close.
        while lock(&acked).len() < params.kill_after_acks
            && writers_left.load(Ordering::Acquire) > 0
        {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        stop.store(true, Ordering::Release);
        server.kill();
    });

    let acked = acked.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut violation_count = violations.into_inner();

    // recover the WAL and verify the acked prefix with the same checker
    // as the crash scenario: every acked group present and whole, no
    // phantoms, integrity clean
    let handle = DbHandle::open_durable(wal_path, params.fsync)?;
    let info = handle
        .recovery_info()
        .ok_or_else(|| MadError::wal("open_durable recorded no recovery info"))?;
    if (info.commits_replayed as usize) < acked.len() {
        violation_count += 1; // an acknowledged commit was never logged
    }
    violation_count += verify_prefix(&handle, info.commits_replayed, &acked, k);

    Ok(NetPipelineStats {
        acked: acked.len(),
        conflicts: conflicts.into_inner(),
        reads: reads.into_inner(),
        survived: info.commits_replayed,
        violations: violation_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(tag: &str, params: &NetPipelineParams) -> NetPipelineStats {
        let dir = std::env::temp_dir().join(format!(
            "mad-netpipe-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mad.wal");
        let stats = run_net_pipeline(&path, params).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        stats
    }

    #[test]
    fn pipelined_load_with_kill_preserves_the_acked_prefix() {
        let stats = scenario("kill", &NetPipelineParams::default());
        assert_eq!(stats.violations, 0, "{stats:?}");
        assert!(stats.acked >= 12, "the kill fired too early: {stats:?}");
        assert!(stats.conflicts >= 1, "the forced conflict never fired: {stats:?}");
        assert!(stats.survived >= stats.acked as u64, "{stats:?}");
    }

    #[test]
    fn full_run_without_kill_commits_every_group() {
        let params = NetPipelineParams {
            connections: 2,
            readers: 1,
            txns_per_conn: 4,
            groups_per_burst: 2,
            kill_after_acks: usize::MAX,
            ..NetPipelineParams::default()
        };
        let stats = scenario("full", &params);
        assert_eq!(stats.violations, 0, "{stats:?}");
        // every writer group commits, plus the two probe groups
        assert_eq!(stats.acked, 2 * 4 + 2, "{stats:?}");
        assert_eq!(stats.survived, stats.acked as u64, "{stats:?}");
        assert!(stats.conflicts >= 1, "{stats:?}");
    }
}
