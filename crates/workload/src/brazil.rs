//! The geographic database of Fig. 1 / Fig. 4 — Brazil, hand-built.
//!
//! Schema (the MAD diagram of Fig. 1):
//!
//! ```text
//!   state ─ state-area ─ area ─ area-edge ─ edge ─ edge-point ─ point
//!   river ─ river-net  ─ net  ─ net-edge  ─ edge
//!   city  ─ city-point ─ point
//! ```
//!
//! Occurrence (the atom networks): the ten states named in Fig. 1
//! (MG, BA, GO, MS, ES, RJ, SP, PR, SC, RS), three rivers (Paraná,
//! Amazonas, Uruguai) and a handful of cities over a shared substrate of
//! edges and points. Sharing is wired exactly as the paper tells it:
//! *"the river Parana shares with the states Minas Gerais, Sao Paulo, and
//! Parana some edge and point tuples — representing in one case the course
//! of the river and in another case the border of the states"*.

use mad_model::{AtomId, AtomTypeId, AttrType, LinkTypeId, Result, SchemaBuilder, Value};
use mad_storage::Database;

/// Handles into the Brazil database (type/link ids plus landmark atoms).
#[derive(Clone, Debug)]
pub struct BrazilHandles {
    /// `state` atom type.
    pub state: AtomTypeId,
    /// `river` atom type.
    pub river: AtomTypeId,
    /// `city` atom type.
    pub city: AtomTypeId,
    /// `area` atom type.
    pub area: AtomTypeId,
    /// `net` atom type.
    pub net: AtomTypeId,
    /// `edge` atom type.
    pub edge: AtomTypeId,
    /// `point` atom type.
    pub point: AtomTypeId,
    /// Link types in schema order: state-area, river-net, city-point,
    /// area-edge, net-edge, edge-point.
    pub links: Vec<LinkTypeId>,
    /// The Paraná river atom.
    pub parana_river: AtomId,
    /// The São Paulo state atom.
    pub sao_paulo: AtomId,
    /// The Minas Gerais state atom.
    pub minas_gerais: AtomId,
    /// Edges shared between the Paraná's net and state borders.
    pub shared_edges: Vec<AtomId>,
}

/// The ten states of Fig. 1 with (abbreviation, full name, hectare).
pub const STATES: [(&str, &str, f64); 10] = [
    ("MG", "Minas Gerais", 900.0),
    ("BA", "Bahia", 1100.0),
    ("GO", "Goias", 700.0),
    ("MS", "Mato Grosso do Sul", 800.0),
    ("ES", "Espirito Santo", 200.0),
    ("RJ", "Rio de Janeiro", 300.0),
    ("SP", "Sao Paulo", 1000.0),
    ("PR", "Parana", 600.0),
    ("SC", "Santa Catarina", 400.0),
    ("RS", "Rio Grande do Sul", 500.0),
];

/// The rivers of Fig. 4.
pub const RIVERS: [&str; 3] = ["Parana", "Amazonas", "Uruguai"];

/// Cities placed on the map.
pub const CITIES: [(&str, i64); 5] = [
    ("Sao Paulo", 12000),
    ("Belo Horizonte", 2500),
    ("Curitiba", 1900),
    ("Rio de Janeiro", 6700),
    ("Porto Alegre", 1400),
];

/// Build the Fig. 1/4 database.
pub fn brazil_database() -> Result<(Database, BrazilHandles)> {
    let schema = SchemaBuilder::new()
        .atom_type(
            "state",
            &[
                ("sname", AttrType::Text),
                ("fullname", AttrType::Text),
                ("hectare", AttrType::Float),
            ],
        )
        .atom_type(
            "river",
            &[("rname", AttrType::Text), ("length", AttrType::Float)],
        )
        .atom_type(
            "city",
            &[("cname", AttrType::Text), ("population", AttrType::Int)],
        )
        .atom_type("area", &[("aid", AttrType::Int)])
        .atom_type("net", &[("nid", AttrType::Int)])
        .atom_type("edge", &[("eid", AttrType::Int)])
        .atom_type(
            "point",
            &[
                ("pname", AttrType::Text),
                ("x", AttrType::Float),
                ("y", AttrType::Float),
            ],
        )
        .link_type("state-area", "state", "area")
        .link_type("river-net", "river", "net")
        .link_type("city-point", "city", "point")
        .link_type("area-edge", "area", "edge")
        .link_type("net-edge", "net", "edge")
        .link_type("edge-point", "edge", "point")
        .build()?;
    let mut db = Database::new(schema);
    let state = db.schema().atom_type_id("state")?;
    let river = db.schema().atom_type_id("river")?;
    let city = db.schema().atom_type_id("city")?;
    let area = db.schema().atom_type_id("area")?;
    let net = db.schema().atom_type_id("net")?;
    let edge = db.schema().atom_type_id("edge")?;
    let point = db.schema().atom_type_id("point")?;
    let sa = db.schema().link_type_id("state-area")?;
    let rn = db.schema().link_type_id("river-net")?;
    let cp = db.schema().link_type_id("city-point")?;
    let ae = db.schema().link_type_id("area-edge")?;
    let ne = db.schema().link_type_id("net-edge")?;
    let ep = db.schema().link_type_id("edge-point")?;

    // ---- points: a 10×4 grid, named p0…p39 -------------------------------
    let mut points = Vec::new();
    for i in 0..40i64 {
        let (x, y) = ((i % 10) as f64, (i / 10) as f64);
        points.push(db.insert_atom(
            point,
            vec![
                Value::Text(format!("p{i}")),
                Value::Float(x),
                Value::Float(y),
            ],
        )?);
    }
    // ---- edges: each edge connects two neighbouring grid points ----------
    // 4 border edges per state (a small closed loop region per state) plus
    // dedicated river-course edges; shared edges are created below.
    let mut edges = Vec::new();
    let mut eid = 0i64;
    let mut new_edge = |db: &mut Database, a: AtomId, b: AtomId| -> Result<AtomId> {
        let e = db.insert_atom(edge, vec![Value::Int(eid)])?;
        eid += 1;
        db.connect(ep, e, a)?;
        db.connect(ep, e, b)?;
        Ok(e)
    };

    // ---- states with their areas and border edges ------------------------
    let mut state_atoms = Vec::new();
    let mut area_atoms = Vec::new();
    for (i, (abbr, full, hect)) in STATES.iter().enumerate() {
        let s = db.insert_atom(
            state,
            vec![
                Value::Text((*abbr).to_owned()),
                Value::Text((*full).to_owned()),
                Value::Float(*hect),
            ],
        )?;
        let a = db.insert_atom(area, vec![Value::Int(i as i64)])?;
        db.connect(sa, s, a)?;
        // four border edges over four consecutive grid points
        let base = (i * 4) % 36;
        let quad = [
            points[base],
            points[base + 1],
            points[base + 2],
            points[base + 3],
        ];
        for w in 0..4 {
            let e = new_edge(&mut db, quad[w], quad[(w + 1) % 4])?;
            db.connect(ae, a, e)?;
            edges.push(e);
        }
        state_atoms.push(s);
        area_atoms.push(a);
    }

    // ---- rivers with nets; the Paraná shares edges with MG, SP, PR -------
    let mut shared_edges = Vec::new();
    let mut river_atoms = Vec::new();
    for (ri, rname) in RIVERS.iter().enumerate() {
        let r = db.insert_atom(
            river,
            vec![
                Value::Text((*rname).to_owned()),
                Value::Float(1000.0 + 500.0 * ri as f64),
            ],
        )?;
        let n = db.insert_atom(net, vec![Value::Int(ri as i64)])?;
        db.connect(rn, r, n)?;
        if ri == 0 {
            // Paraná: its course *is* (part of) the border of MG, SP, PR —
            // share one existing border edge of each (indices into `edges`:
            // state i owns edges 4i..4i+4; MG=0, SP=6, PR=7)
            for &si in &[0usize, 6, 7] {
                let shared = edges[si * 4];
                db.connect(ne, n, shared)?;
                shared_edges.push(shared);
            }
            // plus one private course edge
            let e = new_edge(&mut db, points[36], points[37])?;
            db.connect(ne, n, e)?;
        } else {
            // other rivers: private course edges only
            for k in 0..3 {
                let e = new_edge(&mut db, points[36 + k], points[37 + k])?;
                db.connect(ne, n, e)?;
            }
        }
        river_atoms.push(r);
    }

    // ---- cities on points -------------------------------------------------
    for (ci, (cname, pop)) in CITIES.iter().enumerate() {
        let c = db.insert_atom(
            city,
            vec![Value::Text((*cname).to_owned()), Value::Int(*pop)],
        )?;
        db.connect(cp, c, points[ci * 7])?;
    }

    let handles = BrazilHandles {
        state,
        river,
        city,
        area,
        net,
        edge,
        point,
        links: vec![sa, rn, cp, ae, ne, ep],
        parana_river: river_atoms[0],
        sao_paulo: state_atoms[6],
        minas_gerais: state_atoms[0],
        shared_edges,
    };
    Ok((db, handles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_core::derive::{derive_molecules, DeriveOptions};
    use mad_core::structure::path;

    #[test]
    fn builds_with_integrity() {
        let (db, h) = brazil_database().unwrap();
        assert!(db.audit_referential_integrity().is_empty());
        assert_eq!(db.atom_count(h.state), 10);
        assert_eq!(db.atom_count(h.river), 3);
        assert_eq!(db.atom_count(h.city), 5);
        assert!(db.atom_count(h.edge) >= 40);
        assert_eq!(db.atom_count(h.point), 40);
    }

    #[test]
    fn parana_shares_edges_with_three_states() {
        let (db, h) = brazil_database().unwrap();
        // every shared edge is linked to both a net and an area
        let ne = db.schema().link_type_id("net-edge").unwrap();
        let ae = db.schema().link_type_id("area-edge").unwrap();
        assert_eq!(h.shared_edges.len(), 3);
        for &e in &h.shared_edges {
            assert_eq!(db.link_store(ne).partners_bwd(e).len(), 1, "on the river net");
            assert_eq!(db.link_store(ae).partners_bwd(e).len(), 1, "on a state border");
        }
    }

    #[test]
    fn mt_state_molecules_match_fig2() {
        let (db, h) = brazil_database().unwrap();
        let md = path(db.schema(), &["state", "area", "edge", "point"]).unwrap();
        let ms = derive_molecules(&db, &md, &DeriveOptions::default()).unwrap();
        assert_eq!(ms.len(), 10, "one molecule per state");
        // each state has 1 area, 4 edges, 4 points
        for m in &ms {
            assert_eq!(m.atoms_at(1).len(), 1);
            assert_eq!(m.atoms_at(2).len(), 4);
            assert_eq!(m.atoms_at(3).len(), 4);
        }
        let _ = h;
    }

    #[test]
    fn point_neighborhood_reaches_rivers_and_states() {
        use mad_core::structure::StructureBuilder;
        let (db, h) = brazil_database().unwrap();
        let md = StructureBuilder::new(db.schema())
            .node("point")
            .node("edge")
            .node("area")
            .node("state")
            .node("net")
            .node("river")
            .edge("point", "edge")
            .edge("edge", "area")
            .edge("area", "state")
            .edge("edge", "net")
            .edge("net", "river")
            .build()
            .unwrap();
        // a point on a shared Paraná/MG edge sees both the state and the river
        let ep = db.schema().link_type_id("edge-point").unwrap();
        let some_shared_point = db.link_store(ep).partners_fwd(h.shared_edges[0])[0];
        let m = mad_core::derive::derive_one(&db, &md, some_shared_point).unwrap();
        assert!(!m.atoms_at(3).is_empty(), "reaches a state");
        assert!(!m.atoms_at(5).is_empty(), "reaches the Paraná");
        assert!(m.contains_atom(h.parana_river));
    }
}
