//! VLSI cell-library generator — the design-application motivation of the
//! paper (\[BB84\]'s "molecular objects" framework was born from VLSI CAD).
//!
//! Schema:
//!
//! ```text
//!   cell ─ cell-inst ─ inst ─ inst-of   ─ cell     (instance-of, reused cells!)
//!   cell ─ cell-net  ─ net  ─ net-pin   ─ pin
//!   inst ─ inst-pin  ─ pin                         (pins bind nets to instances)
//! ```
//!
//! A cell at level *l* instantiates cells of level *l−1*; library cells are
//! instantiated by **many** parents — exactly the shared-subobject pattern
//! (a NAND gate's definition is one object, no matter how many instances
//! exist). `inst-of` makes the schema a *network*, not a tree: `cell` is
//! reachable from `inst` both as owner and as definition, and the paper's
//! symmetric links let queries use either view.

use mad_model::{AtomId, AtomTypeId, AttrType, LinkTypeId, Result, SchemaBuilder, Value};
use mad_storage::Database;
use crate::rng::StdRng;

/// Parameters of the VLSI generator.
#[derive(Clone, Debug)]
pub struct VlsiParams {
    /// Hierarchy levels (level 0 = leaf library cells).
    pub levels: usize,
    /// Cells per level.
    pub cells_per_level: usize,
    /// Instances per (non-leaf) cell.
    pub insts_per_cell: usize,
    /// Nets per cell.
    pub nets_per_cell: usize,
    /// Pins per net.
    pub pins_per_net: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VlsiParams {
    fn default() -> Self {
        VlsiParams {
            levels: 3,
            cells_per_level: 8,
            insts_per_cell: 6,
            nets_per_cell: 4,
            pins_per_net: 3,
            seed: 42,
        }
    }
}

/// Handles into the generated design database.
#[derive(Clone, Debug)]
pub struct VlsiHandles {
    /// `cell` atom type.
    pub cell: AtomTypeId,
    /// `inst` atom type.
    pub inst: AtomTypeId,
    /// `net` atom type.
    pub net: AtomTypeId,
    /// `pin` atom type.
    pub pin: AtomTypeId,
    /// `cell-inst` link type (cell owns instance).
    pub cell_inst: LinkTypeId,
    /// `inst-of` link type (instance of definition cell).
    pub inst_of: LinkTypeId,
    /// `cell-net` link type.
    pub cell_net: LinkTypeId,
    /// `net-pin` link type.
    pub net_pin: LinkTypeId,
    /// `inst-pin` link type.
    pub inst_pin: LinkTypeId,
    /// The top-level cells.
    pub top_cells: Vec<AtomId>,
}

/// Generate a VLSI design library.
pub fn generate_vlsi(params: &VlsiParams) -> Result<(Database, VlsiHandles)> {
    let schema = SchemaBuilder::new()
        .atom_type(
            "cell",
            &[("cname", AttrType::Text), ("level", AttrType::Int)],
        )
        .atom_type("inst", &[("iname", AttrType::Text)])
        .atom_type("net", &[("nname", AttrType::Text)])
        .atom_type(
            "pin",
            &[("pname", AttrType::Text), ("dirn", AttrType::Text)],
        )
        .link_type("cell-inst", "cell", "inst")
        .link_type("inst-of", "inst", "cell")
        .link_type("cell-net", "cell", "net")
        .link_type("net-pin", "net", "pin")
        .link_type("inst-pin", "inst", "pin")
        .build()?;
    let mut db = Database::new(schema);
    let h_cell = db.schema().atom_type_id("cell")?;
    let h_inst = db.schema().atom_type_id("inst")?;
    let h_net = db.schema().atom_type_id("net")?;
    let h_pin = db.schema().atom_type_id("pin")?;
    let l_ci = db.schema().link_type_id("cell-inst")?;
    let l_io = db.schema().link_type_id("inst-of")?;
    let l_cn = db.schema().link_type_id("cell-net")?;
    let l_np = db.schema().link_type_id("net-pin")?;
    let l_ip = db.schema().link_type_id("inst-pin")?;
    let mut rng = StdRng::seed_from_u64(params.seed);

    let mut levels: Vec<Vec<AtomId>> = Vec::with_capacity(params.levels);
    for level in 0..params.levels {
        let mut cells = Vec::with_capacity(params.cells_per_level);
        for i in 0..params.cells_per_level {
            let c = db.insert_atom(
                h_cell,
                vec![
                    Value::Text(format!("cell_{level}_{i}")),
                    Value::Int(level as i64),
                ],
            )?;
            cells.push(c);
        }
        levels.push(cells);
    }
    // instances + nets + pins for every non-leaf cell
    for level in 1..params.levels {
        for (ci, &c) in levels[level].clone().iter().enumerate() {
            let mut insts = Vec::with_capacity(params.insts_per_cell);
            for k in 0..params.insts_per_cell {
                let inst = db.insert_atom(
                    h_inst,
                    vec![Value::Text(format!("i_{level}_{ci}_{k}"))],
                )?;
                db.connect(l_ci, c, inst)?;
                // shared definition cell from the level below
                let def = levels[level - 1][rng.gen_range(0..levels[level - 1].len())];
                db.connect(l_io, inst, def)?;
                insts.push(inst);
            }
            for n in 0..params.nets_per_cell {
                let net = db.insert_atom(
                    h_net,
                    vec![Value::Text(format!("n_{level}_{ci}_{n}"))],
                )?;
                db.connect(l_cn, c, net)?;
                for p in 0..params.pins_per_net {
                    let pin = db.insert_atom(
                        h_pin,
                        vec![
                            Value::Text(format!("p_{level}_{ci}_{n}_{p}")),
                            Value::Text(if p == 0 { "out" } else { "in" }.to_owned()),
                        ],
                    )?;
                    db.connect(l_np, net, pin)?;
                    // bind the pin to one of the cell's instances
                    let inst = insts[rng.gen_range(0..insts.len())];
                    db.connect(l_ip, inst, pin)?;
                }
            }
        }
    }
    let top_cells = levels.last().cloned().unwrap_or_default();
    Ok((
        db,
        VlsiHandles {
            cell: h_cell,
            inst: h_inst,
            net: h_net,
            pin: h_pin,
            cell_inst: l_ci,
            inst_of: l_io,
            cell_net: l_cn,
            net_pin: l_np,
            inst_pin: l_ip,
            top_cells,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_core::derive::derive_one;
    use mad_core::structure::StructureBuilder;

    #[test]
    fn generates_with_integrity() {
        let p = VlsiParams::default();
        let (db, h) = generate_vlsi(&p).unwrap();
        assert!(db.audit_referential_integrity().is_empty());
        assert_eq!(db.atom_count(h.cell), p.levels * p.cells_per_level);
        assert!(db.atom_count(h.inst) > 0);
        assert!(db.atom_count(h.pin) > 0);
        assert_eq!(h.top_cells.len(), p.cells_per_level);
    }

    #[test]
    fn library_cells_are_shared_definitions() {
        let (db, h) = generate_vlsi(&VlsiParams::default()).unwrap();
        // some level-0 cell is the definition of several instances
        let max_uses = db
            .atom_ids_of(h.cell)
            .into_iter()
            .map(|c| db.link_store(h.inst_of).partners_bwd(c).len())
            .max()
            .unwrap();
        assert!(max_uses >= 2, "expected shared library cells, max={max_uses}");
    }

    #[test]
    fn cell_explosion_molecule() {
        // cell → inst → definition cell: the design-hierarchy molecule
        let (db, h) = generate_vlsi(&VlsiParams::default()).unwrap();
        let md = StructureBuilder::new(db.schema())
            .node_as("top", "cell")
            .node("inst")
            .node_as("def", "cell")
            .edge_named("cell-inst", "top", "inst")
            .edge_named("inst-of", "inst", "def")
            .build()
            .unwrap();
        let m = derive_one(&db, &md, h.top_cells[0]).unwrap();
        assert_eq!(m.atoms_at(1).len(), 6, "six instances");
        assert!(!m.atoms_at(2).is_empty(), "definition cells reached");
    }

    #[test]
    fn net_pin_molecules() {
        let (db, h) = generate_vlsi(&VlsiParams::default()).unwrap();
        let md = StructureBuilder::new(db.schema())
            .node("cell")
            .node("net")
            .node("pin")
            .node("inst")
            .edge_named("cell-net", "cell", "net")
            .edge_named("net-pin", "net", "pin")
            .edge_named("inst-pin", "pin", "inst")
            .build()
            .unwrap();
        let m = derive_one(&db, &md, h.top_cells[0]).unwrap();
        assert_eq!(m.atoms_at(1).len(), 4, "four nets");
        assert_eq!(m.atoms_at(2).len(), 12, "3 pins per net");
        assert!(!m.atoms_at(3).is_empty());
    }
}
