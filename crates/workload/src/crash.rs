//! Crash-recovery scenario: run the [`mixed`](crate::mixed) workload over
//! a **durable** handle, kill the process image at a random WAL record
//! boundary (optionally plus a torn partial record), reopen, and verify
//! the recovered state is exactly the logged commit prefix.
//!
//! The "kill" is simulated by abandoning the handle without any shutdown
//! step and truncating the log file the way a crash would leave it: a
//! whole number of commit records plus, optionally, a torn tail of the
//! next one. Because mixed-workload transactions are atomic groups (one
//! `state`, `areas_per_state` connected `area`s, one contended-counter
//! bump), prefix consistency is sharply checkable: after recovering `k`
//! commits the database must hold exactly `k` complete groups and the
//! counter must read exactly `k` — any torn group, lost group or replayed
//! half-group breaks one of the counts.

use crate::mixed::{mixed_database, run_mixed, MixedParams};
use crate::rng::StdRng;
use mad_model::{AtomId, MadError, Result, Value};
use mad_txn::{DbHandle, FsyncPolicy};
use mad_wal::frame_boundaries;
use std::path::Path;

/// Parameters of the crash-recovery scenario.
#[derive(Clone, Copy, Debug)]
pub struct CrashParams {
    /// The mixed read/write workload to run before the crash.
    pub mixed: MixedParams,
    /// Fsync policy of the durable handle.
    pub fsync: FsyncPolicy,
    /// Also tear the record *after* the cut (leave a random strict prefix
    /// of its bytes), exercising torn-tail truncation on top of the
    /// boundary cut.
    pub tear_tail: bool,
    /// Seed for choosing the cut point.
    pub seed: u64,
}

impl Default for CrashParams {
    fn default() -> Self {
        CrashParams {
            mixed: MixedParams::default(),
            fsync: FsyncPolicy::Group,
            tear_tail: true,
            seed: 4242,
        }
    }
}

/// Outcome of one [`run_crash_recovery`] execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrashStats {
    /// Transactions the pre-crash workload committed.
    pub commits: usize,
    /// First-committer-wins conflicts it retried through.
    pub conflicts: usize,
    /// Commit records surviving the simulated crash cut.
    pub survived: u64,
    /// Bytes of torn tail recovery truncated.
    pub truncated_bytes: u64,
    /// Prefix-consistency violations in the recovered state (must be 0).
    pub violations: usize,
}

/// Run the scenario: mixed workload over a fresh durable handle at
/// `wal_path` (the file must not exist), simulated crash at a random
/// record boundary, recovery, invariant verification. The log file is
/// left at `wal_path` in its post-recovery state.
pub fn run_crash_recovery(wal_path: &Path, params: &CrashParams) -> Result<CrashStats> {
    let handle = DbHandle::create_durable(mixed_database()?, wal_path, params.fsync)?;
    let mixed_stats = run_mixed(&handle, &params.mixed)?;
    if mixed_stats.inconsistencies != 0 {
        return Err(MadError::wal(format!(
            "mixed workload violated isolation invariants pre-crash: {mixed_stats:?}"
        )));
    }
    // the crash: no shutdown, no checkpoint — the handle is simply gone
    drop(handle);

    // cut the log at a random record boundary, optionally tearing a strict
    // prefix of the following record onto the end; the cut applies to the
    // ACTIVE segment — the only file a real crash can tear
    let seg_path = mad_wal::active_segment_path(wal_path)?;
    let full = std::fs::read(&seg_path).map_err(|e| MadError::wal(format!("read log: {e}")))?;
    let boundaries = frame_boundaries(&full);
    if boundaries.is_empty() {
        return Err(MadError::wal("log has no complete record"));
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let cut_index = rng.gen_range(0..boundaries.len()); // 0 = bootstrap only
    let cut = boundaries[cut_index];
    let mut image = full[..cut].to_vec();
    if params.tear_tail && cut < full.len() {
        let next_len = boundaries
            .get(cut_index + 1)
            .map(|&b| b - cut)
            .unwrap_or(full.len() - cut);
        if next_len > 1 {
            let torn = 1 + rng.gen_range(0..next_len - 1);
            image.extend_from_slice(&full[cut..cut + torn]);
        }
    }
    let torn_bytes = (image.len() - cut) as u64;
    std::fs::write(&seg_path, &image).map_err(|e| MadError::wal(format!("cut log: {e}")))?;

    // recover and verify the prefix invariants
    let handle = DbHandle::open_durable(wal_path, params.fsync)?;
    let info = handle
        .recovery_info()
        .expect("open_durable always records recovery info");
    let mut violations = 0usize;
    if info.truncated_bytes != torn_bytes {
        violations += 1;
    }
    if info.commits_replayed != cut_index as u64 {
        violations += 1;
    }
    violations += verify_prefix(&handle, info.commits_replayed, params.mixed.areas_per_state);

    Ok(CrashStats {
        commits: mixed_stats.commits,
        conflicts: mixed_stats.conflicts,
        survived: info.commits_replayed,
        truncated_bytes: info.truncated_bytes,
        violations,
    })
}

/// Check that the recovered state is exactly `k` committed mixed-workload
/// groups: counts, links, the contended counter, referential integrity.
/// Returns the number of violated invariants.
fn verify_prefix(handle: &DbHandle, k: u64, areas_per_state: usize) -> usize {
    let db = handle.committed();
    let mut violations = 0usize;
    let state = db.schema().atom_type_id("state").expect("mixed schema");
    let area = db.schema().atom_type_id("area").expect("mixed schema");
    let sa = db.schema().link_type_id("state-area").expect("mixed schema");
    let k = k as usize;
    if db.atom_count(state) != 1 + k {
        violations += 1; // a group vanished or half-appeared
    }
    if db.atom_count(area) != k * areas_per_state {
        violations += 1;
    }
    if db.link_count(sa) != k * areas_per_state {
        violations += 1;
    }
    // the contended counter counts commits; a lost or doubled replay of
    // any surviving commit would show up here
    let counter = db
        .atom_value(AtomId::new(state, 0), 1)
        .expect("contended state");
    if counter != &Value::Float(k as f64) {
        violations += 1;
    }
    if !db.audit_referential_integrity().is_empty() {
        violations += 1;
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(seed: u64, fsync: FsyncPolicy) -> CrashStats {
        let dir = std::env::temp_dir().join(format!(
            "mad-crash-{seed}-{fsync:?}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mad.wal");
        let params = CrashParams {
            mixed: MixedParams {
                readers: 1,
                writers: 2,
                txns_per_writer: 8,
                areas_per_state: 3,
                seed,
            },
            fsync,
            tear_tail: true,
            seed: seed ^ 0xDEAD_BEEF,
        };
        let stats = run_crash_recovery(&path, &params).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        stats
    }

    #[test]
    fn recovery_lands_on_a_consistent_prefix() {
        for seed in [1u64, 2, 3, 4, 5] {
            let stats = scenario(seed, FsyncPolicy::Group);
            assert_eq!(stats.commits, 16);
            assert_eq!(
                stats.violations, 0,
                "seed {seed} recovered inconsistently: {stats:?}"
            );
            assert!(stats.survived <= stats.commits as u64);
        }
    }

    #[test]
    fn recovery_holds_under_per_commit_fsync_too() {
        let stats = scenario(77, FsyncPolicy::PerCommit);
        assert_eq!(stats.violations, 0, "{stats:?}");
    }
}
