#![forbid(unsafe_code)]

//! # mad-workload — fixtures and workload generators
//!
//! * [`brazil`] — the hand-built geographic database of Fig. 1/2/4: Brazil's
//!   states, rivers and cities over a shared geometric substrate of points,
//!   edges, areas and nets. The Paraná shares border edges with the states
//!   Minas Gerais, São Paulo and Paraná, exactly as §2 describes.
//! * [`geo`] — a seeded synthetic geography with tunable size and sharing
//!   degree (benchmarks B1/B3/B4/B7).
//! * [`bom`] — bill-of-material DAGs over a reflexive `composition` link
//!   type with tunable depth/fan-out/sharing (benchmarks B2/B5, the §3.1
//!   and §5 example).
//! * [`vlsi`] — a VLSI cell library (cells, instances, nets, pins), the
//!   design-application workload of the paper's motivation (\[BB84\]).
//! * [`mixed`] — the concurrent mixed read/write scenario: N reader + M
//!   writer threads over one shared `mad_txn::DbHandle`, with the
//!   isolation invariants verified online (benchmark B8).
//! * [`crash`] — the crash-recovery scenario: the mixed workload over a
//!   *durable* handle, a simulated kill at a random WAL record boundary,
//!   then recovery with prefix-consistency verification (benchmark B9's
//!   correctness twin).
//! * [`net`] — the networked crash scenario: TCP clients against a
//!   durable [`mad_net::Server`], a kill mid-traffic, a WAL cut, restart,
//!   and acked-prefix verification over the wire.
//! * [`pipeline`] — the pipelining stress scenario: connections keeping
//!   whole transaction groups in flight, a deterministic forced conflict
//!   answered in pipeline order, an abrupt mid-burst server kill, and
//!   the same acked-prefix verification.
//! * [`failover`] — the replication failover scenario: the network
//!   workload against a primary streaming to sync-quorum standbys under
//!   fault injection, a mid-traffic kill, standby promotion, and
//!   acked-prefix verification on the promoted node.

pub mod bom;
pub mod brazil;
pub mod crash;
pub mod failover;
pub mod geo;
pub mod mixed;
pub mod net;
pub mod pipeline;
pub mod rng;
pub mod vlsi;

pub use bom::{generate_bom, BomParams};
pub use brazil::{brazil_database, BrazilHandles};
pub use crash::{run_crash_recovery, CrashParams, CrashStats};
pub use failover::{run_failover, FailoverParams, FailoverStats};
pub use geo::{generate_geo, GeoParams};
pub use mixed::{mixed_database, run_mixed, MixedParams, MixedStats};
pub use net::{run_net_crash, NetCrashParams, NetCrashStats};
pub use pipeline::{run_net_pipeline, NetPipelineParams, NetPipelineStats};
pub use vlsi::{generate_vlsi, VlsiParams};
