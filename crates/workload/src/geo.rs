//! Synthetic geography generator (benchmarks B1/B3/B4/B7).
//!
//! Scales the Fig. 1 schema to arbitrary sizes with a tunable **sharing
//! degree**: the fraction of each river's course edges that are borrowed
//! from state borders instead of being private. `share = 0` produces fully
//! disjoint complex objects (the case hierarchical models handle);
//! `share → 1` produces heavily overlapping molecules — the regime the MAD
//! model was built for.

use mad_model::{AtomId, AtomTypeId, AttrType, Result, SchemaBuilder, Value};
use mad_storage::Database;
use crate::rng::StdRng;

/// Parameters of the synthetic geography.
#[derive(Clone, Debug)]
pub struct GeoParams {
    /// Number of states.
    pub states: usize,
    /// Border edges per state.
    pub edges_per_state: usize,
    /// Number of rivers.
    pub rivers: usize,
    /// Course edges per river.
    pub edges_per_river: usize,
    /// Fraction (0..=1) of river edges shared with state borders.
    pub share: f64,
    /// Points per edge is fixed at 2; this many extra cities are placed.
    pub cities: usize,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
}

impl Default for GeoParams {
    fn default() -> Self {
        GeoParams {
            states: 20,
            edges_per_state: 8,
            rivers: 5,
            edges_per_river: 12,
            share: 0.5,
            cities: 10,
            seed: 42,
        }
    }
}

/// Type handles for the generated database.
#[derive(Clone, Copy, Debug)]
pub struct GeoHandles {
    /// `state` atom type.
    pub state: AtomTypeId,
    /// `river` atom type.
    pub river: AtomTypeId,
    /// `city` atom type.
    pub city: AtomTypeId,
    /// `area` atom type.
    pub area: AtomTypeId,
    /// `net` atom type.
    pub net: AtomTypeId,
    /// `edge` atom type.
    pub edge: AtomTypeId,
    /// `point` atom type.
    pub point: AtomTypeId,
}

/// Generate a synthetic geography.
pub fn generate_geo(params: &GeoParams) -> Result<(Database, GeoHandles)> {
    let schema = SchemaBuilder::new()
        .atom_type(
            "state",
            &[("sname", AttrType::Text), ("hectare", AttrType::Float)],
        )
        .atom_type(
            "river",
            &[("rname", AttrType::Text), ("length", AttrType::Float)],
        )
        .atom_type(
            "city",
            &[("cname", AttrType::Text), ("population", AttrType::Int)],
        )
        .atom_type("area", &[("aid", AttrType::Int)])
        .atom_type("net", &[("nid", AttrType::Int)])
        .atom_type("edge", &[("eid", AttrType::Int)])
        .atom_type(
            "point",
            &[("x", AttrType::Float), ("y", AttrType::Float)],
        )
        .link_type("state-area", "state", "area")
        .link_type("river-net", "river", "net")
        .link_type("city-point", "city", "point")
        .link_type("area-edge", "area", "edge")
        .link_type("net-edge", "net", "edge")
        .link_type("edge-point", "edge", "point")
        .build()?;
    let mut db = Database::new(schema);
    let h = GeoHandles {
        state: db.schema().atom_type_id("state")?,
        river: db.schema().atom_type_id("river")?,
        city: db.schema().atom_type_id("city")?,
        area: db.schema().atom_type_id("area")?,
        net: db.schema().atom_type_id("net")?,
        edge: db.schema().atom_type_id("edge")?,
        point: db.schema().atom_type_id("point")?,
    };
    let sa = db.schema().link_type_id("state-area")?;
    let rn = db.schema().link_type_id("river-net")?;
    let cp = db.schema().link_type_id("city-point")?;
    let ae = db.schema().link_type_id("area-edge")?;
    let ne = db.schema().link_type_id("net-edge")?;
    let ep = db.schema().link_type_id("edge-point")?;
    let mut rng = StdRng::seed_from_u64(params.seed);

    // shared pool of points: 2 per (maximum possible) edge, reused across
    // neighbouring edges with 50% probability to create point sharing
    let total_edges = params.states * params.edges_per_state
        + params.rivers * params.edges_per_river;
    let mut points: Vec<AtomId> = Vec::with_capacity(total_edges + 1);
    for _ in 0..(total_edges + 1) {
        points.push(db.insert_atom(
            h.point,
            vec![
                Value::Float(rng.gen_range(0.0..100.0)),
                Value::Float(rng.gen_range(0.0..100.0)),
            ],
        )?);
    }

    let mut eid = 0i64;
    let mut border_edges: Vec<AtomId> = Vec::new();
    for si in 0..params.states {
        let s = db.insert_atom(
            h.state,
            vec![
                Value::Text(format!("S{si}")),
                Value::Float(rng.gen_range(100.0..2000.0)),
            ],
        )?;
        let a = db.insert_atom(h.area, vec![Value::Int(si as i64)])?;
        db.connect(sa, s, a)?;
        for k in 0..params.edges_per_state {
            let e = db.insert_atom(h.edge, vec![Value::Int(eid)])?;
            eid += 1;
            db.connect(ae, a, e)?;
            // chain points around the border loop (point sharing between
            // consecutive edges)
            let p1 = points[(si * params.edges_per_state + k) % points.len()];
            let p2 = points[(si * params.edges_per_state + k + 1) % points.len()];
            db.connect(ep, e, p1)?;
            if p2 != p1 {
                db.connect(ep, e, p2)?;
            }
            border_edges.push(e);
        }
    }

    for ri in 0..params.rivers {
        let r = db.insert_atom(
            h.river,
            vec![
                Value::Text(format!("R{ri}")),
                Value::Float(rng.gen_range(100.0..5000.0)),
            ],
        )?;
        let n = db.insert_atom(h.net, vec![Value::Int(ri as i64)])?;
        db.connect(rn, r, n)?;
        for _ in 0..params.edges_per_river {
            if !border_edges.is_empty() && rng.gen_bool(params.share.clamp(0.0, 1.0)) {
                // shared subobject: the river's course reuses a border edge
                let e = border_edges[rng.gen_range(0..border_edges.len())];
                // net-edge links are a set; re-picking the same edge is a no-op
                db.connect(ne, n, e)?;
            } else {
                let e = db.insert_atom(h.edge, vec![Value::Int(eid)])?;
                eid += 1;
                db.connect(ne, n, e)?;
                let p1 = points[rng.gen_range(0..points.len())];
                let p2 = points[rng.gen_range(0..points.len())];
                db.connect(ep, e, p1)?;
                if p2 != p1 {
                    db.connect(ep, e, p2)?;
                }
            }
        }
    }

    for ci in 0..params.cities {
        let c = db.insert_atom(
            h.city,
            vec![
                Value::Text(format!("C{ci}")),
                Value::Int(rng.gen_range(1_000i64..10_000_000)),
            ],
        )?;
        let p = points[rng.gen_range(0..points.len())];
        db.connect(cp, c, p)?;
    }

    Ok((db, h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_core::derive::{derive_molecules, DeriveOptions, Strategy};
    use mad_core::structure::path;

    #[test]
    fn deterministic_per_seed() {
        let p = GeoParams::default();
        let (a, _) = generate_geo(&p).unwrap();
        let (b, _) = generate_geo(&p).unwrap();
        assert_eq!(a.total_atoms(), b.total_atoms());
        assert_eq!(a.total_links(), b.total_links());
        let (c, _) = generate_geo(&GeoParams {
            seed: 7,
            ..p.clone()
        })
        .unwrap();
        // same structure counts for states/areas regardless of seed
        assert_eq!(
            a.atom_count(AtomTypeId(0)),
            c.atom_count(AtomTypeId(0))
        );
    }

    #[test]
    fn sharing_degree_controls_overlap() {
        let base = GeoParams {
            states: 10,
            rivers: 10,
            edges_per_river: 10,
            ..Default::default()
        };
        let (disjoint, h) = generate_geo(&GeoParams {
            share: 0.0,
            ..base.clone()
        })
        .unwrap();
        let (shared, h2) = generate_geo(&GeoParams {
            share: 1.0,
            ..base
        })
        .unwrap();
        // with share=1 no private river edges exist → fewer edge atoms
        assert!(shared.atom_count(h2.edge) < disjoint.atom_count(h.edge));
        assert!(disjoint.audit_referential_integrity().is_empty());
        assert!(shared.audit_referential_integrity().is_empty());
    }

    #[test]
    fn molecule_derivation_works_on_generated_data() {
        let (db, _) = generate_geo(&GeoParams::default()).unwrap();
        let md = path(db.schema(), &["state", "area", "edge", "point"]).unwrap();
        for strat in [Strategy::PerRoot, Strategy::LevelAtATime, Strategy::Parallel(4)] {
            let ms =
                derive_molecules(&db, &md, &DeriveOptions::with_strategy(strat)).unwrap();
            assert_eq!(ms.len(), 20);
        }
    }
}
