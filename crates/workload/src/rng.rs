//! Deterministic PRNG for the workload generators.
//!
//! The build environment cannot fetch the `rand` crate, so — following the
//! precedent of `mad_model::fxhash` — the few dozen lines the generators
//! need are inlined: a splitmix64 core with `gen_range`/`gen_bool` in the
//! familiar shape. Streams are fully determined by the seed, which is what
//! the reproducible-workload fixtures (and the benchmark presets) rely on;
//! there is no compatibility guarantee with `rand::rngs::StdRng` streams.

use std::ops::Range;

/// A small deterministic generator (splitmix64).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Seed the generator; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[range.start, range.end)`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped into `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform value.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
sample_int_range!(i32, i64, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..1 << 60) == c.gen_range(0u64..1 << 60))
            .count();
        assert!(same < 5, "different seeds should diverge");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
