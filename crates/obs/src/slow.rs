//! A bounded ring buffer of slow-statement traces.
//!
//! The network server owns one [`SlowLog`] per listener: while a
//! threshold is configured every statement is traced, and traces whose
//! total time crosses it are pushed into the ring (oldest entries
//! evicted — memory use is bounded no matter how hot the server runs).
//! With no threshold the server skips stage tracing entirely, so an
//! unobserved server pays nothing for the machinery. `SHOW STATS net`
//! renders the current contents; `madd --slow-query-ms` sets the
//! threshold at startup.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use crate::trace::{fmt_ns, StmtTrace};

/// One slow statement: which connection ran it, and its full trace.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// Server connection id.
    pub conn: u64,
    /// The statement's stage trace (text filled in).
    pub trace: StmtTrace,
}

/// Threshold-gated ring buffer of [`SlowEntry`]s.
#[derive(Debug)]
pub struct SlowLog {
    cap: usize,
    threshold_ns: AtomicU64,
    recorded: AtomicU64,
    entries: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// A log keeping at most `cap` entries, recording statements at or
    /// above `threshold` (`None` disables recording).
    pub fn new(cap: usize, threshold: Option<Duration>) -> Self {
        SlowLog {
            cap: cap.max(1),
            threshold_ns: AtomicU64::new(threshold_ns_of(threshold)),
            recorded: AtomicU64::new(0),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Current threshold (`None` when disabled).
    pub fn threshold(&self) -> Option<Duration> {
        match self.threshold_ns.load(Relaxed) {
            u64::MAX => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Change the threshold at runtime.
    pub fn set_threshold(&self, threshold: Option<Duration>) {
        self.threshold_ns.store(threshold_ns_of(threshold), Relaxed);
    }

    /// Record `trace` if it crosses the threshold; returns whether it
    /// was kept. The cheap early-out (one atomic load and a compare)
    /// is the per-statement cost on a fast server.
    pub fn offer(&self, conn: u64, trace: &StmtTrace) -> bool {
        let threshold = self.threshold_ns.load(Relaxed);
        if threshold == u64::MAX || trace.total_ns < threshold {
            return false;
        }
        self.recorded.fetch_add(1, Relaxed);
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        while entries.len() >= self.cap {
            entries.pop_front();
        }
        entries.push_back(SlowEntry { conn, trace: clone_for_log(trace) });
        true
    }

    /// Entries currently held, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Number of entries currently held (≤ the cap).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total statements ever recorded (monotonic; not capped).
    pub fn total_recorded(&self) -> u64 {
        self.recorded.load(Relaxed)
    }

    /// Compact one-line-per-entry rendering for `SHOW STATS`.
    pub fn render(&self) -> String {
        let entries = self.entries();
        if entries.is_empty() {
            return "(empty)".to_owned();
        }
        let mut out = String::new();
        for e in &entries {
            let mut text: String = e.trace.text.split_whitespace().collect::<Vec<_>>().join(" ");
            if text.len() > 80 {
                text.truncate(77);
                text.push_str("...");
            }
            let stages: Vec<String> = e
                .trace
                .stages
                .iter()
                .map(|s| format!("{}={}", s.kind.as_str(), fmt_ns(s.nanos)))
                .collect();
            out.push_str(&format!(
                "conn {} {} [{}] {}\n",
                e.conn,
                fmt_ns(e.trace.total_ns),
                stages.join(" "),
                text,
            ));
        }
        out
    }
}

fn threshold_ns_of(threshold: Option<Duration>) -> u64 {
    match threshold {
        // saturate: a threshold of centuries means "disabled" anyway
        Some(d) => u64::try_from(d.as_nanos()).unwrap_or(u64::MAX),
        None => u64::MAX,
    }
}

fn clone_for_log(trace: &StmtTrace) -> StmtTrace {
    let mut t = trace.clone();
    // bound per-entry memory even for pathological statements
    if t.text.len() > 1024 {
        let mut cut = 1024;
        while !t.text.is_char_boundary(cut) {
            cut -= 1;
        }
        t.text.truncate(cut);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{StageKind, StageRec};

    fn trace(total_ns: u64, text: &str) -> StmtTrace {
        StmtTrace {
            text: text.to_owned(),
            total_ns,
            stages: vec![StageRec {
                kind: StageKind::Parse,
                nanos: total_ns / 2,
                note: None,
                info: vec![],
            }],
        }
    }

    #[test]
    fn threshold_gates_recording() {
        let log = SlowLog::new(8, Some(Duration::from_millis(1)));
        assert!(!log.offer(1, &trace(999_999, "fast")));
        assert!(log.offer(1, &trace(1_000_000, "slow")));
        assert_eq!(log.len(), 1);
        assert_eq!(log.total_recorded(), 1);
        assert!(log.render().contains("slow"));
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = SlowLog::new(8, None);
        assert!(log.threshold().is_none());
        assert!(!log.offer(1, &trace(u64::MAX, "glacial")));
        assert!(log.is_empty());
        log.set_threshold(Some(Duration::ZERO));
        assert!(log.offer(1, &trace(0, "anything")));
    }

    #[test]
    fn ring_caps_and_evicts_oldest() {
        let log = SlowLog::new(3, Some(Duration::ZERO));
        for i in 0..10u64 {
            log.offer(i, &trace(100, &format!("stmt {i}")));
        }
        assert_eq!(log.len(), 3, "bounded despite 10 offers");
        assert_eq!(log.total_recorded(), 10);
        let conns: Vec<u64> = log.entries().iter().map(|e| e.conn).collect();
        assert_eq!(conns, [7, 8, 9], "oldest evicted first");
    }

    #[test]
    fn giant_statement_text_is_truncated() {
        let log = SlowLog::new(2, Some(Duration::ZERO));
        log.offer(1, &trace(100, &"x".repeat(10_000)));
        let kept = log.entries().remove(0);
        assert!(kept.trace.text.len() <= 1024);
    }
}
