#![forbid(unsafe_code)]

//! Observability substrate for the MAD workspace.
//!
//! Layer-0, dependency-free (std only), following the same offline-shim
//! discipline as `mad_check`: every subsystem above may depend on it and
//! nothing here depends on anything. Four pieces:
//!
//! * [`hist`] — fixed-bucket log-scale latency [`Histogram`]s with
//!   p50/p90/p99/max readout, recordable concurrently without locks
//!   (one atomic add per sample). The exact-percentile harness that used
//!   to be private to the B10 bench lives here as
//!   [`hist::percentile_sorted`].
//! * [`registry`] — a named [`Registry`] of counters, poll-gauges,
//!   histograms and text metrics. Counter increments and histogram
//!   records are lock-free on the hot path (the registry mutex is taken
//!   only to register, remove, or snapshot). Gauges are *pull*: a
//!   registered closure is polled at snapshot time, so idle subsystems
//!   pay nothing.
//! * [`trace`] — a per-statement span tracer. One [`StmtTrace`] per
//!   statement, carried in a thread-local so every layer (parser,
//!   derivation, commit validation, WAL, replication waits) can record a
//!   stage without plumbing a context argument through the whole stack.
//!   When no trace is active, a [`trace::StageTimer`] is a no-op: the
//!   begin-check is a single thread-local read and no clock is sampled.
//! * [`slow`] — a bounded ring-buffer [`SlowLog`] of statement traces
//!   whose total time crossed a configurable threshold; the network
//!   server keeps one per listener.
//!
//! Everything here is panic-free in non-test code: mutex poisoning is
//! absorbed (`PoisonError::into_inner` — metrics must never take the
//! server down), arithmetic saturates or wraps deliberately, and no
//! slice is indexed unchecked.

pub mod hist;
pub mod registry;
pub mod slow;
pub mod trace;

pub use hist::{percentile_sorted, HistSnapshot, Histogram};
pub use registry::{Counter, MetricValue, Registry};
pub use slow::{SlowEntry, SlowLog};
pub use trace::{StageKind, StageRec, StmtTrace};
