//! Per-statement span tracing.
//!
//! One [`StmtTrace`] follows a statement through the whole stack: the
//! session begins a trace, every layer it crosses (lexer, parser,
//! derivation, commit validation, WAL append, fsync/replication waits)
//! records a [`StageRec`], and the session takes the finished trace —
//! rendering it for `EXPLAIN ANALYZE` or handing it to the slow-query
//! log.
//!
//! The trace rides a **thread-local**, not a context argument: the
//! entire execution of one statement — including the commit protocol,
//! the group-commit wait and the replication-quorum wait — happens on
//! the session's thread, so a thread-local is exact and keeps deep
//! layers (`mad_wal`, `mad_txn`) free of plumbing. When no trace is
//! active the cost of an instrumentation point is one thread-local
//! check; no clock is sampled and nothing allocates.

use std::cell::RefCell;
use std::fmt;
use std::time::Instant;

/// Which layer a stage was recorded by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// MQL tokenisation.
    Lex,
    /// MQL parsing.
    Parse,
    /// Statement planning/analysis before execution.
    Plan,
    /// Molecule derivation (snapshot reuse vs CSR re-freeze recorded in
    /// the stage info).
    Derive,
    /// DML application to the write overlay.
    Apply,
    /// Commit validation against the sharded conflict index (hash
    /// probes, retry count in the info).
    Validate,
    /// Op-log replay after a conflict (the contended commit path).
    Replay,
    /// WAL record framing + buffered append.
    WalAppend,
    /// Waiting for the WAL fsync (group-commit batch size in the info
    /// when this thread was the elected syncer).
    FsyncWait,
    /// Waiting for the replication ack quorum.
    ReplWait,
    /// Publication under the commit ticket: epoch-cell swap + feed push
    /// (conflict-shard updates in the info).
    Publish,
}

impl StageKind {
    /// Stable lowercase name (used by renderers and the JSON variant).
    pub fn as_str(self) -> &'static str {
        match self {
            StageKind::Lex => "lex",
            StageKind::Parse => "parse",
            StageKind::Plan => "plan",
            StageKind::Derive => "derive",
            StageKind::Apply => "apply",
            StageKind::Validate => "validate",
            StageKind::Replay => "replay",
            StageKind::WalAppend => "wal_append",
            StageKind::FsyncWait => "fsync_wait",
            StageKind::ReplWait => "repl_wait",
            StageKind::Publish => "publish",
        }
    }
}

/// One recorded stage of a statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageRec {
    /// Which layer recorded it.
    pub kind: StageKind,
    /// Wall time spent in the stage.
    pub nanos: u64,
    /// Free-form label (e.g. the derivation strategy chosen).
    pub note: Option<String>,
    /// Named counters (probes, bytes, retries, slots…).
    pub info: Vec<(&'static str, u64)>,
}

/// The finished trace of one statement.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StmtTrace {
    /// The statement text (filled in by whoever took the trace).
    pub text: String,
    /// Total wall time from `begin` to `take`.
    pub total_ns: u64,
    /// Stages in the order they were recorded. A retried commit records
    /// `validate`/`replay` once per attempt.
    pub stages: Vec<StageRec>,
}

impl StmtTrace {
    /// Sum of recorded time across all stages of `kind`.
    pub fn stage_ns(&self, kind: StageKind) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.nanos)
            .sum()
    }

    /// Number of stages of `kind` recorded.
    pub fn stage_count(&self, kind: StageKind) -> usize {
        self.stages.iter().filter(|s| s.kind == kind).count()
    }

    /// Render as the `EXPLAIN ANALYZE` stage table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.stages {
            let mut line = format!("  {:<10} {:>12}", s.kind.as_str(), fmt_ns(s.nanos));
            if let Some(n) = &s.note {
                line.push_str(&format!("  {n}"));
            }
            for (k, v) in &s.info {
                line.push_str(&format!("  {k}={v}"));
            }
            out.push_str(&line);
            out.push('\n');
        }
        let accounted: u64 = self.stages.iter().map(|s| s.nanos).sum();
        out.push_str(&format!(
            "  {:<10} {:>12}  (stages account for {})\n",
            "total",
            fmt_ns(self.total_ns),
            fmt_ns(accounted.min(self.total_ns)),
        ));
        out
    }
}

impl fmt::Display for StmtTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Human-friendly nanosecond rendering (`1.234ms`, `56.7µs`, `890ns`).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

struct Active {
    started: Instant,
    stages: Vec<StageRec>,
}

thread_local! {
    static CURRENT: RefCell<Option<Active>> = const { RefCell::new(None) };
}

/// Start tracing on this thread, discarding any unfinished trace.
pub fn begin() {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Active { started: Instant::now(), stages: Vec::new() })
    });
}

/// Is a trace active on this thread? (The cheap instrumentation check.)
pub fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Finish the active trace and return it (`None` if none was active).
pub fn take() -> Option<StmtTrace> {
    CURRENT.with(|c| {
        c.borrow_mut().take().map(|a| StmtTrace {
            text: String::new(),
            total_ns: a.started.elapsed().as_nanos() as u64,
            stages: a.stages,
        })
    })
}

/// Copy the active trace so far without deactivating it.
///
/// `EXPLAIN ANALYZE` uses this when it runs nested inside a trace the
/// server began, so the server still gets the full trace for its
/// slow-query log.
pub fn snapshot() -> Option<StmtTrace> {
    CURRENT.with(|c| {
        c.borrow().as_ref().map(|a| StmtTrace {
            text: String::new(),
            total_ns: a.started.elapsed().as_nanos() as u64,
            stages: a.stages.clone(),
        })
    })
}

/// Record a stage directly (timers below are the usual entry point).
pub fn record(kind: StageKind, nanos: u64, note: Option<String>, info: &[(&'static str, u64)]) {
    CURRENT.with(|c| {
        if let Some(a) = c.borrow_mut().as_mut() {
            a.stages.push(StageRec { kind, nanos, note, info: info.to_vec() });
        }
    });
}

/// A scoped stage timer: samples the clock only when a trace is active,
/// records on `finish*`. Dropping without finishing records nothing.
#[must_use]
pub struct StageTimer {
    kind: StageKind,
    start: Option<Instant>,
}

impl StageTimer {
    /// Start timing `kind` (no-op when no trace is active).
    pub fn start(kind: StageKind) -> Self {
        let start = if is_active() { Some(Instant::now()) } else { None };
        StageTimer { kind, start }
    }

    /// Whether this timer will record anything — callers use this to
    /// skip *gathering* expensive notes/counters (string formatting,
    /// stats probes) on the untraced fast path, not just recording them.
    pub fn is_timing(&self) -> bool {
        self.start.is_some()
    }

    /// Record the elapsed time.
    pub fn finish(self) {
        self.finish_with(None, &[]);
    }

    /// Record the elapsed time with counters.
    pub fn finish_info(self, info: &[(&'static str, u64)]) {
        self.finish_with(None, info);
    }

    /// Record the elapsed time with a note and counters.
    pub fn finish_with(self, note: Option<String>, info: &[(&'static str, u64)]) {
        if let Some(start) = self.start {
            record(self.kind, start.elapsed().as_nanos() as u64, note, info);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_thread_records_nothing() {
        assert!(!is_active());
        let t = StageTimer::start(StageKind::Parse);
        t.finish();
        record(StageKind::Lex, 5, None, &[]);
        assert!(take().is_none());
    }

    #[test]
    fn stages_accumulate_in_order() {
        begin();
        record(StageKind::Lex, 10, None, &[]);
        record(StageKind::Parse, 20, None, &[("tokens", 7)]);
        record(StageKind::Validate, 5, None, &[("probes", 3)]);
        record(StageKind::Validate, 6, None, &[("probes", 3)]);
        let tr = take().expect("trace was active");
        assert!(!is_active(), "take deactivates");
        assert_eq!(
            tr.stages.iter().map(|s| s.kind).collect::<Vec<_>>(),
            [StageKind::Lex, StageKind::Parse, StageKind::Validate, StageKind::Validate]
        );
        assert_eq!(tr.stage_ns(StageKind::Validate), 11);
        assert_eq!(tr.stage_count(StageKind::Validate), 2);
        let rendered = tr.render();
        assert!(rendered.contains("parse"), "{rendered}");
        assert!(rendered.contains("probes=3"), "{rendered}");
        assert!(rendered.contains("total"), "{rendered}");
    }

    #[test]
    fn snapshot_leaves_trace_active() {
        begin();
        record(StageKind::Derive, 100, Some("bitset".into()), &[]);
        let snap = snapshot().expect("active");
        assert_eq!(snap.stages.len(), 1);
        assert!(is_active());
        record(StageKind::Apply, 1, None, &[]);
        let tr = take().expect("still active");
        assert_eq!(tr.stages.len(), 2);
        assert!(tr.total_ns >= snap.total_ns);
    }

    #[test]
    fn timer_records_only_when_active() {
        begin();
        let t = StageTimer::start(StageKind::FsyncWait);
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.finish_info(&[("batch", 4)]);
        let tr = take().expect("active");
        assert_eq!(tr.stages.len(), 1);
        assert!(tr.stages.first().map(|s| s.nanos).unwrap_or(0) >= 1_000_000);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(890), "890ns");
        assert_eq!(fmt_ns(56_700), "56.7µs");
        assert_eq!(fmt_ns(1_234_000), "1.234ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.500s");
    }
}
