//! Fixed-bucket log-scale histograms with percentile readout.
//!
//! A [`Histogram`] has 65 power-of-two buckets: bucket 0 holds the value
//! 0, bucket `i ≥ 1` holds values whose bit length is `i`, i.e. the range
//! `[2^(i-1), 2^i)`. Recording is one atomic add per sample (plus
//! count/sum/max bookkeeping) — no locks, no allocation — so histograms
//! can stay enabled on the hottest paths. Percentiles read out of a
//! [`HistSnapshot`] are bucket-resolution estimates: the reported value
//! is the inclusive upper bound of the bucket containing the requested
//! rank, clamped to the exact recorded maximum, so the estimate `e` of a
//! true quantile `q` satisfies `q ≤ e < 2q`.
//!
//! [`percentile_sorted`] is the exact nearest-rank percentile over a
//! sorted sample set, promoted from the B10 network bench so benches and
//! live metrics share one definition.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// Exact nearest-rank percentile of an already-sorted slice.
///
/// `p` is a fraction in `[0, 1]`; an empty slice reads as `0.0`. This is
/// the definition the network bench has always used for its reported
/// `p50_ns`/`p99_ns` figures.
pub fn percentile_sorted(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted.get(idx).copied().unwrap_or(0) as f64
}

/// Bucket index for a value: 0 for 0, else the value's bit length.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the largest value it can hold).
fn bucket_ceil(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A concurrently-recordable log-scale histogram.
///
/// All methods take `&self`; recording uses only relaxed atomics. The
/// sum wraps on overflow (2^64 ns ≈ 584 years of accumulated latency)
/// rather than panicking.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        if let Some(b) = self.buckets.get(bucket_of(v)) {
            b.fetch_add(1, Relaxed);
        }
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// A point-in-time copy of the counts.
    ///
    /// Concurrent recording makes the snapshot *per-field* consistent,
    /// not globally atomic — good enough for monitoring readout.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }

    /// Reset every bucket and the count/sum/max to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`], with percentile readout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see the module docs for the bucketing).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// Exact largest sample.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistSnapshot {
    /// Nearest-rank quantile estimate at bucket resolution.
    ///
    /// Returns the inclusive upper bound of the bucket holding the
    /// requested rank, clamped to the exact recorded max; `0` when
    /// empty. Uses the same nearest-rank rule as [`percentile_sorted`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen > rank {
                return bucket_ceil(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded samples (`0` when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Fold another snapshot into this one.
    ///
    /// Merging snapshots of two histograms yields exactly the snapshot
    /// of a histogram that recorded the concatenation of both sample
    /// sets (the property test in this module pins that law).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst = dst.wrapping_add(*src);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Display for HistSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "count={} mean={} p50={} p90={} p99={} max={}",
            self.count,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 64);
        // ceil(i) is the largest value bucket i holds, and ceil(i)+1 the
        // smallest value of bucket i+1
        for i in 0..64 {
            assert_eq!(bucket_of(bucket_ceil(i)), i, "ceil({i}) stays in bucket");
            assert_eq!(bucket_of(bucket_ceil(i) + 1), i + 1);
        }
        assert_eq!(bucket_of(bucket_ceil(64)), 64);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn percentiles_of_known_distribution() {
        // 100 samples: 1..=100 µs in nanoseconds
        let h = Histogram::new();
        let mut exact: Vec<u64> = (1..=100u64).map(|v| v * 1_000).collect();
        for &v in &exact {
            h.record(v);
        }
        exact.sort_unstable();
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100_000);
        assert_eq!(s.mean(), exact.iter().sum::<u64>() / 100);
        // log-scale buckets bound the estimate to [q, 2q)
        for (q, p) in [(0.50, s.p50()), (0.90, s.p90()), (0.99, s.p99())] {
            let truth = percentile_sorted(&exact, q) as u64;
            assert!(p >= truth, "q{q}: estimate {p} below exact {truth}");
            assert!(p < truth * 2, "q{q}: estimate {p} ≥ 2× exact {truth}");
        }
        // p100 is exact by the max clamp
        assert_eq!(s.quantile(1.0), 100_000);
    }

    #[test]
    fn single_value_distribution_reads_exactly() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(46_000);
        }
        let s = h.snapshot();
        // every quantile clamps to the exact max
        assert_eq!(s.p50(), 46_000);
        assert_eq!(s.p99(), 46_000);
        assert_eq!(s.mean(), 46_000);
    }

    #[test]
    fn percentile_sorted_matches_bench_semantics() {
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
        assert_eq!(percentile_sorted(&[7], 0.99), 7.0);
        let v: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile_sorted(&v, 0.0), 0.0);
        assert_eq!(percentile_sorted(&v, 0.5), 50.0);
        assert_eq!(percentile_sorted(&v, 1.0), 100.0);
    }

    #[test]
    fn reset_clears() {
        let h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.snapshot(), HistSnapshot::default());
    }

    proptest! {
        #[test]
        fn recording_never_panics_and_is_counted(vs in proptest::collection::vec(any::<u64>(), 0..200)) {
            let h = Histogram::new();
            for &v in &vs {
                h.record(v);
            }
            let s = h.snapshot();
            prop_assert_eq!(s.count, vs.len() as u64);
            prop_assert_eq!(s.max, vs.iter().copied().max().unwrap_or(0));
            prop_assert_eq!(s.buckets.iter().sum::<u64>(), vs.len() as u64);
            // quantile readout is defined on every input
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                let e = s.quantile(q);
                prop_assert!(e <= s.max);
            }
        }

        #[test]
        fn merge_equals_histogram_of_concatenation(
            a in proptest::collection::vec(0u64..1_000_000, 0..100),
            b in proptest::collection::vec(0u64..1_000_000, 0..100),
        ) {
            let ha = Histogram::new();
            let hb = Histogram::new();
            let hc = Histogram::new();
            for &v in &a {
                ha.record(v);
                hc.record(v);
            }
            for &v in &b {
                hb.record(v);
                hc.record(v);
            }
            let mut merged = ha.snapshot();
            merged.merge(&hb.snapshot());
            prop_assert_eq!(merged, hc.snapshot());
        }
    }
}
