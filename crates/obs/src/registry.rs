//! A named metrics registry shared by every subsystem of a deployment.
//!
//! One [`Registry`] is owned by the transaction handle; the WAL,
//! replication endpoints, sessions and the network server all register
//! into it, and `SHOW STATS` renders a [`Registry::snapshot`]. Names are
//! dot-separated paths (`txn.commits`, `wal.fsyncs`,
//! `repl.standby.3.lag`); the leading segment is the subsystem filter
//! `SHOW STATS <subsystem>` selects on.
//!
//! Cost model — the part that lets metrics stay on in production:
//!
//! * [`Counter`] increments and [`Histogram`] records touch only their
//!   own atomics; the registry mutex is **not** taken.
//! * Gauges are poll-only closures evaluated at snapshot time. They
//!   conventionally capture a `Weak` to their subsystem and return
//!   `None` once it is gone, which unregisters them lazily.
//! * The registry mutex guards only the name→metric map (register,
//!   remove, snapshot). It is **unranked and must stay a leaf**: a
//!   snapshot polls gauge closures that may take ranked locks (e.g. the
//!   txn `state` mutex), so calling [`Registry::snapshot`] while holding
//!   any ranked lock would invert the hierarchy. `SHOW STATS` runs with
//!   no locks held.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, PoisonError};

use crate::hist::{HistSnapshot, Histogram};

/// A monotonically increasing (or stored-value) atomic metric handle.
///
/// Cloning shares the underlying atomic; increments never touch the
/// registry.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Store an absolute value (stored-gauge use).
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Poll closure of a numeric gauge; `None` unregisters it lazily.
pub type GaugeFn = Box<dyn Fn() -> Option<u64> + Send + Sync>;
/// Poll closure of a text metric; `None` unregisters it lazily.
pub type TextFn = Box<dyn Fn() -> Option<String> + Send + Sync>;
/// Poll closure expanding to several `name.suffix` gauge rows at once
/// (e.g. one row per attached standby); `None` unregisters it lazily.
pub type MultiFn = Box<dyn Fn() -> Option<Vec<(String, u64)>> + Send + Sync>;

enum Metric {
    Counter(Counter),
    Gauge(GaugeFn),
    Text(TextFn),
    Multi(MultiFn),
    Hist(Arc<Histogram>),
}

/// One metric's value in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter reading.
    Counter(u64),
    /// Polled gauge reading.
    Gauge(u64),
    /// Polled text reading (e.g. a halt reason).
    Text(String),
    /// Histogram snapshot (boxed: it is by far the widest variant).
    Hist(Box<HistSnapshot>),
}

impl MetricValue {
    /// Numeric value, if this metric has one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }
}

/// The shared name→metric map. Cheap to clone (one `Arc`).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // gauge closures are opaque; show only the registered names
        let names: Vec<String> = self.map().keys().cloned().collect();
        f.debug_struct("Registry").field("metrics", &names).finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn map(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        // metrics must never take the process down: absorb poisoning
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get or create the counter named `name`.
    ///
    /// Re-requesting an existing counter returns a handle to the same
    /// atomic, so layers can share a metric without coordinating.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.map();
        if let Some(Metric::Counter(c)) = map.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        map.insert(name.to_owned(), Metric::Counter(c.clone()));
        c
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.map();
        if let Some(Metric::Hist(h)) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_owned(), Metric::Hist(Arc::clone(&h)));
        h
    }

    /// Register (or replace) a poll-gauge.
    pub fn gauge(&self, name: &str, f: impl Fn() -> Option<u64> + Send + Sync + 'static) {
        self.map().insert(name.to_owned(), Metric::Gauge(Box::new(f)));
    }

    /// Register (or replace) a text metric.
    pub fn text(&self, name: &str, f: impl Fn() -> Option<String> + Send + Sync + 'static) {
        self.map().insert(name.to_owned(), Metric::Text(Box::new(f)));
    }

    /// Register (or replace) a multi-row gauge: the closure returns
    /// `(suffix, value)` pairs rendered as `name.suffix` rows.
    pub fn multi(&self, name: &str, f: impl Fn() -> Option<Vec<(String, u64)>> + Send + Sync + 'static) {
        self.map().insert(name.to_owned(), Metric::Multi(Box::new(f)));
    }

    /// Remove one metric.
    pub fn remove(&self, name: &str) {
        self.map().remove(name);
    }

    /// Remove every metric whose name starts with `prefix` (used to
    /// drop per-connection histograms when a connection closes).
    pub fn remove_prefix(&self, prefix: &str) {
        self.map().retain(|k, _| !k.starts_with(prefix));
    }

    /// Read every metric (optionally only the subsystem `filter`),
    /// sorted by name.
    ///
    /// A filter matches a metric whose name equals it or continues it
    /// at a `.` boundary (`wal` matches `wal.fsyncs`, not `walrus`).
    /// Gauges whose closure returns `None` (their subsystem is gone)
    /// are dropped from the registry as a side effect.
    ///
    /// Gauge closures may take ranked locks — do not call this while
    /// holding one (see the module docs).
    pub fn snapshot(&self, filter: Option<&str>) -> Vec<(String, MetricValue)> {
        let matches = |name: &str| match filter {
            None => true,
            Some(f) => {
                name == f
                    || (name.len() > f.len()
                        && name.starts_with(f)
                        && name.as_bytes().get(f.len()) == Some(&b'.'))
            }
        };
        let mut out = Vec::new();
        let mut dead = Vec::new();
        let map = self.map();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    if matches(name) {
                        out.push((name.clone(), MetricValue::Counter(c.get())));
                    }
                }
                Metric::Hist(h) => {
                    if matches(name) {
                        out.push((name.clone(), MetricValue::Hist(Box::new(h.snapshot()))));
                    }
                }
                Metric::Gauge(f) => match f() {
                    Some(v) if matches(name) => out.push((name.clone(), MetricValue::Gauge(v))),
                    Some(_) => {}
                    None => dead.push(name.clone()),
                },
                Metric::Text(f) => match f() {
                    Some(v) if matches(name) => out.push((name.clone(), MetricValue::Text(v))),
                    Some(_) => {}
                    None => dead.push(name.clone()),
                },
                Metric::Multi(f) => match f() {
                    Some(rows) => {
                        for (suffix, v) in rows {
                            let full = format!("{name}.{suffix}");
                            if matches(&full) {
                                out.push((full, MetricValue::Gauge(v)));
                            }
                        }
                    }
                    None => dead.push(name.clone()),
                },
            }
        }
        drop(map);
        for name in dead {
            self.remove(&name);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Weak;

    #[test]
    fn counter_is_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("txn.commits");
        let b = r.counter("txn.commits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(
            r.snapshot(None),
            vec![("txn.commits".to_owned(), MetricValue::Counter(3))]
        );
    }

    #[test]
    fn filter_matches_on_dot_boundary() {
        let r = Registry::new();
        r.counter("wal.fsyncs").inc();
        r.counter("walrus.teeth").inc();
        let snap = r.snapshot(Some("wal"));
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, "wal.fsyncs");
        // exact name matches too
        assert_eq!(r.snapshot(Some("wal.fsyncs")).len(), 1);
        assert!(r.snapshot(Some("net")).is_empty());
    }

    #[test]
    fn dead_gauges_unregister_lazily() {
        let r = Registry::new();
        let owner = Arc::new(41u64);
        let weak: Weak<u64> = Arc::downgrade(&owner);
        r.gauge("sub.alive", move || weak.upgrade().map(|v| *v + 1));
        assert_eq!(
            r.snapshot(None),
            vec![("sub.alive".to_owned(), MetricValue::Gauge(42))]
        );
        drop(owner);
        assert!(r.snapshot(None).is_empty());
        // and it is actually gone, not just filtered
        r.counter("other").inc();
        assert_eq!(r.snapshot(None).len(), 1);
    }

    #[test]
    fn multi_expands_to_rows() {
        let r = Registry::new();
        r.multi("repl.standby", || {
            Some(vec![("7.lag".to_owned(), 3), ("7.acked_seq".to_owned(), 12)])
        });
        let snap = r.snapshot(Some("repl"));
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["repl.standby.7.acked_seq", "repl.standby.7.lag"]);
    }

    #[test]
    fn remove_prefix_drops_connection_metrics() {
        let r = Registry::new();
        r.counter("net.conn.1.stmts").inc();
        r.histogram("net.conn.1.stmt_ns").record(5);
        r.counter("net.stmts").inc();
        r.remove_prefix("net.conn.1.");
        let names: Vec<String> = r.snapshot(None).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["net.stmts"]);
    }

    #[test]
    fn histograms_snapshot_through_registry() {
        let r = Registry::new();
        let h = r.histogram("mql.stmt_ns");
        h.record(1000);
        h.record(3000);
        match r.snapshot(Some("mql")).pop() {
            Some((_, MetricValue::Hist(s))) => assert_eq!(s.count, 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
