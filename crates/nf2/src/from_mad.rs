//! Materializing MAD molecule types as nested relations — and measuring
//! what that costs.
//!
//! §5: hierarchical models (NF² among them) "are just special cases" of the
//! MAD model because they cannot express *shared subobjects* or *network
//! structures*. Concretely:
//!
//! * a molecule **structure** that is a DAG (e.g. the diamond in
//!   `point-edge-(area-state,net-river)`) must be forced through a
//!   spanning tree, dropping the non-tree incoming edges;
//! * a subobject shared between molecules (the Paraná sharing edges with
//!   three states) must be **copied into every parent** — nested relations
//!   have no identity-based references.
//!
//! [`materialize`] performs that transformation; the resulting
//! [`Nf2Materialization`] reports the duplication factor
//! (atom *instances* embedded in the nested relation vs. *distinct* atoms
//! in the molecule set) — the quantity benchmark B2 sweeps.

use crate::nested::{NestedAttr, NestedRelation, NestedValue};
use mad_core::molecule::MoleculeType;
use mad_model::{AtomId, Result};
use mad_storage::Database;
use std::collections::BTreeSet;

/// The result of materializing a molecule type as a nested relation.
#[derive(Clone, Debug)]
pub struct Nf2Materialization {
    /// The nested relation (one top-level tuple per molecule).
    pub relation: NestedRelation,
    /// Number of atom instances embedded (with duplication).
    pub atom_instances: usize,
    /// Number of distinct atoms in the molecule set.
    pub distinct_atoms: usize,
    /// Number of structure edges dropped to force a spanning tree.
    pub dag_edges_dropped: usize,
}

impl Nf2Materialization {
    /// `atom_instances / distinct_atoms` — 1.0 means no sharing existed;
    /// the factor grows with the §5 sharing degree.
    pub fn duplication_factor(&self) -> f64 {
        if self.distinct_atoms == 0 {
            1.0
        } else {
            self.atom_instances as f64 / self.distinct_atoms as f64
        }
    }
}

/// Spanning tree of a structure: for every non-root node keep only its
/// first incoming edge. Returns (kept edge per node, dropped edge count).
fn spanning_tree(mt: &MoleculeType) -> (Vec<Option<usize>>, usize) {
    let md = &mt.structure;
    let mut keep: Vec<Option<usize>> = vec![None; md.node_count()];
    let mut dropped = 0usize;
    #[allow(clippy::needless_range_loop)]
    for n in 0..md.node_count() {
        let inc = md.incoming(n);
        if let Some(&first) = inc.first() {
            keep[n] = Some(first);
            dropped += inc.len() - 1;
        }
    }
    (keep, dropped)
}

fn nested_schema_for(
    db: &Database,
    mt: &MoleculeType,
    tree_children: &[Vec<usize>],
    node: usize,
) -> Vec<NestedAttr> {
    let md = &mt.structure;
    let def = db.schema().atom_type(md.nodes()[node].ty);
    let mut attrs: Vec<NestedAttr> = def
        .attrs
        .iter()
        .map(|a| NestedAttr::atomic(&a.name, a.ty))
        .collect();
    for &child in &tree_children[node] {
        let name = md.nodes()[child].alias.clone();
        attrs.push(NestedAttr::Nested {
            name,
            schema: nested_schema_for(db, mt, tree_children, child),
        });
    }
    attrs
}

#[allow(clippy::too_many_arguments)]
fn build_tuple(
    db: &Database,
    mt: &MoleculeType,
    molecule: usize,
    tree_children: &[Vec<usize>],
    tree_edge: &[Option<usize>],
    node: usize,
    atom: AtomId,
    instances: &mut usize,
) -> Result<Vec<NestedValue>> {
    *instances += 1;
    let m = &mt.molecules[molecule];
    let mut tuple: Vec<NestedValue> = db
        .atom(atom)?
        .iter()
        .cloned()
        .map(NestedValue::Atomic)
        .collect();
    for &child in &tree_children[node] {
        let ei = tree_edge[child].expect("child has a tree edge");
        let mut rows: BTreeSet<Vec<NestedValue>> = BTreeSet::new();
        for &(p, c) in m.links_at(ei) {
            if p == atom {
                rows.insert(build_tuple(
                    db,
                    mt,
                    molecule,
                    tree_children,
                    tree_edge,
                    child,
                    c,
                    instances,
                )?);
            }
        }
        tuple.push(NestedValue::Rel(rows));
    }
    Ok(tuple)
}

/// Materialize `mt` as a nested relation (one tuple per molecule, children
/// nested along the structure's spanning tree, shared subobjects copied).
pub fn materialize(db: &Database, mt: &MoleculeType) -> Result<Nf2Materialization> {
    let md = &mt.structure;
    let (tree_edge, dropped) = spanning_tree(mt);
    let mut tree_children: Vec<Vec<usize>> = vec![Vec::new(); md.node_count()];
    for (n, e) in tree_edge.iter().enumerate() {
        if let Some(ei) = e {
            tree_children[md.edges()[*ei].from].push(n);
        }
    }
    let schema = nested_schema_for(db, mt, &tree_children, md.root());
    let mut rel = NestedRelation::new(format!("nf2_{}", mt.name), schema);
    let mut instances = 0usize;
    for (mi, m) in mt.molecules.iter().enumerate() {
        let tuple = build_tuple(
            db,
            mt,
            mi,
            &tree_children,
            &tree_edge,
            md.root(),
            m.root,
            &mut instances,
        )?;
        rel.tuples.insert(tuple);
    }
    Ok(Nf2Materialization {
        relation: rel,
        atom_instances: instances,
        distinct_atoms: mt.distinct_atoms(),
        dag_edges_dropped: dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_core::ops::Engine;
    use mad_core::structure::{path, StructureBuilder};
    use mad_model::{AttrType, SchemaBuilder, Value};

    /// Two states sharing one edge atom through their areas.
    fn shared_db() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .atom_type("edge", &[("eid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .link_type("area-edge", "area", "edge")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let t = |db: &Database, n: &str| db.schema().atom_type_id(n).unwrap();
        let l = |db: &Database, n: &str| db.schema().link_type_id(n).unwrap();
        let sp = db.insert_atom(t(&db, "state"), vec![Value::from("SP")]).unwrap();
        let mg = db.insert_atom(t(&db, "state"), vec![Value::from("MG")]).unwrap();
        let a1 = db.insert_atom(t(&db, "area"), vec![Value::from(1)]).unwrap();
        let a2 = db.insert_atom(t(&db, "area"), vec![Value::from(2)]).unwrap();
        let e_shared = db.insert_atom(t(&db, "edge"), vec![Value::from(42)]).unwrap();
        db.connect(l(&db, "state-area"), sp, a1).unwrap();
        db.connect(l(&db, "state-area"), mg, a2).unwrap();
        db.connect(l(&db, "area-edge"), a1, e_shared).unwrap();
        db.connect(l(&db, "area-edge"), a2, e_shared).unwrap();
        db
    }

    #[test]
    fn shared_edge_is_duplicated() {
        let mut engine = Engine::new(shared_db());
        let md = path(engine.db().schema(), &["state", "area", "edge"]).unwrap();
        let mt = engine.define("mt_state", md).unwrap();
        let mat = materialize(engine.db(), &mt).unwrap();
        // 2 states + 2 areas + 1 shared edge = 5 distinct atoms
        assert_eq!(mat.distinct_atoms, 5);
        // the shared edge is embedded once per state → 6 instances
        assert_eq!(mat.atom_instances, 6);
        assert!(mat.duplication_factor() > 1.0);
        assert_eq!(mat.relation.len(), 2);
        assert_eq!(mat.dag_edges_dropped, 0);
    }

    #[test]
    fn dag_structure_loses_edges() {
        // diamond structure: r→b→d, r→c→d — NF² keeps only one path to d
        let schema = SchemaBuilder::new()
            .atom_type("r", &[("x", AttrType::Int)])
            .atom_type("b", &[("y", AttrType::Int)])
            .atom_type("c", &[("z", AttrType::Int)])
            .atom_type("d", &[("w", AttrType::Int)])
            .link_type("rb", "r", "b")
            .link_type("rc", "r", "c")
            .link_type("bd", "b", "d")
            .link_type("cd", "c", "d")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let t = |db: &Database, n: &str| db.schema().atom_type_id(n).unwrap();
        let l = |db: &Database, n: &str| db.schema().link_type_id(n).unwrap();
        let r1 = db.insert_atom(t(&db, "r"), vec![Value::from(1)]).unwrap();
        let b1 = db.insert_atom(t(&db, "b"), vec![Value::from(1)]).unwrap();
        let c1 = db.insert_atom(t(&db, "c"), vec![Value::from(1)]).unwrap();
        let d1 = db.insert_atom(t(&db, "d"), vec![Value::from(1)]).unwrap();
        db.connect(l(&db, "rb"), r1, b1).unwrap();
        db.connect(l(&db, "rc"), r1, c1).unwrap();
        db.connect(l(&db, "bd"), b1, d1).unwrap();
        db.connect(l(&db, "cd"), c1, d1).unwrap();
        let md = StructureBuilder::new(db.schema())
            .node("r")
            .node("b")
            .node("c")
            .node("d")
            .edge("r", "b")
            .edge("r", "c")
            .edge("b", "d")
            .edge("c", "d")
            .build()
            .unwrap();
        let mut engine = Engine::new(db);
        let mt = engine.define("diamond", md).unwrap();
        let mat = materialize(engine.db(), &mt).unwrap();
        assert_eq!(mat.dag_edges_dropped, 1, "the cd (or bd) edge is lost");
        assert_eq!(mat.relation.len(), 1);
    }

    #[test]
    fn no_sharing_means_factor_one() {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let t = |db: &Database, n: &str| db.schema().atom_type_id(n).unwrap();
        let l = |db: &Database, n: &str| db.schema().link_type_id(n).unwrap();
        let sp = db.insert_atom(t(&db, "state"), vec![Value::from("SP")]).unwrap();
        let a1 = db.insert_atom(t(&db, "area"), vec![Value::from(1)]).unwrap();
        db.connect(l(&db, "state-area"), sp, a1).unwrap();
        let mut engine = Engine::new(db);
        let md = path(engine.db().schema(), &["state", "area"]).unwrap();
        let mt = engine.define("t", md).unwrap();
        let mat = materialize(engine.db(), &mt).unwrap();
        assert_eq!(mat.duplication_factor(), 1.0);
        assert_eq!(mat.atom_instances, 2);
    }

    #[test]
    fn empty_molecule_set() {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let db = Database::new(schema);
        let mut engine = Engine::new(db);
        let md = path(engine.db().schema(), &["state", "area"]).unwrap();
        let mt = engine.define("t", md).unwrap();
        let mat = materialize(engine.db(), &mt).unwrap();
        assert!(mat.relation.is_empty());
        assert_eq!(mat.duplication_factor(), 1.0);
        assert_eq!(mat.dag_edges_dropped, 0);
    }

    #[test]
    fn nested_relation_roundtrips_through_unnest() {
        // flattening the NF² image with μ twice gives the flat join result
        let mut engine = Engine::new(shared_db());
        let md = path(engine.db().schema(), &["state", "area", "edge"]).unwrap();
        let mt = engine.define("mt_state", md).unwrap();
        let mat = materialize(engine.db(), &mt).unwrap();
        let u1 = crate::ops::unnest(&mat.relation, "area").unwrap();
        let u2 = crate::ops::unnest(&u1, "edge").unwrap();
        // flat rows: one per (state, area, edge) path = 2
        assert_eq!(u2.len(), 2);
        assert!(u2.is_flat());
    }
}
