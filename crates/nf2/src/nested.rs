//! Nested relations: the data structures of the NF² model (\[SS86\]).
//!
//! A [`NestedRelation`] is a relation whose attributes are either atomic
//! (a [`mad_model::AttrType`]) or themselves relation-valued. Tuples are
//! kept in `BTreeSet`s at every level, so nested relations are canonical:
//! equality is deep set equality, iteration is deterministic.

use mad_model::{AttrType, MadError, Result, Value};
use std::collections::BTreeSet;
use std::fmt;

/// An attribute of a nested schema: atomic or relation-valued.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NestedAttr {
    /// An atomic attribute.
    Atomic {
        /// Attribute name.
        name: String,
        /// Attribute domain.
        ty: AttrType,
    },
    /// A relation-valued attribute (a sub-relation schema).
    Nested {
        /// Attribute name.
        name: String,
        /// The sub-relation's schema.
        schema: Vec<NestedAttr>,
    },
}

impl NestedAttr {
    /// Atomic attribute helper.
    pub fn atomic(name: &str, ty: AttrType) -> Self {
        NestedAttr::Atomic {
            name: name.to_owned(),
            ty,
        }
    }

    /// Nested attribute helper.
    pub fn nested(name: &str, schema: Vec<NestedAttr>) -> Self {
        NestedAttr::Nested {
            name: name.to_owned(),
            schema,
        }
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        match self {
            NestedAttr::Atomic { name, .. } | NestedAttr::Nested { name, .. } => name,
        }
    }

    /// Is this attribute relation-valued?
    pub fn is_nested(&self) -> bool {
        matches!(self, NestedAttr::Nested { .. })
    }
}

/// A value of a nested tuple: atomic or a sub-relation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NestedValue {
    /// An atomic value.
    Atomic(Value),
    /// A sub-relation value.
    Rel(BTreeSet<Vec<NestedValue>>),
}

impl NestedValue {
    /// Extract the atomic value.
    pub fn as_atomic(&self) -> Option<&Value> {
        match self {
            NestedValue::Atomic(v) => Some(v),
            NestedValue::Rel(_) => None,
        }
    }

    /// Extract the sub-relation.
    pub fn as_rel(&self) -> Option<&BTreeSet<Vec<NestedValue>>> {
        match self {
            NestedValue::Rel(r) => Some(r),
            NestedValue::Atomic(_) => None,
        }
    }

    /// Count atomic leaf values in this value (tuple instances measure for
    /// the duplication metric).
    pub fn leaf_count(&self) -> usize {
        match self {
            NestedValue::Atomic(_) => 1,
            NestedValue::Rel(rows) => rows
                .iter()
                .map(|r| r.iter().map(NestedValue::leaf_count).sum::<usize>())
                .sum(),
        }
    }
}

impl From<Value> for NestedValue {
    fn from(v: Value) -> Self {
        NestedValue::Atomic(v)
    }
}

/// A nested relation: name, (possibly nested) schema, tuple set.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct NestedRelation {
    /// Relation name.
    pub name: String,
    /// Schema, in column order.
    pub schema: Vec<NestedAttr>,
    /// Tuple set.
    pub tuples: BTreeSet<Vec<NestedValue>>,
}

impl NestedRelation {
    /// An empty nested relation.
    pub fn new(name: impl Into<String>, schema: Vec<NestedAttr>) -> Self {
        NestedRelation {
            name: name.into(),
            schema,
            tuples: BTreeSet::new(),
        }
    }

    /// Number of top-level tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Position of a top-level attribute.
    pub fn attr_index(&self, name: &str) -> Result<usize> {
        self.schema
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| MadError::unknown("attribute", format!("{name} of `{}`", self.name)))
    }

    /// Validate a tuple shallowly (arity + kind per column) and insert it.
    pub fn insert(&mut self, tuple: Vec<NestedValue>) -> Result<bool> {
        if tuple.len() != self.schema.len() {
            return Err(MadError::ArityMismatch {
                context: format!("nested relation `{}`", self.name),
                expected: self.schema.len(),
                found: tuple.len(),
            });
        }
        for (v, a) in tuple.iter().zip(&self.schema) {
            match (v, a) {
                (NestedValue::Atomic(av), NestedAttr::Atomic { ty, name }) => {
                    if !av.conforms_to(*ty) {
                        return Err(MadError::TypeMismatch {
                            context: format!("nested relation `{}`, attribute `{name}`", self.name),
                            expected: ty.name().to_owned(),
                            found: av
                                .attr_type()
                                .map(|t| t.name().to_owned())
                                .unwrap_or_else(|| "NULL".to_owned()),
                        });
                    }
                }
                (NestedValue::Rel(_), NestedAttr::Nested { .. }) => {}
                (v, a) => {
                    return Err(MadError::TypeMismatch {
                        context: format!("nested relation `{}`, attribute `{}`", self.name, a.name()),
                        expected: if a.is_nested() { "relation".to_owned() } else { "atomic".to_owned() },
                        found: match v {
                            NestedValue::Atomic(_) => "atomic".to_owned(),
                            NestedValue::Rel(_) => "relation".to_owned(),
                        },
                    });
                }
            }
        }
        Ok(self.tuples.insert(tuple))
    }

    /// Total number of atomic leaf values across all tuples — the storage
    /// measure used by the duplication benchmarks.
    pub fn leaf_count(&self) -> usize {
        self.tuples
            .iter()
            .map(|t| t.iter().map(NestedValue::leaf_count).sum::<usize>())
            .sum()
    }

    /// Is the schema flat (1NF)?
    pub fn is_flat(&self) -> bool {
        self.schema.iter().all(|a| !a.is_nested())
    }

    /// Render as indented text (sub-relations inset).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} (", self.name));
        for (i, a) in self.schema.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(a.name());
            if a.is_nested() {
                out.push_str("(…)");
            }
        }
        out.push_str(")\n");
        for t in &self.tuples {
            render_tuple(t, &self.schema, 1, &mut out);
        }
        out
    }
}

fn render_tuple(tuple: &[NestedValue], schema: &[NestedAttr], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let mut atomics: Vec<String> = Vec::new();
    for (v, a) in tuple.iter().zip(schema) {
        if let NestedValue::Atomic(av) = v {
            atomics.push(format!("{}={av}", a.name()));
        }
    }
    out.push_str(&format!("{pad}<{}>\n", atomics.join(", ")));
    for (v, a) in tuple.iter().zip(schema) {
        if let (NestedValue::Rel(rows), NestedAttr::Nested { name, schema }) = (v, a) {
            out.push_str(&format!("{pad}  {name}:\n"));
            for r in rows {
                render_tuple(r, schema, depth + 2, out);
            }
        }
    }
}

impl fmt::Display for NestedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} tuples]", self.name, self.tuples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states_with_areas() -> NestedRelation {
        let mut r = NestedRelation::new(
            "state",
            vec![
                NestedAttr::atomic("sname", AttrType::Text),
                NestedAttr::nested("areas", vec![NestedAttr::atomic("aid", AttrType::Int)]),
            ],
        );
        let areas: BTreeSet<Vec<NestedValue>> = [
            vec![NestedValue::from(Value::from(1))],
            vec![NestedValue::from(Value::from(2))],
        ]
        .into_iter()
        .collect();
        r.insert(vec![
            NestedValue::from(Value::from("SP")),
            NestedValue::Rel(areas),
        ])
        .unwrap();
        r
    }

    #[test]
    fn insert_validates_shape() {
        let mut r = states_with_areas();
        // wrong arity
        assert!(r.insert(vec![NestedValue::from(Value::from("MG"))]).is_err());
        // atomic where relation expected
        assert!(r
            .insert(vec![
                NestedValue::from(Value::from("MG")),
                NestedValue::from(Value::from(1)),
            ])
            .is_err());
        // relation where atomic expected
        assert!(r
            .insert(vec![
                NestedValue::Rel(BTreeSet::new()),
                NestedValue::Rel(BTreeSet::new()),
            ])
            .is_err());
        // wrong atomic type
        assert!(r
            .insert(vec![
                NestedValue::from(Value::from(1)),
                NestedValue::Rel(BTreeSet::new()),
            ])
            .is_err());
        // duplicate is a no-op
        let dup = r.tuples.iter().next().unwrap().clone();
        assert!(!r.insert(dup).unwrap());
    }

    #[test]
    fn leaf_count_counts_nested_leaves() {
        let r = states_with_areas();
        // 'SP' + two aids
        assert_eq!(r.leaf_count(), 3);
    }

    #[test]
    fn flatness() {
        let r = states_with_areas();
        assert!(!r.is_flat());
        let f = NestedRelation::new("x", vec![NestedAttr::atomic("a", AttrType::Int)]);
        assert!(f.is_flat());
    }

    #[test]
    fn deep_equality_is_set_based() {
        let a = states_with_areas();
        let b = states_with_areas();
        assert_eq!(a, b);
    }

    #[test]
    fn render_shows_nesting() {
        let r = states_with_areas();
        let s = r.render();
        assert!(s.contains("state (sname, areas(…))"));
        assert!(s.contains("areas:"));
        assert!(s.contains("aid=1"));
    }

    #[test]
    fn attr_lookup() {
        let r = states_with_areas();
        assert_eq!(r.attr_index("areas").unwrap(), 1);
        assert!(r.attr_index("ghost").is_err());
    }
}
