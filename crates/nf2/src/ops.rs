//! The NF² algebra core: `nest` ν and `unnest` μ (\[SS86\]) plus top-level
//! selection and projection.
//!
//! The classical identities hold and are tested here and in the property
//! suite:
//!
//! * `μ_B(ν_B(R)) = R` for every relation `R` (unnest undoes nest),
//! * `ν_B(μ_B(R)) = R` only when `R` is *partitioned* by the remaining
//!   attributes (PNF); a counterexample test documents the failure case.

use crate::nested::{NestedAttr, NestedRelation, NestedValue};
use mad_core::qual::CmpOp;
use mad_model::{MadError, Result, Value};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// ν — nest the attributes named in `nest_attrs` into a relation-valued
/// attribute `as_name`, grouping by the remaining top-level attributes.
pub fn nest(rel: &NestedRelation, nest_attrs: &[&str], as_name: &str) -> Result<NestedRelation> {
    if nest_attrs.is_empty() {
        return Err(MadError::IncompatibleOperands {
            op: "ν",
            detail: "cannot nest zero attributes".into(),
        });
    }
    let positions: Vec<usize> = nest_attrs
        .iter()
        .map(|a| rel.attr_index(a))
        .collect::<Result<_>>()?;
    if rel.schema.iter().any(|a| a.name() == as_name) {
        return Err(MadError::duplicate("attribute", as_name));
    }
    let keep: Vec<usize> = (0..rel.schema.len())
        .filter(|i| !positions.contains(i))
        .collect();
    let nested_schema: Vec<NestedAttr> = positions
        .iter()
        .map(|&p| rel.schema[p].clone())
        .collect();
    let mut schema: Vec<NestedAttr> = keep.iter().map(|&i| rel.schema[i].clone()).collect();
    schema.push(NestedAttr::nested(as_name, nested_schema));
    // group
    let mut groups: BTreeMap<Vec<NestedValue>, BTreeSet<Vec<NestedValue>>> = BTreeMap::new();
    for t in &rel.tuples {
        let key: Vec<NestedValue> = keep.iter().map(|&i| t[i].clone()).collect();
        let inner: Vec<NestedValue> = positions.iter().map(|&p| t[p].clone()).collect();
        groups.entry(key).or_default().insert(inner);
    }
    let mut out = NestedRelation::new(format!("ν({})", rel.name), schema);
    for (mut key, inner) in groups {
        key.push(NestedValue::Rel(inner));
        out.tuples.insert(key);
    }
    Ok(out)
}

/// μ — unnest the relation-valued attribute `attr`: each inner tuple joins
/// its outer tuple. An empty inner relation drops the outer tuple (the
/// standard μ; this is why ν∘μ is not the identity in general).
pub fn unnest(rel: &NestedRelation, attr: &str) -> Result<NestedRelation> {
    let pos = rel.attr_index(attr)?;
    let inner_schema = match &rel.schema[pos] {
        NestedAttr::Nested { schema, .. } => schema.clone(),
        NestedAttr::Atomic { .. } => {
            return Err(MadError::IncompatibleOperands {
                op: "μ",
                detail: format!("attribute `{attr}` is atomic"),
            })
        }
    };
    let mut schema: Vec<NestedAttr> = rel
        .schema
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != pos)
        .map(|(_, a)| a.clone())
        .collect();
    schema.extend(inner_schema.iter().cloned());
    let mut out = NestedRelation::new(format!("μ({})", rel.name), schema);
    for t in &rel.tuples {
        let inner = t[pos].as_rel().expect("validated on insert");
        for row in inner {
            let mut flat: Vec<NestedValue> = t
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, v)| v.clone())
                .collect();
            flat.extend(row.iter().cloned());
            out.tuples.insert(flat);
        }
    }
    Ok(out)
}

/// σ — select on a top-level atomic attribute.
pub fn select(rel: &NestedRelation, attr: &str, op: CmpOp, value: &Value) -> Result<NestedRelation> {
    let pos = rel.attr_index(attr)?;
    if rel.schema[pos].is_nested() {
        return Err(MadError::IncompatibleOperands {
            op: "σ",
            detail: format!("attribute `{attr}` is relation-valued"),
        });
    }
    let mut out = NestedRelation::new(format!("σ({})", rel.name), rel.schema.clone());
    for t in &rel.tuples {
        if let Some(v) = t[pos].as_atomic() {
            if v.sql_cmp(value).is_some_and(|o| op.test(o)) {
                out.tuples.insert(t.clone());
            }
        }
    }
    Ok(out)
}

/// π — project to the named top-level attributes (atomic or nested), with
/// duplicate elimination.
pub fn project(rel: &NestedRelation, attrs: &[&str]) -> Result<NestedRelation> {
    let positions: Vec<usize> = attrs
        .iter()
        .map(|a| rel.attr_index(a))
        .collect::<Result<_>>()?;
    let schema: Vec<NestedAttr> = positions.iter().map(|&p| rel.schema[p].clone()).collect();
    let mut out = NestedRelation::new(format!("π({})", rel.name), schema);
    for t in &rel.tuples {
        out.tuples
            .insert(positions.iter().map(|&p| t[p].clone()).collect());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::AttrType;

    /// flat state-area pairs (the unnested form)
    fn flat() -> NestedRelation {
        let mut r = NestedRelation::new(
            "sa",
            vec![
                NestedAttr::atomic("sname", AttrType::Text),
                NestedAttr::atomic("aid", AttrType::Int),
            ],
        );
        for (s, a) in [("SP", 1), ("SP", 2), ("MG", 2), ("MG", 3)] {
            r.insert(vec![
                NestedValue::from(Value::from(s)),
                NestedValue::from(Value::from(a as i64)),
            ])
            .unwrap();
        }
        r
    }

    #[test]
    fn nest_groups() {
        let r = flat();
        let n = nest(&r, &["aid"], "areas").unwrap();
        assert_eq!(n.len(), 2, "one tuple per state");
        assert!(!n.is_flat());
        // SP's group has areas {1, 2}
        let sp = n
            .tuples
            .iter()
            .find(|t| t[0].as_atomic() == Some(&Value::from("SP")))
            .unwrap();
        assert_eq!(sp[1].as_rel().unwrap().len(), 2);
    }

    #[test]
    fn unnest_inverts_nest() {
        let r = flat();
        let n = nest(&r, &["aid"], "areas").unwrap();
        let u = unnest(&n, "areas").unwrap();
        // same tuples (names differ)
        assert_eq!(u.tuples, r.tuples);
        assert_eq!(u.schema, r.schema);
    }

    #[test]
    fn nest_unnest_not_identity_without_pnf() {
        // A relation whose nested attribute does NOT partition by the rest:
        // two tuples with the same key but different sub-relations merge
        // under μ∘ν into one — ν(μ(R)) ≠ R.
        let mut r = NestedRelation::new(
            "x",
            vec![
                NestedAttr::atomic("k", AttrType::Int),
                NestedAttr::nested("s", vec![NestedAttr::atomic("v", AttrType::Int)]),
            ],
        );
        let sub = |vals: &[i64]| {
            NestedValue::Rel(
                vals.iter()
                    .map(|v| vec![NestedValue::from(Value::from(*v))])
                    .collect(),
            )
        };
        r.insert(vec![NestedValue::from(Value::from(1)), sub(&[10])])
            .unwrap();
        r.insert(vec![NestedValue::from(Value::from(1)), sub(&[20])])
            .unwrap();
        assert_eq!(r.len(), 2);
        let u = unnest(&r, "s").unwrap();
        let n = nest(&u, &["v"], "s").unwrap();
        assert_eq!(n.len(), 1, "ν∘μ merged the two groups");
        assert_ne!(n.tuples, r.tuples);
    }

    #[test]
    fn unnest_drops_tuples_with_empty_inner() {
        let mut r = NestedRelation::new(
            "x",
            vec![
                NestedAttr::atomic("k", AttrType::Int),
                NestedAttr::nested("s", vec![NestedAttr::atomic("v", AttrType::Int)]),
            ],
        );
        r.insert(vec![
            NestedValue::from(Value::from(1)),
            NestedValue::Rel(BTreeSet::new()),
        ])
        .unwrap();
        let u = unnest(&r, "s").unwrap();
        assert!(u.is_empty());
    }

    #[test]
    fn nest_validation() {
        let r = flat();
        assert!(nest(&r, &[], "x").is_err());
        assert!(nest(&r, &["ghost"], "x").is_err());
        assert!(nest(&r, &["aid"], "sname").is_err(), "name collision");
    }

    #[test]
    fn unnest_validation() {
        let r = flat();
        assert!(unnest(&r, "sname").is_err(), "atomic attribute");
        assert!(unnest(&r, "ghost").is_err());
    }

    #[test]
    fn select_and_project_top_level() {
        let r = flat();
        let s = select(&r, "sname", CmpOp::Eq, &Value::from("SP")).unwrap();
        assert_eq!(s.len(), 2);
        let n = nest(&r, &["aid"], "areas").unwrap();
        let p = project(&n, &["areas"]).unwrap();
        assert_eq!(p.len(), 2, "two distinct area sets");
        assert!(select(&n, "areas", CmpOp::Eq, &Value::from(1)).is_err());
    }

    #[test]
    fn double_nesting() {
        // nest twice: areas into states, then states into one group — depth 2
        let r = flat();
        let n1 = nest(&r, &["aid"], "areas").unwrap();
        let n2 = nest(&n1, &["sname", "areas"], "states").unwrap();
        assert_eq!(n2.len(), 1);
        let u2 = unnest(&n2, "states").unwrap();
        assert_eq!(u2.tuples, n1.tuples);
    }
}
