#![forbid(unsafe_code)]

//! # mad-nf2 — the NF² (non-first-normal-form) substrate and baseline
//!
//! §5 of the paper compares the molecule algebra with the NF² relational
//! algebra of Schek/Scholl (\[SS86\]) and finds that nested relations support
//! only *hierarchical* complex objects *without shared subobjects*. This
//! crate builds that comparison partner:
//!
//! * [`nested`] — nested relations: relation-valued attributes, arbitrary
//!   nesting depth, set semantics at every level,
//! * [`ops`] — the NF² algebra core: `nest` (ν) and `unnest` (μ) plus
//!   σ/π at the top level, with the classical identities
//!   (`μ∘ν = id` always; `ν∘μ = id` only for partitioned relations)
//!   under test,
//! * [`from_mad`] — materialization of a MAD molecule type as a nested
//!   relation. A DAG-shaped structure is forced through its spanning tree
//!   and **shared subobjects are duplicated** — the duplication factor
//!   this module reports is precisely the §5 claim measured by
//!   benchmark B2.

pub mod from_mad;
pub mod nested;
pub mod ops;

pub use from_mad::{materialize, Nf2Materialization};
pub use nested::{NestedAttr, NestedRelation, NestedValue};
