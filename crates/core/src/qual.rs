//! Qualification formulas `restr(md)` and the predicate `qual(m, restr(md))`
//! of Def. 10.
//!
//! The paper leaves the shape of `qual-formulas(md)` open; we provide the
//! language its §4 examples need (attribute comparisons like
//! `point.name = 'pn'`, boolean connectives) plus the quantifiers and
//! aggregates any practical molecule restriction requires: `EXISTS`/`FORALL`
//! over the atom set of a structure node, `COUNT(node)` comparisons and
//! aggregate comparisons over node attributes.
//!
//! Evaluation uses Kleene three-valued logic; a molecule qualifies when the
//! formula evaluates to *true* (unknown is not enough), matching SQL WHERE
//! semantics.
//!
//! Free attribute references on a non-root node are **existential**: the
//! molecule `point-edge-(area-state,net-river)` qualifies for
//! `state.sname = 'SP'` when *some* state atom in the molecule is SP. Bound
//! references (inside `EXISTS`/`FORALL`) refer to the bound atom.

use crate::molecule::Molecule;
use crate::structure::MoleculeStructure;
use mad_model::{AttrType, FxHashMap, MadError, Result, Schema, Value};
use mad_storage::Database;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordering.
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The SQL-ish token.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Aggregate functions over a node's atom set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFn {
    /// Number of atoms at the node (attribute ignored).
    Count,
    /// Sum of a numeric attribute (nulls skipped).
    Sum,
    /// Minimum attribute value.
    Min,
    /// Maximum attribute value.
    Max,
    /// Mean of a numeric attribute.
    Avg,
}

impl AggFn {
    /// The MQL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AggFn::Count => "COUNT",
            AggFn::Sum => "SUM",
            AggFn::Min => "MIN",
            AggFn::Max => "MAX",
            AggFn::Avg => "AVG",
        }
    }
}

/// A comparison operand.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    /// `node.attr` — an attribute of atoms playing role `node`.
    Attr {
        /// Structure node index.
        node: usize,
        /// Attribute position within the node's atom type.
        attr: usize,
    },
    /// A constant.
    Const(Value),
}

/// A qualification formula.
#[derive(Clone, Debug, PartialEq)]
pub enum QualExpr {
    /// Always true.
    True,
    /// Conjunction (Kleene).
    And(Box<QualExpr>, Box<QualExpr>),
    /// Disjunction (Kleene).
    Or(Box<QualExpr>, Box<QualExpr>),
    /// Negation (Kleene).
    Not(Box<QualExpr>),
    /// Comparison of two operands.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// ∃ atom at `node`: `pred` (with the atom bound).
    Exists {
        /// Quantified structure node.
        node: usize,
        /// Inner predicate.
        pred: Box<QualExpr>,
    },
    /// ∀ atoms at `node`: `pred` (vacuously true on the empty set).
    ForAll {
        /// Quantified structure node.
        node: usize,
        /// Inner predicate.
        pred: Box<QualExpr>,
    },
    /// `COUNT(node) op count`.
    CountCmp {
        /// Counted structure node.
        node: usize,
        /// Operator.
        op: CmpOp,
        /// Compared constant.
        count: i64,
    },
    /// `AGG(node.attr) op value`.
    AggCmp {
        /// Aggregate function.
        agg: AggFn,
        /// Aggregated structure node.
        node: usize,
        /// Aggregated attribute.
        attr: usize,
        /// Operator.
        op: CmpOp,
        /// Compared constant.
        value: Value,
    },
}

impl QualExpr {
    /// `node.attr op value` — the workhorse comparison.
    pub fn cmp_const(node: usize, attr: usize, op: CmpOp, value: impl Into<Value>) -> QualExpr {
        QualExpr::Cmp {
            left: Operand::Attr { node, attr },
            op,
            right: Operand::Const(value.into()),
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: QualExpr) -> QualExpr {
        QualExpr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: QualExpr) -> QualExpr {
        QualExpr::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    pub fn negate(self) -> QualExpr {
        QualExpr::Not(Box::new(self))
    }

    /// Validate node/attribute references and operand typing against a
    /// structure (the `restr(md) ∈ qual-formulas(md)` requirement).
    pub fn validate(&self, md: &MoleculeStructure, schema: &Schema) -> Result<()> {
        let check_node = |node: usize| -> Result<()> {
            if node >= md.node_count() {
                return Err(MadError::InvalidQualification {
                    detail: format!("node index {node} out of range"),
                });
            }
            Ok(())
        };
        let check_attr = |node: usize, attr: usize| -> Result<AttrType> {
            check_node(node)?;
            let ty = md.nodes()[node].ty;
            let def = schema.atom_type(ty);
            def.attrs
                .get(attr)
                .map(|a| a.ty)
                .ok_or_else(|| MadError::InvalidQualification {
                    detail: format!(
                        "attribute index {attr} out of range for `{}`",
                        def.name
                    ),
                })
        };
        match self {
            QualExpr::True => Ok(()),
            QualExpr::And(a, b) | QualExpr::Or(a, b) => {
                a.validate(md, schema)?;
                b.validate(md, schema)
            }
            QualExpr::Not(a) => a.validate(md, schema),
            QualExpr::Cmp { left, op: _, right } => {
                let lt = match left {
                    Operand::Attr { node, attr } => Some(check_attr(*node, *attr)?),
                    Operand::Const(v) => v.attr_type(),
                };
                let rt = match right {
                    Operand::Attr { node, attr } => Some(check_attr(*node, *attr)?),
                    Operand::Const(v) => v.attr_type(),
                };
                if let (Some(l), Some(r)) = (lt, rt) {
                    let numeric =
                        |t: AttrType| matches!(t, AttrType::Int | AttrType::Float);
                    let comparable = l == r || (numeric(l) && numeric(r));
                    if !comparable {
                        return Err(MadError::InvalidQualification {
                            detail: format!("cannot compare {l} with {r}"),
                        });
                    }
                }
                Ok(())
            }
            QualExpr::Exists { node, pred } | QualExpr::ForAll { node, pred } => {
                check_node(*node)?;
                pred.validate(md, schema)
            }
            QualExpr::CountCmp { node, .. } => check_node(*node),
            QualExpr::AggCmp {
                agg, node, attr, value, ..
            } => {
                let t = check_attr(*node, *attr)?;
                if matches!(agg, AggFn::Sum | AggFn::Avg)
                    && !matches!(t, AttrType::Int | AttrType::Float)
                {
                    return Err(MadError::InvalidQualification {
                        detail: format!("{} requires a numeric attribute", agg.keyword()),
                    });
                }
                if let Some(vt) = value.attr_type() {
                    let numeric =
                        |t: AttrType| matches!(t, AttrType::Int | AttrType::Float);
                    let ok = match agg {
                        AggFn::Count => numeric(vt),
                        AggFn::Sum | AggFn::Avg => numeric(vt),
                        AggFn::Min | AggFn::Max => vt == t || (numeric(vt) && numeric(t)),
                    };
                    if !ok {
                        return Err(MadError::InvalidQualification {
                            detail: format!(
                                "{}({}.{attr}) is not comparable with {value}",
                                agg.keyword(),
                                md.nodes()[*node].alias
                            ),
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// The predicate `qual(m, restr(md))`: does molecule `m` qualify?
    /// (Unknown collapses to *false* at the top, like SQL WHERE.)
    pub fn qualifies(&self, db: &Database, m: &Molecule) -> bool {
        self.eval(db, m, &mut FxHashMap::default()) == Some(true)
    }

    /// Kleene evaluation under bindings (`node → atom index within
    /// `m.atoms[node]``). The binding map is threaded mutably — quantifiers
    /// insert before and restore after evaluating their body, instead of
    /// cloning the whole map once per quantified atom.
    fn eval(
        &self,
        db: &Database,
        m: &Molecule,
        bind: &mut FxHashMap<usize, mad_model::AtomId>,
    ) -> Option<bool> {
        match self {
            QualExpr::True => Some(true),
            QualExpr::And(a, b) => match (a.eval(db, m, bind), b.eval(db, m, bind)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            QualExpr::Or(a, b) => match (a.eval(db, m, bind), b.eval(db, m, bind)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            QualExpr::Not(a) => a.eval(db, m, bind).map(|b| !b),
            QualExpr::Cmp { left, op, right } => self.eval_cmp(db, m, bind, left, *op, right),
            QualExpr::Exists { node, pred } => {
                let saved = bind.get(node).copied();
                let mut unknown = false;
                let mut found = false;
                for &a in m.atoms_at(*node) {
                    bind.insert(*node, a);
                    match pred.eval(db, m, bind) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                restore_binding(bind, *node, saved);
                match (found, unknown) {
                    (true, _) => Some(true),
                    (false, true) => None,
                    (false, false) => Some(false),
                }
            }
            QualExpr::ForAll { node, pred } => {
                let saved = bind.get(node).copied();
                let mut unknown = false;
                let mut refuted = false;
                for &a in m.atoms_at(*node) {
                    bind.insert(*node, a);
                    match pred.eval(db, m, bind) {
                        Some(false) => {
                            refuted = true;
                            break;
                        }
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                restore_binding(bind, *node, saved);
                match (refuted, unknown) {
                    (true, _) => Some(false),
                    (false, true) => None,
                    (false, false) => Some(true),
                }
            }
            QualExpr::CountCmp { node, op, count } => {
                let n = m.atoms_at(*node).len() as i64;
                Some(op.test(n.cmp(count)))
            }
            QualExpr::AggCmp {
                agg,
                node,
                attr,
                op,
                value,
            } => {
                let agg_val = self.aggregate(db, m, *agg, *node, *attr)?;
                agg_val.sql_cmp(value).map(|ord| op.test(ord))
            }
        }
    }

    fn eval_cmp(
        &self,
        db: &Database,
        m: &Molecule,
        bind: &FxHashMap<usize, mad_model::AtomId>,
        left: &Operand,
        op: CmpOp,
        right: &Operand,
    ) -> Option<bool> {
        // Resolve each operand into its candidate values; free node refs are
        // existential over the node's atom set. Values are borrowed from the
        // store (`db.atom_value`) or from the formula — never cloned.
        let lvals = operand_values(db, m, bind, left)?;
        let rvals = operand_values(db, m, bind, right)?;
        let mut unknown = false;
        for l in &lvals {
            for r in &rvals {
                match l.sql_cmp(r) {
                    Some(ord) => {
                        if op.test(ord) {
                            return Some(true);
                        }
                    }
                    None => unknown = true,
                }
            }
        }
        // no witness: definite false unless some comparison was unknown;
        // an empty node set ("no atom") is a definite false
        if unknown {
            None
        } else {
            Some(false)
        }
    }

    fn aggregate(
        &self,
        db: &Database,
        m: &Molecule,
        agg: AggFn,
        node: usize,
        attr: usize,
    ) -> Option<Value> {
        let atoms = m.atoms_at(node);
        if agg == AggFn::Count {
            return Some(Value::Int(atoms.len() as i64));
        }
        let vals: Vec<&Value> = atoms
            .iter()
            .filter_map(|&a| db.atom_value(a, attr).ok())
            .filter(|v| !v.is_null())
            .collect();
        if vals.is_empty() {
            return None; // SQL: aggregate of the empty set is NULL
        }
        match agg {
            AggFn::Count => unreachable!(),
            AggFn::Min => vals.into_iter().min().cloned(),
            AggFn::Max => vals.into_iter().max().cloned(),
            AggFn::Sum | AggFn::Avg => {
                let mut all_int = true;
                let mut sum_f = 0.0f64;
                let mut sum_i = 0i64;
                let n = vals.len();
                for v in vals {
                    match v {
                        Value::Int(i) => {
                            sum_i = sum_i.wrapping_add(*i);
                            sum_f += *i as f64;
                        }
                        Value::Float(x) => {
                            all_int = false;
                            sum_f += *x;
                        }
                        _ => return None,
                    }
                }
                Some(if agg == AggFn::Avg {
                    Value::Float(sum_f / n as f64)
                } else if all_int {
                    Value::Int(sum_i)
                } else {
                    Value::Float(sum_f)
                })
            }
        }
    }

    /// Extract the simple `node.attr op const` conjuncts of the top-level
    /// AND spine, for **every** structure node — the raw material of the
    /// qualification-pushdown planner. Conservative: nothing under `OR`,
    /// `NOT` or a quantifier is mined, and the full formula is still
    /// evaluated per molecule afterwards.
    ///
    /// A conjunct on a non-root node is a free (existential) reference, so
    /// it certifies only that a qualifying molecule must contain a
    /// *witness* atom at that node — which is exactly how
    /// `derive_bitset_pruned` uses it.
    pub fn node_conjuncts(&self) -> Vec<NodeConjunct> {
        let mut out = Vec::new();
        self.collect_node_conjuncts(&mut out);
        out
    }

    /// [`QualExpr::node_conjuncts`] restricted to the root node (the
    /// original benchmark-B4 extraction; kept for the scan/index root
    /// preselection path).
    pub fn root_conjuncts(&self, root: usize) -> Vec<(usize, CmpOp, Value)> {
        self.node_conjuncts()
            .into_iter()
            .filter(|c| c.node == root)
            .map(|c| (c.attr, c.op, c.value))
            .collect()
    }

    fn collect_node_conjuncts(&self, out: &mut Vec<NodeConjunct>) {
        match self {
            QualExpr::And(a, b) => {
                a.collect_node_conjuncts(out);
                b.collect_node_conjuncts(out);
            }
            QualExpr::Cmp {
                left: Operand::Attr { node, attr },
                op,
                right: Operand::Const(v),
            } => out.push(NodeConjunct {
                node: *node,
                attr: *attr,
                op: *op,
                value: v.clone(),
            }),
            QualExpr::Cmp {
                left: Operand::Const(v),
                op,
                right: Operand::Attr { node, attr },
            } => {
                // flip the comparison
                let flipped = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    other => *other,
                };
                out.push(NodeConjunct {
                    node: *node,
                    attr: *attr,
                    op: flipped,
                    value: v.clone(),
                });
            }
            _ => {}
        }
    }

    /// Render in MQL WHERE syntax (aliases resolved through `md`).
    pub fn render(&self, md: &MoleculeStructure, schema: &Schema) -> String {
        let attr_name = |node: usize, attr: usize| {
            let alias = &md.nodes()[node].alias;
            let def = schema.atom_type(md.nodes()[node].ty);
            format!("{alias}.{}", def.attrs[attr].name)
        };
        match self {
            QualExpr::True => "TRUE".to_owned(),
            QualExpr::And(a, b) => {
                format!("({} AND {})", a.render(md, schema), b.render(md, schema))
            }
            QualExpr::Or(a, b) => {
                format!("({} OR {})", a.render(md, schema), b.render(md, schema))
            }
            QualExpr::Not(a) => format!("(NOT {})", a.render(md, schema)),
            QualExpr::Cmp { left, op, right } => {
                let f = |o: &Operand| match o {
                    Operand::Attr { node, attr } => attr_name(*node, *attr),
                    Operand::Const(v) => v.to_string(),
                };
                format!("{} {} {}", f(left), op.symbol(), f(right))
            }
            QualExpr::Exists { node, pred } => format!(
                "EXISTS({}: {})",
                md.nodes()[*node].alias,
                pred.render(md, schema)
            ),
            QualExpr::ForAll { node, pred } => format!(
                "FORALL({}: {})",
                md.nodes()[*node].alias,
                pred.render(md, schema)
            ),
            QualExpr::CountCmp { node, op, count } => format!(
                "COUNT({}) {} {}",
                md.nodes()[*node].alias,
                op.symbol(),
                count
            ),
            QualExpr::AggCmp {
                agg,
                node,
                attr,
                op,
                value,
            } => format!(
                "{}({}) {} {}",
                agg.keyword(),
                attr_name(*node, *attr),
                op.symbol(),
                value
            ),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One pushable `node.attr op const` conjunct of the top-level AND spine
/// (see [`QualExpr::node_conjuncts`]).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeConjunct {
    /// The referenced structure node.
    pub node: usize,
    /// The attribute position within the node's atom type.
    pub attr: usize,
    /// The comparison, normalized so the attribute is on the left.
    pub op: CmpOp,
    /// The compared constant.
    pub value: Value,
}

fn restore_binding(
    bind: &mut FxHashMap<usize, mad_model::AtomId>,
    node: usize,
    saved: Option<mad_model::AtomId>,
) {
    match saved {
        Some(a) => {
            bind.insert(node, a);
        }
        None => {
            bind.remove(&node);
        }
    }
}

/// Candidate values of an operand, borrowed from the store or the formula.
fn operand_values<'a>(
    db: &'a Database,
    m: &Molecule,
    bind: &FxHashMap<usize, mad_model::AtomId>,
    operand: &'a Operand,
) -> Option<Vec<&'a Value>> {
    match operand {
        Operand::Const(v) => Some(vec![v]),
        Operand::Attr { node, attr } => {
            if let Some(&a) = bind.get(node) {
                db.atom_value(a, *attr).ok().map(|v| vec![v])
            } else {
                Some(
                    m.atoms_at(*node)
                        .iter()
                        .filter_map(|&a| db.atom_value(a, *attr).ok())
                        .collect(),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::derive_one;
    use crate::structure::path;
    use mad_model::{AttrType, SchemaBuilder};

    fn db_and_molecule() -> (Database, MoleculeStructure, Molecule) {
        let schema = SchemaBuilder::new()
            .atom_type(
                "state",
                &[("sname", AttrType::Text), ("pop", AttrType::Int)],
            )
            .atom_type(
                "area",
                &[("aid", AttrType::Int), ("hectare", AttrType::Float)],
            )
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s = db
            .insert_atom(state, vec![Value::from("SP"), Value::from(40)])
            .unwrap();
        let a1 = db
            .insert_atom(area, vec![Value::from(1), Value::from(500.0)])
            .unwrap();
        let a2 = db
            .insert_atom(area, vec![Value::from(2), Value::from(1500.0)])
            .unwrap();
        db.connect(sa, s, a1).unwrap();
        db.connect(sa, s, a2).unwrap();
        let md = path(db.schema(), &["state", "area"]).unwrap();
        let m = derive_one(&db, &md, s).unwrap();
        (db, md, m)
    }

    #[test]
    fn root_comparison() {
        let (db, _, m) = db_and_molecule();
        assert!(QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP").qualifies(&db, &m));
        assert!(!QualExpr::cmp_const(0, 0, CmpOp::Eq, "MG").qualifies(&db, &m));
        assert!(QualExpr::cmp_const(0, 1, CmpOp::Gt, 30).qualifies(&db, &m));
    }

    #[test]
    fn child_comparison_is_existential() {
        let (db, _, m) = db_and_molecule();
        // some area has hectare > 1000
        assert!(QualExpr::cmp_const(1, 1, CmpOp::Gt, 1000.0).qualifies(&db, &m));
        // no area has hectare > 2000
        assert!(!QualExpr::cmp_const(1, 1, CmpOp::Gt, 2000.0).qualifies(&db, &m));
    }

    #[test]
    fn forall_and_exists() {
        let (db, _, m) = db_and_molecule();
        let all_big = QualExpr::ForAll {
            node: 1,
            pred: Box::new(QualExpr::cmp_const(1, 1, CmpOp::Gt, 100.0)),
        };
        assert!(all_big.qualifies(&db, &m));
        let all_huge = QualExpr::ForAll {
            node: 1,
            pred: Box::new(QualExpr::cmp_const(1, 1, CmpOp::Gt, 1000.0)),
        };
        assert!(!all_huge.qualifies(&db, &m));
        let some_huge = QualExpr::Exists {
            node: 1,
            pred: Box::new(QualExpr::cmp_const(1, 1, CmpOp::Gt, 1000.0)),
        };
        assert!(some_huge.qualifies(&db, &m));
    }

    #[test]
    fn negation_of_existential_uses_forall_semantics() {
        let (db, _, m) = db_and_molecule();
        // NOT (some area > 2000)  — true, since none is
        let q = QualExpr::cmp_const(1, 1, CmpOp::Gt, 2000.0).negate();
        assert!(q.qualifies(&db, &m));
        // NOT (some area > 1000) — false, a2 is
        let q = QualExpr::cmp_const(1, 1, CmpOp::Gt, 1000.0).negate();
        assert!(!q.qualifies(&db, &m));
    }

    #[test]
    fn count_and_aggregates() {
        let (db, _, m) = db_and_molecule();
        assert!(QualExpr::CountCmp {
            node: 1,
            op: CmpOp::Eq,
            count: 2
        }
        .qualifies(&db, &m));
        assert!(QualExpr::AggCmp {
            agg: AggFn::Sum,
            node: 1,
            attr: 1,
            op: CmpOp::Eq,
            value: Value::Float(2000.0),
        }
        .qualifies(&db, &m));
        assert!(QualExpr::AggCmp {
            agg: AggFn::Avg,
            node: 1,
            attr: 1,
            op: CmpOp::Eq,
            value: Value::Float(1000.0),
        }
        .qualifies(&db, &m));
        assert!(QualExpr::AggCmp {
            agg: AggFn::Max,
            node: 1,
            attr: 1,
            op: CmpOp::Ge,
            value: Value::Float(1500.0),
        }
        .qualifies(&db, &m));
        assert!(QualExpr::AggCmp {
            agg: AggFn::Min,
            node: 1,
            attr: 1,
            op: CmpOp::Lt,
            value: Value::Float(501.0),
        }
        .qualifies(&db, &m));
    }

    #[test]
    fn and_or_combinators() {
        let (db, _, m) = db_and_molecule();
        let q = QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP")
            .and(QualExpr::cmp_const(1, 1, CmpOp::Gt, 1000.0));
        assert!(q.qualifies(&db, &m));
        let q = QualExpr::cmp_const(0, 0, CmpOp::Eq, "MG")
            .or(QualExpr::cmp_const(1, 1, CmpOp::Gt, 1000.0));
        assert!(q.qualifies(&db, &m));
        let q = QualExpr::cmp_const(0, 0, CmpOp::Eq, "MG")
            .and(QualExpr::cmp_const(1, 1, CmpOp::Gt, 1000.0));
        assert!(!q.qualifies(&db, &m));
    }

    #[test]
    fn null_comparisons_are_unknown() {
        let (mut db, _, _) = db_and_molecule();
        let state = db.schema().atom_type_id("state").unwrap();
        let s = db
            .insert_atom(state, vec![Value::Null, Value::Null])
            .unwrap();
        let md = path(db.schema(), &["state", "area"]).unwrap();
        let m = derive_one(&db, &md, s).unwrap();
        // NULL = 'SP' is unknown → does not qualify
        assert!(!QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP").qualifies(&db, &m));
        // NOT (NULL = 'SP') is also unknown → does not qualify
        assert!(!QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP")
            .negate()
            .qualifies(&db, &m));
    }

    #[test]
    fn validation_catches_bad_references() {
        let (db, md, _) = db_and_molecule();
        let schema = db.schema();
        assert!(QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP")
            .validate(&md, schema)
            .is_ok());
        assert!(QualExpr::cmp_const(7, 0, CmpOp::Eq, "SP")
            .validate(&md, schema)
            .is_err());
        assert!(QualExpr::cmp_const(0, 9, CmpOp::Eq, "SP")
            .validate(&md, schema)
            .is_err());
        // type mismatch: text attr vs int const
        assert!(QualExpr::cmp_const(0, 0, CmpOp::Eq, 3)
            .validate(&md, schema)
            .is_err());
        // SUM over text attr
        assert!(QualExpr::AggCmp {
            agg: AggFn::Sum,
            node: 0,
            attr: 0,
            op: CmpOp::Eq,
            value: Value::Int(1),
        }
        .validate(&md, schema)
        .is_err());
        // numeric widening is fine
        assert!(QualExpr::cmp_const(1, 1, CmpOp::Gt, 10)
            .validate(&md, schema)
            .is_ok());
    }

    #[test]
    fn root_conjunct_extraction() {
        let q = QualExpr::cmp_const(0, 1, CmpOp::Gt, 10)
            .and(QualExpr::cmp_const(1, 0, CmpOp::Eq, 5).and(QualExpr::Cmp {
                left: Operand::Const(Value::Int(3)),
                op: CmpOp::Lt,
                right: Operand::Attr { node: 0, attr: 1 },
            }));
        let cj = q.root_conjuncts(0);
        assert_eq!(cj.len(), 2);
        assert_eq!(cj[0], (1, CmpOp::Gt, Value::Int(10)));
        // flipped: 3 < root.pop  →  root.pop > 3
        assert_eq!(cj[1], (1, CmpOp::Gt, Value::Int(3)));
        // nothing under OR
        let q = QualExpr::cmp_const(0, 1, CmpOp::Gt, 10)
            .or(QualExpr::cmp_const(0, 1, CmpOp::Lt, 5));
        assert!(q.root_conjuncts(0).is_empty());
    }

    #[test]
    fn render_is_readable() {
        let (db, md, _) = db_and_molecule();
        let q = QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP")
            .and(QualExpr::cmp_const(1, 1, CmpOp::Gt, 1000.0));
        assert_eq!(
            q.render(&md, db.schema()),
            "(state.sname = 'SP' AND area.hectare > 1000.0)"
        );
    }
}
