//! Molecules (`m = <c, g>` of Def. 6) and molecule types (Def. 7).
//!
//! A [`Molecule`] stores its atom set `c` grouped by structure node and its
//! link set `g` grouped by structure edge — the grouped form is what the
//! qualification evaluation, the projection operator and the renderers need;
//! the flat sets of the formalism are recovered by [`Molecule::atom_set`] /
//! [`Molecule::link_set`].
//!
//! Molecules of one molecule type may **overlap**: the same atom (e.g. a
//! shared border `edge`) can appear in many molecules. Fig. 2's lower half
//! — `mt state` molecules SP and MG sharing edge/point atoms — is exactly
//! this, and [`MoleculeSet::shared_atoms`] reports it.

use crate::structure::MoleculeStructure;
use mad_model::{AtomId, FxHashMap, FxHashSet, Value};
use mad_storage::Database;
use std::fmt;

/// One molecule: a rooted occurrence of a molecule structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Molecule {
    /// The root atom (of the structure's root atom type).
    pub root: AtomId,
    /// Atom set grouped by structure node (sorted, deduplicated).
    /// `atoms[n]` are the atoms playing role `n`; `atoms[root]` is
    /// `[root]`.
    pub atoms: Vec<Vec<AtomId>>,
    /// Link set grouped by structure edge (sorted pairs `(parent, child)`
    /// in traversal orientation).
    pub links: Vec<Vec<(AtomId, AtomId)>>,
}

impl Molecule {
    /// A molecule containing only its root.
    pub fn single(root: AtomId, node_count: usize, edge_count: usize, root_node: usize) -> Self {
        let mut atoms = vec![Vec::new(); node_count];
        atoms[root_node] = vec![root];
        Molecule {
            root,
            atoms,
            links: vec![Vec::new(); edge_count],
        }
    }

    /// The flat atom set `c` (sorted, deduplicated across nodes).
    pub fn atom_set(&self) -> Vec<AtomId> {
        let mut all: Vec<AtomId> = self.atoms.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// The flat link set `g` (sorted, deduplicated across edges).
    pub fn link_set(&self) -> Vec<(AtomId, AtomId)> {
        let mut all: Vec<(AtomId, AtomId)> = self.links.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Total number of atom occurrences by node (an atom shared between two
    /// nodes counts twice; use [`Molecule::atom_set`] for the set size).
    pub fn atom_occurrences(&self) -> usize {
        self.atoms.iter().map(Vec::len).sum()
    }

    /// Does the molecule contain `atom` in any role?
    pub fn contains_atom(&self, atom: AtomId) -> bool {
        self.atoms
            .iter()
            .any(|v| v.binary_search(&atom).is_ok())
    }

    /// Atoms playing role `node`.
    pub fn atoms_at(&self, node: usize) -> &[AtomId] {
        &self.atoms[node]
    }

    /// Links instantiating structure edge `edge`.
    pub fn links_at(&self, edge: usize) -> &[(AtomId, AtomId)] {
        &self.links[edge]
    }

    /// Map every atom id through `f`, preserving grouping (used by the
    /// propagation function `prop` and by canonicalization). Re-sorts.
    pub fn map_atoms(&self, mut f: impl FnMut(AtomId) -> AtomId) -> Molecule {
        let mut atoms: Vec<Vec<AtomId>> = self
            .atoms
            .iter()
            .map(|v| v.iter().map(|&a| f(a)).collect::<Vec<_>>())
            .collect();
        for v in &mut atoms {
            v.sort_unstable();
            v.dedup();
        }
        let mut links: Vec<Vec<(AtomId, AtomId)>> = self
            .links
            .iter()
            .map(|v| v.iter().map(|&(a, b)| (f(a), f(b))).collect::<Vec<_>>())
            .collect();
        for v in &mut links {
            v.sort_unstable();
            v.dedup();
        }
        Molecule {
            root: f(self.root),
            atoms,
            links,
        }
    }

    /// Render as an indented tree with shared-subobject markers: an atom
    /// reached a second time within this molecule is printed once in full
    /// and subsequently as a `^ref`.
    pub fn render_tree(&self, db: &Database, md: &MoleculeStructure) -> String {
        let mut out = String::new();
        let mut seen: FxHashSet<AtomId> = FxHashSet::default();
        self.render_atom(db, md, md.root(), self.root, 0, &mut seen, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn render_atom(
        &self,
        db: &Database,
        md: &MoleculeStructure,
        node: usize,
        atom: AtomId,
        depth: usize,
        seen: &mut FxHashSet<AtomId>,
        out: &mut String,
    ) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let alias = &md.nodes()[node].alias;
        if !seen.insert(atom) {
            out.push_str(&format!("{alias} ^{atom}\n"));
            return;
        }
        match db.atom(atom) {
            Ok(tuple) => {
                let vals: Vec<String> = tuple.iter().map(Value::to_string).collect();
                out.push_str(&format!("{alias} {atom} <{}>\n", vals.join(", ")));
            }
            Err(_) => out.push_str(&format!("{alias} {atom} <dead>\n")),
        }
        for &e in md.outgoing(node) {
            let edge = &md.edges()[e];
            for &(p, c) in &self.links[e] {
                if p == atom {
                    self.render_atom(db, md, edge.to, c, depth + 1, seen, out);
                }
            }
        }
    }
}

impl fmt::Display for Molecule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "molecule(root={}, |c|={}, |g|={})",
            self.root,
            self.atom_set().len(),
            self.link_set().len()
        )
    }
}

/// A molecule type `mt = <mname, md, mv>` (Def. 7): a named structure plus
/// its derived occurrence.
#[derive(Clone, Debug, PartialEq)]
pub struct MoleculeType {
    /// The molecule-type name `mname ∈ N`.
    pub name: String,
    /// The molecule-type description `md`.
    pub structure: MoleculeStructure,
    /// The molecule-type occurrence `mv`, ordered by root atom.
    pub molecules: Vec<Molecule>,
}

impl MoleculeType {
    /// Number of molecules in the occurrence.
    pub fn len(&self) -> usize {
        self.molecules.len()
    }

    /// Is the occurrence empty?
    pub fn is_empty(&self) -> bool {
        self.molecules.is_empty()
    }

    /// Find the molecule rooted at `root`.
    pub fn molecule_with_root(&self, root: AtomId) -> Option<&Molecule> {
        self.molecules.iter().find(|m| m.root == root)
    }

    /// Set-level sharing report: atoms appearing in ≥ 2 molecules, with the
    /// roots of the molecules sharing them (Fig. 2's "shared subobjects").
    pub fn shared_atoms(&self) -> Vec<(AtomId, Vec<AtomId>)> {
        let mut owners: FxHashMap<AtomId, Vec<AtomId>> = FxHashMap::default();
        for m in &self.molecules {
            for a in m.atom_set() {
                owners.entry(a).or_default().push(m.root);
            }
        }
        let mut shared: Vec<(AtomId, Vec<AtomId>)> = owners
            .into_iter()
            .filter(|(_, roots)| roots.len() >= 2)
            .collect();
        for (_, roots) in &mut shared {
            roots.sort_unstable();
        }
        shared.sort_unstable_by_key(|(a, _)| *a);
        shared
    }

    /// Total distinct atoms across the occurrence.
    pub fn distinct_atoms(&self) -> usize {
        let mut all: FxHashSet<AtomId> = FxHashSet::default();
        for m in &self.molecules {
            all.extend(m.atom_set());
        }
        all.len()
    }

    /// Total atom occurrences (with multiplicity across molecules) — the
    /// storage a model *without* shared subobjects would need. The ratio
    /// to [`MoleculeType::distinct_atoms`] is the duplication factor of
    /// benchmark B2.
    pub fn total_atom_occurrences(&self) -> usize {
        self.molecules.iter().map(|m| m.atom_set().len()).sum()
    }

    /// Render the whole molecule set as trees (Fig. 2 lower half).
    pub fn render(&self, db: &Database) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "molecule type {} ({} molecules)\n",
            self.name,
            self.molecules.len()
        ));
        for m in &self.molecules {
            out.push_str(&m.render_tree(db, &self.structure));
        }
        out
    }
}

/// Alias kept for readability in signatures that deal with plain sets.
pub type MoleculeSet = MoleculeType;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::path;
    use mad_model::{AtomTypeId, AttrType, SchemaBuilder};

    fn aid(ty: u32, slot: u32) -> AtomId {
        AtomId::new(AtomTypeId(ty), slot)
    }

    fn two_node_structure() -> (Database, MoleculeStructure) {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let db = Database::new(schema);
        let md = path(db.schema(), &["state", "area"]).unwrap();
        (db, md)
    }

    fn sample_molecule() -> Molecule {
        Molecule {
            root: aid(0, 0),
            atoms: vec![vec![aid(0, 0)], vec![aid(1, 0), aid(1, 1)]],
            links: vec![vec![(aid(0, 0), aid(1, 0)), (aid(0, 0), aid(1, 1))]],
        }
    }

    #[test]
    fn atom_and_link_sets_flatten() {
        let m = sample_molecule();
        assert_eq!(m.atom_set(), vec![aid(0, 0), aid(1, 0), aid(1, 1)]);
        assert_eq!(m.link_set().len(), 2);
        assert_eq!(m.atom_occurrences(), 3);
        assert!(m.contains_atom(aid(1, 1)));
        assert!(!m.contains_atom(aid(1, 2)));
    }

    #[test]
    fn single_molecule_has_only_root() {
        let m = Molecule::single(aid(0, 5), 3, 2, 0);
        assert_eq!(m.atom_set(), vec![aid(0, 5)]);
        assert!(m.link_set().is_empty());
        assert_eq!(m.atoms_at(1), &[] as &[AtomId]);
    }

    #[test]
    fn map_atoms_preserves_grouping() {
        let m = sample_molecule();
        // shift every slot by 10
        let m2 = m.map_atoms(|a| AtomId::new(a.ty, a.slot + 10));
        assert_eq!(m2.root, aid(0, 10));
        assert_eq!(m2.atoms_at(1), &[aid(1, 10), aid(1, 11)]);
        assert_eq!(m2.links_at(0)[0], (aid(0, 10), aid(1, 10)));
    }

    #[test]
    fn shared_atoms_across_molecules() {
        let (_, md) = two_node_structure();
        let shared_area = aid(1, 7);
        let m1 = Molecule {
            root: aid(0, 0),
            atoms: vec![vec![aid(0, 0)], vec![shared_area]],
            links: vec![vec![(aid(0, 0), shared_area)]],
        };
        let m2 = Molecule {
            root: aid(0, 1),
            atoms: vec![vec![aid(0, 1)], vec![shared_area, aid(1, 8)]],
            links: vec![vec![(aid(0, 1), shared_area), (aid(0, 1), aid(1, 8))]],
        };
        let mt = MoleculeType {
            name: "t".into(),
            structure: md,
            molecules: vec![m1, m2],
        };
        let shared = mt.shared_atoms();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].0, shared_area);
        assert_eq!(shared[0].1, vec![aid(0, 0), aid(0, 1)]);
        assert_eq!(mt.distinct_atoms(), 4);
        assert_eq!(mt.total_atom_occurrences(), 5);
    }

    #[test]
    fn render_tree_marks_back_references() {
        let (mut db, md) = two_node_structure();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let s = db.insert_atom(state, vec![Value::from("SP")]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        let m = Molecule {
            root: s,
            atoms: vec![vec![s], vec![a]],
            links: vec![vec![(s, a)]],
        };
        let t = m.render_tree(&db, &md);
        assert!(t.contains("state"));
        assert!(t.contains("'SP'"));
        assert!(t.contains("area"));
        // a diamond that revisits the same atom prints a ^ref
        let m2 = Molecule {
            root: s,
            atoms: vec![vec![s], vec![a]],
            links: vec![vec![(s, a), (s, a)]],
        };
        let t2 = m2.render_tree(&db, &md);
        assert_eq!(t2.matches("'SP'").count(), 1);
    }

    #[test]
    fn molecule_with_root_lookup() {
        let (_, md) = two_node_structure();
        let mt = MoleculeType {
            name: "t".into(),
            structure: md,
            molecules: vec![Molecule::single(aid(0, 3), 2, 1, 0)],
        };
        assert!(mt.molecule_with_root(aid(0, 3)).is_some());
        assert!(mt.molecule_with_root(aid(0, 4)).is_none());
        assert_eq!(mt.len(), 1);
        assert!(!mt.is_empty());
    }
}
